//! The happens-before race-detection core (§2.1 of the paper).
//!
//! [`HbCore`] implements the standard vector-clock algorithm over an
//! abstract stream of synchronization operations and data accesses:
//!
//! * each thread `t` carries a clock `C(t)`;
//! * each synchronization variable `v` carries a clock `L(v)`;
//! * a release-like operation on `v` joins `C(t)` into `L(v)` and then
//!   increments `C(t)[t]`;
//! * an acquire-like operation joins `L(v)` into `C(t)`;
//! * two accesses to the same address race iff neither's clock snapshot is
//!   ≤ the other's and at least one is a write.
//!
//! Per address the core keeps a *frontier* of accesses not yet ordered
//! before a subsequent write (an antichain), so every racing static pair
//! that manifests against the frontier is reported. The offline
//! [`HbDetector`] drives the core from an [`EventLog`]; the online detector
//! (see [`online`](crate::online)) drives it from live simulator events.

use std::collections::HashMap;

use literace_log::{EventLog, Record};
use literace_sim::{Addr, Pc, SyncOpKind, SyncVar, ThreadId};

use crate::epoch::check_thread_index;
use crate::fast_hash::{FastMap, FastSet};
use crate::frontier::{Access, Frontier};
use crate::provenance::{AccessEvidence, ProvenanceReport, ProvenanceState, SyncEdge};
use crate::report::{RaceReport, StaticRace};
use crate::vector_clock::VectorClock;

/// Tuning knobs for the happens-before core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HbConfig {
    /// Upper bound on remembered frontier accesses per location and kind;
    /// beyond it the oldest entries are dropped (bounds memory on
    /// pathological inputs). The frontier is an antichain, so in practice it
    /// stays near the thread count.
    pub max_history_per_location: usize,
    /// Upper bound on *dynamic* races recorded per static pair before
    /// further occurrences are only counted, not stored.
    pub max_dynamic_per_pair: usize,
}

impl Default for HbConfig {
    fn default() -> HbConfig {
        HbConfig {
            max_history_per_location: 128,
            max_dynamic_per_pair: 1 << 20,
        }
    }
}

/// Running aggregate for one static pair — the report row built *online*,
/// as races are detected, instead of by a separate grouping pass over a
/// stored race vector at `finish` time (that pass used to cost as much as
/// detection itself on race-heavy logs).
#[derive(Debug)]
struct PairAgg {
    /// Dynamic occurrences stored (capped at `max_dynamic_per_pair`).
    stored: u64,
    /// Occurrences beyond the cap (counted, not stored).
    overflow: u64,
    /// Address of the first stored occurrence.
    example_addr: Addr,
    /// Distinct addresses among stored occurrences.
    addrs: FastSet<Addr>,
}

/// The reusable happens-before engine.
#[derive(Debug)]
pub struct HbCore {
    cfg: HbConfig,
    threads: Vec<VectorClock>,
    /// Per-thread clock generation: bumped whenever the thread's clock
    /// value may change, so the frontier's same-epoch memo (see
    /// [`epoch`](crate::epoch)) can key on `(thread, generation)` instead
    /// of comparing whole clocks. Over-bumping is safe (it only costs memo
    /// hits); missing a bump would not be.
    clock_gen: Vec<u64>,
    /// Threads known to have exited (excluded from the compaction bound).
    retired: Vec<bool>,
    syncvars: FastMap<SyncVar, VectorClock>,
    /// Per-address frontier state.
    frontier: Frontier,
    /// Per-static-pair aggregates, maintained online.
    pairs: FastMap<(Pc, Pc), PairAgg>,
    /// Frontier scan lengths, systematically sampled (1 in
    /// [`ScanSampler::SAMPLE_RATE`](literace_telemetry::ScanSampler)),
    /// accumulated locally and flushed to the global registry at
    /// [`finish`](HbCore::finish).
    scan_hist: literace_telemetry::ScanSampler,
    /// Race-provenance capture, when enabled (see
    /// [`enable_provenance`](HbCore::enable_provenance)). Off — the
    /// default — costs one null check on the conflict path only.
    provenance: Option<Box<ProvenanceState>>,
}

impl HbCore {
    /// Creates a core with the given configuration.
    pub fn new(cfg: HbConfig) -> HbCore {
        HbCore {
            cfg,
            threads: Vec::new(),
            clock_gen: Vec::new(),
            retired: Vec::new(),
            syncvars: FastMap::default(),
            frontier: Frontier::new(cfg.max_history_per_location),
            pairs: FastMap::default(),
            scan_hist: literace_telemetry::ScanSampler::new(),
            provenance: None,
        }
    }

    /// Turns on race-provenance capture: the core starts tracking each
    /// thread's last release and records, for the first dynamic occurrence
    /// of every static pair, the two access epochs and the sync edge that
    /// failed to order them (retrieved via [`finish_full`](HbCore::finish_full)).
    /// The [`RaceReport`] is byte-identical with capture on or off.
    pub fn enable_provenance(&mut self) {
        if self.provenance.is_none() {
            self.provenance = Some(Box::default());
        }
    }

    /// Makes sure `tid`'s clock (and those of all lower thread ids) is
    /// materialized, and returns its index into `threads`.
    ///
    /// # Panics
    ///
    /// Panics with [`TidCeilingExceeded`](crate::TidCeilingExceeded)'s
    /// message when the index exceeds
    /// [`MAX_THREAD_INDEX`](crate::MAX_THREAD_INDEX): beyond it the memo
    /// keys' access-kind bit packing would silently corrupt race
    /// classification (see `crate::epoch`), and materializing billions of
    /// backfilled clocks would exhaust memory long before that. Only a
    /// corrupt or hostile log can reach this.
    fn ensure_thread(&mut self, tid: ThreadId) -> usize {
        let i = tid.index();
        if i >= self.threads.len() {
            if let Err(e) = check_thread_index(i) {
                panic!("{e}");
            }
            for j in self.threads.len()..=i {
                let mut c = VectorClock::new();
                c.set(ThreadId::from_index(j), 1);
                self.threads.push(c);
                self.clock_gen.push(0);
            }
        }
        i
    }

    /// Processes one synchronization operation.
    #[inline]
    pub fn sync(&mut self, tid: ThreadId, kind: SyncOpKind, var: SyncVar) {
        if kind == SyncOpKind::Fork {
            // Materialize the child's clock immediately: until the child
            // starts, its (empty) clock must pin the compaction bound —
            // the child will begin from the parent's *fork-time* snapshot,
            // which may be older than every live thread's current clock.
            let child = ThreadId::from_index(var.0 as usize);
            self.ensure_thread(child);
        }
        // Materialize up front so the paths below can borrow `threads`
        // directly alongside `syncvars` (disjoint fields) without cloning.
        let i = self.ensure_thread(tid);
        // Any sync op may change this thread's clock; a blanket bump keeps
        // the memo sound (equal generation ⟹ equal clock value).
        self.clock_gen[i] += 1;
        let acquire = kind.is_acquire();
        let release = kind.is_release();
        if acquire {
            if let Some(l) = self.syncvars.get(&var) {
                self.threads[i].join(l);
            }
        }
        if release {
            if let Some(p) = self.provenance.as_deref_mut() {
                // The epoch *before* the increment: an acquire of `var`
                // imports clock values up to and including this one.
                p.record_release(
                    i,
                    SyncEdge {
                        var,
                        kind,
                        release_epoch: self.threads[i].get(tid),
                    },
                );
            }
            self.syncvars
                .entry(var)
                .or_default()
                .join(&self.threads[i]);
            self.threads[i].increment(tid);
        }
    }

    /// Processes one data access.
    ///
    /// `inline(always)`: this is the detector's innermost per-record call.
    /// Inlining it (and [`Frontier::access`] inside it) into each driver
    /// loop keeps the location state in registers across records — worth
    /// over 10% end-to-end on full logs, and LLVM won't do it unaided
    /// because the function has many call sites (sequential, sharded,
    /// streaming, online).
    #[inline(always)]
    pub fn access(&mut self, tid: ThreadId, pc: Pc, addr: Addr, is_write: bool) {
        let i = self.ensure_thread(tid);
        // The access doesn't modify the clock, so a shared borrow suffices
        // — no per-access clone (`threads`, `frontier` and `pairs` are
        // disjoint fields).
        let HbCore {
            cfg,
            threads,
            clock_gen,
            frontier,
            pairs,
            scan_hist,
            provenance,
            ..
        } = self;
        let clock = &threads[i];
        let generation = clock_gen[i];
        let max_pair = cfg.max_dynamic_per_pair as u64;
        let mut provenance = provenance.as_deref_mut();
        let scanned = frontier.access(
            tid,
            pc,
            addr.raw(),
            is_write,
            clock,
            generation,
            |prior, prior_is_write| {
                let key = if prior.pc <= pc {
                    (prior.pc, pc)
                } else {
                    (pc, prior.pc)
                };
                let agg = pairs.entry(key).or_insert_with(|| PairAgg {
                    stored: 0,
                    overflow: 0,
                    example_addr: addr,
                    addrs: FastSet::default(),
                });
                if agg.stored == 0 && agg.overflow == 0 {
                    // First dynamic occurrence of this static pair: emit a
                    // trace instant and capture provenance. Both are off
                    // the hot path — conflicts are rare, first-per-pair
                    // conflicts rarer still.
                    if literace_telemetry::trace_enabled() {
                        literace_telemetry::trace_instant_detail(
                            "race.detected",
                            format!("{} ↔ {} at {addr}", key.0, key.1),
                        );
                    }
                    if let Some(p) = provenance.as_mut() {
                        p.capture(
                            key,
                            addr,
                            AccessEvidence {
                                tid: prior.tid,
                                epoch: prior.epoch,
                                pc: prior.pc,
                                is_write: prior_is_write,
                            },
                            AccessEvidence {
                                tid,
                                epoch: clock.get(tid),
                                pc,
                                is_write,
                            },
                            clock.get(prior.tid),
                        );
                    }
                }
                if agg.stored < max_pair {
                    agg.stored += 1;
                    agg.addrs.insert(addr);
                } else {
                    agg.overflow += 1;
                }
            },
        );
        scan_hist.record(scanned as u64);
    }

    /// Marks a thread as exited: it will make no further accesses, so it no
    /// longer constrains [`compact`](HbCore::compact)'s reclamation bound.
    pub fn retire_thread(&mut self, tid: ThreadId) {
        let i = tid.index();
        if i >= self.retired.len() {
            self.retired.resize(i + 1, false);
        }
        self.retired[i] = true;
    }

    /// Reclaims per-location state that can never race again: an access is
    /// dead once **every live thread's clock** already covers it (all
    /// future accesses inherit those clocks, so they would be ordered after
    /// it). Locations whose frontier empties are dropped entirely. This
    /// bounds detector memory on long runs; correctness is untouched
    /// (property-tested in the crate's integration tests).
    ///
    /// Returns the number of locations dropped.
    pub fn compact(&mut self) -> usize {
        // Pointwise minimum over live threads' clocks. With no live thread,
        // nothing further can happen: everything is reclaimable.
        let live: Vec<&VectorClock> = self
            .threads
            .iter()
            .enumerate()
            .filter(|(i, _)| !self.retired.get(*i).copied().unwrap_or(false))
            .map(|(_, c)| c)
            .collect();
        let tracked_before = self.frontier.tracked_locations();
        let dropped = self.frontier.compact(&live);
        if literace_telemetry::enabled() {
            let m = literace_telemetry::metrics();
            m.detector_compact_runs.add(1);
            m.detector_compact_dropped.add(dropped as u64);
            // Compaction points see the frontier at its largest, so the
            // pre-compaction size is the footprint high-water mark.
            m.detector_frontier_tracked_hwm.record(tracked_before as u64);
        }
        dropped
    }

    /// Consumes the core, producing the race report.
    ///
    /// `non_stack_accesses` is the rarity denominator of §5.3.1 — the number
    /// of non-stack memory instructions *executed* in the run (not merely
    /// logged).
    ///
    /// The per-pair aggregates already hold every report field, so this is
    /// a linear emit-and-sort — there is no grouping pass over stored
    /// dynamic races. A pair with occurrences but nothing stored (possible
    /// only when `max_dynamic_per_pair` is 0) is omitted entirely.
    pub fn finish(self, non_stack_accesses: u64) -> RaceReport {
        self.finish_full(non_stack_accesses).0
    }

    /// Like [`finish`](HbCore::finish), additionally returning the
    /// provenance evidence when capture was enabled (`None` otherwise).
    pub fn finish_full(
        mut self,
        non_stack_accesses: u64,
    ) -> (RaceReport, Option<ProvenanceReport>) {
        let provenance = self.provenance.take().map(|p| p.into_report());
        self.frontier.flush_telemetry();
        if literace_telemetry::enabled() {
            let m = literace_telemetry::metrics();
            self.scan_hist.flush_into(&m.detector_frontier_scan);
            m.detector_frontier_tracked_hwm
                .record(self.frontier.tracked_locations() as u64);
        }
        let mut dynamic_races = 0;
        let mut static_races: Vec<StaticRace> = self
            .pairs
            .into_iter()
            .filter(|(_, agg)| agg.stored > 0)
            .map(|(pcs, agg)| {
                let count = agg.stored + agg.overflow;
                dynamic_races += count;
                StaticRace {
                    pcs,
                    count,
                    example_addr: agg.example_addr,
                    distinct_addrs: agg.addrs.len() as u64,
                }
            })
            .collect();
        static_races.sort_by(|a, b| b.count.cmp(&a.count).then(a.pcs.cmp(&b.pcs)));
        if literace_telemetry::enabled() {
            let m = literace_telemetry::metrics();
            m.detector_races_static.add(static_races.len() as u64);
            m.detector_races_dynamic.add(dynamic_races);
        }
        let report = RaceReport {
            static_races,
            dynamic_races,
            non_stack_accesses,
        };
        (report, provenance)
    }

    /// Number of addresses with live frontier state (memory footprint).
    pub fn tracked_locations(&self) -> usize {
        self.frontier.tracked_locations()
    }

    /// The configuration the core was created with.
    pub fn config(&self) -> HbConfig {
        self.cfg
    }

    /// Extracts the core's full semantic state in canonical (sorted)
    /// order, for checkpoint serialization. Telemetry-only state (the
    /// scan sampler, epoch counters) and provenance capture are excluded;
    /// the frontier memos reset on restore, which is output-neutral (a
    /// memo only ever short-circuits a provably conflict-free repeat).
    pub(crate) fn snapshot_state(&self) -> CoreSnapshot {
        let threads = (0..self.threads.len())
            .map(|i| ThreadState {
                components: self.threads[i].components().to_vec(),
                clock_gen: self.clock_gen[i],
                retired: self.retired.get(i).copied().unwrap_or(false),
            })
            .collect();
        let mut syncvars: Vec<(SyncVar, Vec<u64>)> = self
            .syncvars
            .iter()
            .map(|(&var, clock)| (var, clock.components().to_vec()))
            .collect();
        syncvars.sort_unstable_by_key(|&(var, _)| var);
        let mut pairs: Vec<((Pc, Pc), PairSnapshot)> = self
            .pairs
            .iter()
            .map(|(&pcs, agg)| {
                let mut addrs: Vec<Addr> = agg.addrs.iter().copied().collect();
                addrs.sort_unstable();
                (
                    pcs,
                    PairSnapshot {
                        stored: agg.stored,
                        overflow: agg.overflow,
                        example_addr: agg.example_addr,
                        addrs,
                    },
                )
            })
            .collect();
        pairs.sort_unstable_by_key(|&(pcs, _)| pcs);
        CoreSnapshot {
            threads,
            syncvars,
            locations: self.frontier.snapshot(),
            pairs,
        }
    }

    /// Rebuilds a core from a [`snapshot_state`](HbCore::snapshot_state)
    /// capture. The restored core processes any suffix of records exactly
    /// as the snapshotted one would have.
    pub(crate) fn from_snapshot(cfg: HbConfig, snap: CoreSnapshot) -> HbCore {
        let mut threads = Vec::with_capacity(snap.threads.len());
        let mut clock_gen = Vec::with_capacity(snap.threads.len());
        let mut retired = Vec::with_capacity(snap.threads.len());
        for t in snap.threads {
            threads.push(VectorClock::from_components(t.components));
            clock_gen.push(t.clock_gen);
            retired.push(t.retired);
        }
        let syncvars: FastMap<SyncVar, VectorClock> = snap
            .syncvars
            .into_iter()
            .map(|(var, c)| (var, VectorClock::from_components(c)))
            .collect();
        let pairs: FastMap<(Pc, Pc), PairAgg> = snap
            .pairs
            .into_iter()
            .map(|(pcs, p)| {
                (
                    pcs,
                    PairAgg {
                        stored: p.stored,
                        overflow: p.overflow,
                        example_addr: p.example_addr,
                        addrs: p.addrs.into_iter().collect(),
                    },
                )
            })
            .collect();
        HbCore {
            cfg,
            threads,
            clock_gen,
            retired,
            syncvars,
            frontier: Frontier::restore(cfg.max_history_per_location, snap.locations),
            pairs,
            scan_hist: literace_telemetry::ScanSampler::new(),
            provenance: None,
        }
    }
}

/// Per-thread state in a [`CoreSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct ThreadState {
    /// The thread's vector clock, as its dense component slice.
    pub components: Vec<u64>,
    /// The thread's clock generation (the frontier memo token).
    pub clock_gen: u64,
    /// Whether the thread has exited.
    pub retired: bool,
}

/// One static pair's aggregate in a [`CoreSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct PairSnapshot {
    /// Dynamic occurrences stored (capped).
    pub stored: u64,
    /// Occurrences beyond the cap.
    pub overflow: u64,
    /// Address of the first stored occurrence.
    pub example_addr: Addr,
    /// Distinct addresses among stored occurrences, sorted.
    pub addrs: Vec<Addr>,
}

/// The full semantic state of an [`HbCore`], in canonical order: equal
/// detector states produce equal snapshots regardless of hash-map
/// iteration order. Produced by [`HbCore::snapshot_state`], consumed by
/// [`HbCore::from_snapshot`] and the checkpoint codec
/// (see [`checkpoint`](crate::checkpoint)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct CoreSnapshot {
    /// Per-thread clocks, generations, and retirement flags, by index.
    pub threads: Vec<ThreadState>,
    /// Sync-variable clocks, sorted by variable.
    pub syncvars: Vec<(SyncVar, Vec<u64>)>,
    /// Frontier state, sorted by address (see [`Frontier::snapshot`]).
    pub locations: Vec<(u64, Vec<Access>, Vec<Access>)>,
    /// Per-pair aggregates, sorted by the pc pair.
    pub pairs: Vec<((Pc, Pc), PairSnapshot)>,
}

/// Records between automatic frontier compactions in [`HbDetector`] (and
/// in each shard of the sharded detector, which counts *all* records —
/// owned or not — so compaction triggers at the same stream positions).
pub(crate) const COMPACT_INTERVAL: u64 = 1 << 18;

/// Offline happens-before detector over an event log (§4.4: the paper's
/// primary mode — write the log to disk, analyze later).
///
/// # Examples
///
/// ```
/// use literace_detector::HbDetector;
/// use literace_log::{Record, SamplerMask};
/// use literace_sim::{Addr, FuncId, Pc, ThreadId};
///
/// let mut det = HbDetector::new();
/// for t in 0..2 {
///     det.process(&Record::Mem {
///         tid: ThreadId::from_index(t),
///         pc: Pc::new(FuncId::from_index(0), t),
///         addr: Addr::global(0),
///         is_write: true,
///         mask: SamplerMask::FULL,
///     });
/// }
/// let report = det.finish(2);
/// assert_eq!(report.static_count(), 1);
/// ```
#[derive(Debug)]
pub struct HbDetector {
    pub(crate) core: HbCore,
    pub(crate) records_since_compact: u64,
    /// Total records processed since construction (or since the state a
    /// resumed detector was checkpointed from began), for checkpoint
    /// bookkeeping and the inspector.
    pub(crate) records_processed: u64,
    /// Per-var last timestamp, to validate the logical-timestamp invariant
    /// (§4.2): operations on one variable must be logged in timestamp order.
    pub(crate) last_ts: HashMap<SyncVar, u64>,
    /// Count of timestamp-order violations observed (should stay zero; a
    /// nonzero value reproduces the paper's "hundreds of false data races"
    /// failure mode when atomic timestamping is broken).
    pub timestamp_violations: u64,
}

impl HbDetector {
    /// Creates a detector with default configuration.
    pub fn new() -> HbDetector {
        HbDetector::with_config(HbConfig::default())
    }

    /// Creates a detector with an explicit configuration.
    pub fn with_config(cfg: HbConfig) -> HbDetector {
        HbDetector {
            core: HbCore::new(cfg),
            records_since_compact: 0,
            records_processed: 0,
            last_ts: HashMap::new(),
            timestamp_violations: 0,
        }
    }

    /// Total records processed so far (including any processed before the
    /// checkpoint a resumed detector started from).
    pub fn records_processed(&self) -> u64 {
        self.records_processed
    }

    /// Processes one log record.
    ///
    /// `inline(always)`: called once per record from every driver loop;
    /// without the hint LLVM leaves a per-record call boundary (the
    /// function has many callers), forcing detector state back to memory
    /// every record.
    #[inline(always)]
    pub fn process(&mut self, record: &Record) {
        match *record {
            Record::Sync {
                tid,
                kind,
                var,
                timestamp,
                ..
            } => {
                let last = self.last_ts.entry(var).or_insert(0);
                if timestamp < *last {
                    self.timestamp_violations += 1;
                }
                *last = (*last).max(timestamp);
                self.core.sync(tid, kind, var);
            }
            Record::Mem {
                tid,
                pc,
                addr,
                is_write,
                ..
            } => self.core.access(tid, pc, addr, is_write),
            Record::ThreadBegin { .. } => {}
            Record::ThreadEnd { tid } => {
                self.core.retire_thread(tid);
                self.records_since_compact = 0;
                self.core.compact();
            }
        }
        self.records_processed += 1;
        self.records_since_compact += 1;
        if self.records_since_compact >= COMPACT_INTERVAL {
            self.records_since_compact = 0;
            self.core.compact();
        }
    }

    /// Processes an entire log.
    pub fn process_log(&mut self, log: &EventLog) {
        for r in log {
            self.process(r);
        }
    }

    /// Finishes, producing the report.
    pub fn finish(self, non_stack_accesses: u64) -> RaceReport {
        self.core.finish(non_stack_accesses)
    }

    /// Turns on race-provenance capture (see
    /// [`HbCore::enable_provenance`]).
    pub fn enable_provenance(&mut self) {
        self.core.enable_provenance();
    }

    /// Finishes, returning the report and — when provenance capture was
    /// enabled — one [`RaceEvidence`](crate::RaceEvidence) per static pair.
    pub fn finish_full(
        self,
        non_stack_accesses: u64,
    ) -> (RaceReport, Option<ProvenanceReport>) {
        self.core.finish_full(non_stack_accesses)
    }
}

impl Default for HbDetector {
    fn default() -> HbDetector {
        HbDetector::new()
    }
}

/// One-shot convenience: detect races in a log.
pub fn detect(log: &EventLog, non_stack_accesses: u64) -> RaceReport {
    let mut d = HbDetector::new();
    d.process_log(log);
    d.finish(non_stack_accesses)
}

#[cfg(test)]
mod tests {
    use super::*;
    use literace_log::SamplerMask;
    use literace_sim::FuncId;

    fn t(i: usize) -> ThreadId {
        ThreadId::from_index(i)
    }
    fn pc(i: usize) -> Pc {
        Pc::new(FuncId::from_index(0), i)
    }
    fn a(i: u64) -> Addr {
        Addr::global(i)
    }
    fn v(i: u64) -> SyncVar {
        SyncVar(0x2000_0000 + i)
    }

    fn mem(tid: ThreadId, pcv: usize, addr: Addr, w: bool) -> Record {
        Record::Mem {
            tid,
            pc: pc(pcv),
            addr,
            is_write: w,
            mask: SamplerMask::FULL,
        }
    }

    fn sync(tid: ThreadId, kind: SyncOpKind, var: SyncVar, ts: u64) -> Record {
        Record::Sync {
            tid,
            pc: pc(99),
            kind,
            var,
            timestamp: ts,
        }
    }

    #[test]
    fn unsynchronized_write_write_races() {
        let log: EventLog = vec![
            mem(t(0), 1, a(0), true),
            mem(t(1), 2, a(0), true),
        ]
        .into_iter()
        .collect();
        let report = detect(&log, 2);
        assert_eq!(report.static_count(), 1);
        assert_eq!(report.dynamic_races, 1);
    }

    #[test]
    fn lock_protected_accesses_do_not_race() {
        // Figure 1 (left): write, unlock ... lock, write.
        let log: EventLog = vec![
            sync(t(0), SyncOpKind::LockAcquire, v(0), 1),
            mem(t(0), 1, a(0), true),
            sync(t(0), SyncOpKind::LockRelease, v(0), 2),
            sync(t(1), SyncOpKind::LockAcquire, v(0), 3),
            mem(t(1), 2, a(0), true),
            sync(t(1), SyncOpKind::LockRelease, v(0), 4),
        ]
        .into_iter()
        .collect();
        let report = detect(&log, 2);
        assert_eq!(report.static_count(), 0);
    }

    #[test]
    fn missing_sync_record_creates_false_race() {
        // Figure 2: dropping the unlock/lock records loses the HB edge and a
        // (false) race is reported — the reason LiteRace never samples sync.
        let log: EventLog = vec![
            mem(t(0), 1, a(0), true),
            // unlock by t0 and lock by t1 NOT logged
            mem(t(1), 2, a(0), true),
        ]
        .into_iter()
        .collect();
        let report = detect(&log, 2);
        assert_eq!(report.static_count(), 1, "demonstrates Figure 2");
    }

    #[test]
    fn read_read_is_not_a_race() {
        let log: EventLog = vec![
            mem(t(0), 1, a(0), false),
            mem(t(1), 2, a(0), false),
        ]
        .into_iter()
        .collect();
        assert_eq!(detect(&log, 2).static_count(), 0);
    }

    #[test]
    fn write_read_races_both_orders() {
        let log: EventLog = vec![
            mem(t(0), 1, a(0), true),
            mem(t(1), 2, a(0), false),
            mem(t(0), 3, a(1), false),
            mem(t(1), 4, a(1), true),
        ]
        .into_iter()
        .collect();
        let report = detect(&log, 4);
        assert_eq!(report.static_count(), 2);
    }

    #[test]
    fn same_thread_never_races() {
        let log: EventLog = vec![
            mem(t(0), 1, a(0), true),
            mem(t(0), 2, a(0), true),
            mem(t(0), 3, a(0), false),
        ]
        .into_iter()
        .collect();
        assert_eq!(detect(&log, 3).static_count(), 0);
    }

    #[test]
    fn fork_orders_parent_before_child() {
        let child_var = SyncVar(1);
        let log: EventLog = vec![
            mem(t(0), 1, a(0), true),
            sync(t(0), SyncOpKind::Fork, child_var, 1),
            sync(t(1), SyncOpKind::ThreadStart, child_var, 2),
            mem(t(1), 2, a(0), true),
        ]
        .into_iter()
        .collect();
        assert_eq!(detect(&log, 2).static_count(), 0);
    }

    #[test]
    fn join_orders_child_before_parent() {
        let child_var = SyncVar(1);
        let log: EventLog = vec![
            sync(t(0), SyncOpKind::Fork, child_var, 1),
            sync(t(1), SyncOpKind::ThreadStart, child_var, 2),
            mem(t(1), 1, a(0), true),
            sync(t(1), SyncOpKind::ThreadExit, child_var, 3),
            sync(t(0), SyncOpKind::Join, child_var, 4),
            mem(t(0), 2, a(0), true),
        ]
        .into_iter()
        .collect();
        assert_eq!(detect(&log, 2).static_count(), 0);
    }

    #[test]
    fn notify_wait_creates_edge() {
        let log: EventLog = vec![
            mem(t(0), 1, a(0), true),
            sync(t(0), SyncOpKind::Notify, v(3), 1),
            sync(t(1), SyncOpKind::WaitReturn, v(3), 2),
            mem(t(1), 2, a(0), true),
        ]
        .into_iter()
        .collect();
        assert_eq!(detect(&log, 2).static_count(), 0);
    }

    #[test]
    fn atomic_rmw_totally_orders_participants() {
        let flag = SyncVar(Addr::global(9).raw());
        let log: EventLog = vec![
            mem(t(0), 1, a(0), true),
            sync(t(0), SyncOpKind::AtomicRmw, flag, 1),
            sync(t(1), SyncOpKind::AtomicRmw, flag, 2),
            mem(t(1), 2, a(0), true),
        ]
        .into_iter()
        .collect();
        assert_eq!(detect(&log, 2).static_count(), 0);
    }

    #[test]
    fn alloc_page_sync_prevents_reuse_false_positive() {
        // §4.3: thread 0 writes its allocation, frees it; thread 1 gets the
        // same address back. AllocPage sync on free/alloc orders them.
        let page = SyncVar(0x4000_0000 / 4096);
        let log: EventLog = vec![
            mem(t(0), 1, Addr(0x4000_0000), true),
            sync(t(0), SyncOpKind::AllocPage, page, 1), // free
            sync(t(1), SyncOpKind::AllocPage, page, 2), // realloc
            mem(t(1), 2, Addr(0x4000_0000), true),
        ]
        .into_iter()
        .collect();
        assert_eq!(detect(&log, 2).static_count(), 0);
    }

    #[test]
    fn transitivity_across_two_locks() {
        // t0 -> (lock A) -> t1 -> (lock B) -> t2: t0's write HB t2's write.
        let log: EventLog = vec![
            mem(t(0), 1, a(0), true),
            sync(t(0), SyncOpKind::LockRelease, v(0), 1),
            sync(t(1), SyncOpKind::LockAcquire, v(0), 2),
            sync(t(1), SyncOpKind::LockRelease, v(1), 1),
            sync(t(2), SyncOpKind::LockAcquire, v(1), 2),
            mem(t(2), 2, a(0), true),
        ]
        .into_iter()
        .collect();
        assert_eq!(detect(&log, 2).static_count(), 0, "HB3 transitivity");
    }

    #[test]
    fn frontier_reports_multiple_static_pairs_per_address() {
        // Three concurrent writers at distinct PCs: every pair races.
        let log: EventLog = vec![
            mem(t(0), 1, a(0), true),
            mem(t(1), 2, a(0), true),
            mem(t(2), 3, a(0), true),
        ]
        .into_iter()
        .collect();
        let report = detect(&log, 3);
        assert_eq!(report.static_count(), 3); // (1,2) (1,3) (2,3)
    }

    #[test]
    fn timestamp_violations_are_counted() {
        let mut d = HbDetector::new();
        d.process(&sync(t(0), SyncOpKind::LockAcquire, v(0), 5));
        d.process(&sync(t(0), SyncOpKind::LockRelease, v(0), 3));
        assert_eq!(d.timestamp_violations, 1);
    }

    #[test]
    fn dynamic_counts_accumulate_per_static_pair() {
        let mut records = Vec::new();
        for _ in 0..10 {
            records.push(mem(t(0), 1, a(0), true));
            records.push(mem(t(1), 2, a(0), true));
        }
        let log: EventLog = records.into_iter().collect();
        let report = detect(&log, 20);
        assert_eq!(report.static_count(), 1);
        assert!(report.static_races[0].count >= 10);
    }

    #[test]
    fn provenance_captures_epochs_and_the_failed_edge() {
        // t0 writes, releases a lock; t1 writes without acquiring it: the
        // race's failed edge is t0's release.
        let mut d = HbDetector::new();
        d.enable_provenance();
        d.process(&mem(t(0), 1, a(0), true));
        d.process(&sync(t(0), SyncOpKind::LockRelease, v(0), 1));
        d.process(&mem(t(1), 2, a(0), false));
        let (report, prov) = d.finish_full(2);
        assert_eq!(report.static_count(), 1);
        let prov = prov.expect("capture was enabled");
        let ev = prov.find(report.static_races[0].pcs).expect("evidence");
        assert_eq!(ev.prior.tid, t(0));
        assert!(ev.prior.is_write);
        assert_eq!(ev.prior.epoch, 1, "t0's clock at the write");
        assert_eq!(ev.current.tid, t(1));
        assert!(!ev.current.is_write);
        assert_eq!(ev.clock_seen, 0, "t1 never saw t0");
        let edge = ev.failed_edge.expect("t0 released after the write");
        assert_eq!(edge.var, v(0));
        assert_eq!(edge.kind, SyncOpKind::LockRelease);
        assert_eq!(edge.release_epoch, 1);
    }

    #[test]
    fn provenance_reports_no_edge_when_none_existed() {
        let mut d = HbDetector::new();
        d.enable_provenance();
        d.process(&mem(t(0), 1, a(0), true));
        d.process(&mem(t(1), 2, a(0), true));
        let (report, prov) = d.finish_full(2);
        assert_eq!(report.static_count(), 1);
        let prov = prov.unwrap();
        assert_eq!(prov.races.len(), 1);
        assert_eq!(prov.races[0].failed_edge, None);
    }

    #[test]
    fn provenance_capture_leaves_the_report_byte_identical() {
        let records = vec![
            sync(t(0), SyncOpKind::LockAcquire, v(0), 1),
            mem(t(0), 1, a(0), true),
            sync(t(0), SyncOpKind::LockRelease, v(0), 2),
            mem(t(1), 2, a(0), true),
            mem(t(2), 3, a(1), false),
            mem(t(1), 4, a(1), true),
        ];
        let log: EventLog = records.into_iter().collect();
        let plain = detect(&log, 6);
        let mut d = HbDetector::new();
        d.enable_provenance();
        d.process_log(&log);
        let (with_prov, prov) = d.finish_full(6);
        assert_eq!(plain, with_prov);
        // Every reported static pair has evidence.
        let prov = prov.unwrap();
        for s in &with_prov.static_races {
            assert!(prov.find(s.pcs).is_some(), "missing evidence for {s}");
        }
    }

    #[test]
    fn provenance_disabled_returns_none() {
        let mut d = HbDetector::new();
        d.process(&mem(t(0), 1, a(0), true));
        d.process(&mem(t(1), 2, a(0), true));
        let (report, prov) = d.finish_full(2);
        assert_eq!(report.static_count(), 1);
        assert!(prov.is_none());
    }

    #[test]
    fn history_cap_bounds_memory() {
        let cfg = HbConfig {
            max_history_per_location: 4,
            ..HbConfig::default()
        };
        let mut d = HbDetector::with_config(cfg);
        // 100 concurrent readers of one address.
        for i in 0..100 {
            d.process(&mem(t(i), i, a(0), false));
        }
        assert_eq!(d.core.tracked_locations(), 1);
        let report = d.finish(100);
        // No writes, no races.
        assert_eq!(report.static_count(), 0);
    }
}
