//! A fast, non-cryptographic hasher for the detector's hot maps.
//!
//! Every memory access costs at least one `locations` map probe, so the
//! default SipHash's per-lookup cost is pure overhead here: keys are
//! program-internal addresses and PCs, not attacker-controlled input, so
//! HashDoS resistance buys nothing. This is the familiar multiply-rotate
//! scheme (as used by rustc's FxHash): fold each 64-bit word in with a
//! rotate, xor and multiply by a large odd constant.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier: a large odd constant with well-mixed bits (2^64 / φ).
const SEED: u64 = 0x9E37_79B9_7F4A_7C15;

/// The hasher state. Use via [`FastMap`] or `BuildHasherDefault`.
#[derive(Debug, Default, Clone, Copy)]
pub struct FastHasher {
    hash: u64,
}

impl FastHasher {
    #[inline]
    fn fold(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut b = [0u8; 8];
            b.copy_from_slice(chunk);
            self.fold(u64::from_le_bytes(b));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut b = [0u8; 8];
            b[..rest.len()].copy_from_slice(rest);
            self.fold(u64::from_le_bytes(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.fold(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.fold(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.fold(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.fold(v as u64);
    }
}

/// A `HashMap` keyed with [`FastHasher`].
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FastHasher>>;

/// A `HashSet` keyed with [`FastHasher`].
pub type FastSet<K> = HashSet<K, BuildHasherDefault<FastHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_keys_hash_distinctly() {
        let mut seen = std::collections::HashSet::new();
        for k in 0u64..10_000 {
            let mut h = FastHasher::default();
            h.write_u64(k);
            seen.insert(h.finish());
        }
        assert_eq!(seen.len(), 10_000, "no collisions on sequential keys");
    }

    #[test]
    fn map_round_trips() {
        let mut m: FastMap<u64, u64> = FastMap::default();
        for k in 0..1_000u64 {
            m.insert(k, k * 2);
        }
        for k in 0..1_000u64 {
            assert_eq!(m[&k], k * 2);
        }
    }

    #[test]
    fn byte_stream_matches_word_writes_for_alignment_only() {
        // Not required to match `write_u64`, but must be deterministic.
        let mut a = FastHasher::default();
        a.write(&[1, 2, 3]);
        let mut b = FastHasher::default();
        b.write(&[1, 2, 3]);
        assert_eq!(a.finish(), b.finish());
    }
}
