//! Race-report triage filters.
//!
//! The paper notes that "some of the data races found could be benign"
//! (§5.3.1): in practice a race detector needs a suppression mechanism so
//! known-benign sites stop burying new findings. [`Suppressions`] filters a
//! [`RaceReport`] by the names of the functions containing either racing
//! site — the stable, human-meaningful identity a triager works with.

use literace_sim::Program;

use crate::report::RaceReport;

/// A set of suppression rules applied to race reports.
///
/// Rules are simple substring patterns matched against the *names* of the
/// two functions containing a static race's program counters; a race is
/// suppressed when any pattern matches either function.
///
/// # Examples
///
/// ```
/// use literace_detector::Suppressions;
/// let rules = Suppressions::from_patterns(["stats_", "logging_"]);
/// assert!(rules.matches("stats_counter_bump", "worker"));
/// assert!(!rules.matches("worker", "list_insert"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Suppressions {
    patterns: Vec<String>,
}

impl Suppressions {
    /// An empty rule set (suppresses nothing).
    pub fn new() -> Suppressions {
        Suppressions::default()
    }

    /// Adds a substring pattern.
    pub fn add(&mut self, pattern: impl Into<String>) -> &mut Suppressions {
        self.patterns.push(pattern.into());
        self
    }

    /// Builds a rule set from an iterator of patterns.
    pub fn from_patterns<I, S>(patterns: I) -> Suppressions
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Suppressions {
            patterns: patterns.into_iter().map(Into::into).collect(),
        }
    }

    /// The patterns in force, in insertion order (so a checkpoint can carry
    /// the triage configuration alongside the detector state).
    pub fn patterns(&self) -> &[String] {
        &self.patterns
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// Whether the rule set is empty.
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// Whether a race between functions named `a` and `b` is suppressed.
    pub fn matches(&self, a: &str, b: &str) -> bool {
        self.patterns
            .iter()
            .any(|p| a.contains(p.as_str()) || b.contains(p.as_str()))
    }

    /// Returns `report` with suppressed static races removed (their dynamic
    /// occurrences are subtracted from the total), plus the number of
    /// suppressed static races.
    pub fn apply(&self, report: &RaceReport, program: &Program) -> (RaceReport, usize) {
        if self.is_empty() {
            return (report.clone(), 0);
        }
        let mut kept = report.clone();
        let before = kept.static_races.len();
        kept.static_races.retain(|race| {
            let fa = &program.function(race.pcs.0.func()).name;
            let fb = &program.function(race.pcs.1.func()).name;
            if self.matches(fa, fb) {
                kept.dynamic_races = kept.dynamic_races.saturating_sub(race.count);
                false
            } else {
                true
            }
        });
        let suppressed = before - kept.static_races.len();
        if literace_telemetry::enabled() {
            literace_telemetry::metrics()
                .detector_races_suppressed
                .add(suppressed as u64);
        }
        (kept, suppressed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hb::detect;
    use literace_log::{EventLog, Record, SamplerMask};
    use literace_sim::{Addr, Pc, ProgramBuilder, Rvalue, ThreadId};

    fn racy_program() -> Program {
        let mut b = ProgramBuilder::new();
        let g1 = b.global_word("g1");
        let g2 = b.global_word("g2");
        let benign = b.function("stats_counter", 0, move |f| {
            f.write(g1);
        });
        let real = b.function("list_insert", 0, move |f| {
            f.write(g2);
        });
        b.entry_fn("main", move |f| {
            let mut hs = vec![];
            for _ in 0..2 {
                hs.push(f.spawn(benign, Rvalue::Const(0)));
                hs.push(f.spawn(real, Rvalue::Const(0)));
            }
            for h in hs {
                f.join(h);
            }
        });
        b.build().unwrap()
    }

    fn report_for(program: &Program) -> RaceReport {
        // Build the log by hand from the known racy sites to keep the test
        // focused on the filter; integration tests cover the pipeline.
        let benign = program.function_by_name("stats_counter").unwrap();
        let real = program.function_by_name("list_insert").unwrap();
        let mut log = EventLog::new();
        for (f, addr, t) in [
            (benign, 0u64, 0usize),
            (benign, 0, 1),
            (real, 1, 2),
            (real, 1, 3),
        ] {
            log.push(Record::Mem {
                tid: ThreadId::from_index(t),
                pc: Pc::new(f, 0),
                addr: Addr::global(addr),
                is_write: true,
                mask: SamplerMask::FULL,
            });
        }
        detect(&log, 4)
    }

    #[test]
    fn suppression_by_function_name() {
        let program = racy_program();
        let report = report_for(&program);
        assert_eq!(report.static_count(), 2);
        let rules = Suppressions::from_patterns(["stats_"]);
        let (filtered, suppressed) = rules.apply(&report, &program);
        assert_eq!(suppressed, 1);
        assert_eq!(filtered.static_count(), 1);
        let survivor = &filtered.static_races[0];
        assert_eq!(
            program.function(survivor.pcs.0.func()).name,
            "list_insert"
        );
    }

    #[test]
    fn empty_rules_are_identity() {
        let program = racy_program();
        let report = report_for(&program);
        let (filtered, suppressed) = Suppressions::new().apply(&report, &program);
        assert_eq!(suppressed, 0);
        assert_eq!(filtered, report);
    }

    #[test]
    fn dynamic_counts_follow_suppression() {
        let program = racy_program();
        let report = report_for(&program);
        let total = report.dynamic_races;
        let rules = Suppressions::from_patterns(["stats_counter"]);
        let (filtered, _) = rules.apply(&report, &program);
        assert!(filtered.dynamic_races < total);
    }

    #[test]
    #[allow(clippy::len_zero)]
    fn rule_bookkeeping() {
        let mut r = Suppressions::new();
        assert!(r.is_empty());
        r.add("alpha_").add("beta_");
        assert_eq!(r.len(), 2);
        assert!(r.matches("alpha_function", "other"));
        assert!(r.matches("other", "beta_function"));
        assert!(!r.matches("other", "gamma_function"));
    }
}
