//! Slab arena backing escalated (full-history) location states.
//!
//! Most locations live their whole life as two inline epochs (see
//! [`frontier`](crate::frontier)); the few that escalate to a real access
//! antichain get a slot here. Slots are addressed by dense `u32` index and
//! recycled through a free list **without dropping their vectors**, so a
//! location that escalates, de-escalates, and escalates again never pays
//! allocator churn — the recycled slot still owns its buffers.

use crate::epoch::Access;

/// Escalated per-location state: the same read/write access antichains the
/// pre-epoch frontier kept for every location.
#[derive(Debug, Default)]
pub(crate) struct LocHistory {
    /// Remembered writes, oldest first.
    pub writes: Vec<Access>,
    /// Remembered reads, oldest first.
    pub reads: Vec<Access>,
}

/// The slot store. One per frontier (and therefore one per shard worker in
/// the parallel paths) — no sharing, no locks.
#[derive(Debug, Default)]
pub(crate) struct Arena {
    slots: Vec<LocHistory>,
    free: Vec<u32>,
    live: usize,
    live_hwm: usize,
}

impl Arena {
    /// Hands out an empty slot, recycling a freed one when available.
    /// Recycled slots keep their vector capacity.
    pub fn alloc(&mut self) -> u32 {
        self.live += 1;
        self.live_hwm = self.live_hwm.max(self.live);
        match self.free.pop() {
            Some(idx) => idx,
            None => {
                let idx = self.slots.len();
                assert!(idx < u32::MAX as usize, "arena exhausted");
                self.slots.push(LocHistory::default());
                idx as u32
            }
        }
    }

    /// Returns a slot to the free list. The vectors are cleared here (not
    /// at alloc) so a dead slot holds no stale accesses.
    pub fn free(&mut self, idx: u32) {
        let h = &mut self.slots[idx as usize];
        h.writes.clear();
        h.reads.clear();
        self.free.push(idx);
        self.live -= 1;
    }

    /// The slot's history. Indices come only from [`alloc`](Arena::alloc).
    #[inline]
    pub fn get_mut(&mut self, idx: u32) -> &mut LocHistory {
        &mut self.slots[idx as usize]
    }

    /// Read-only view of a slot, for state snapshots.
    #[inline]
    pub fn get(&self, idx: u32) -> &LocHistory {
        &self.slots[idx as usize]
    }

    /// Currently escalated locations.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn live(&self) -> usize {
        self.live
    }

    /// Most simultaneously escalated locations ever (the
    /// `detector.epoch.resident_shared` gauge).
    pub fn live_hwm(&self) -> usize {
        self.live_hwm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use literace_sim::{Pc, ThreadId};

    fn a(epoch: u64) -> Access {
        Access {
            tid: ThreadId::from_index(0),
            epoch,
            pc: Pc(1),
        }
    }

    #[test]
    fn alloc_free_recycles_slots_and_tracks_hwm() {
        let mut arena = Arena::default();
        let s0 = arena.alloc();
        let s1 = arena.alloc();
        assert_ne!(s0, s1);
        assert_eq!(arena.live(), 2);
        assert_eq!(arena.live_hwm(), 2);

        arena.get_mut(s1).writes.push(a(5));
        let cap_before = arena.get_mut(s1).writes.capacity();
        arena.free(s1);
        assert_eq!(arena.live(), 1);

        let s2 = arena.alloc();
        assert_eq!(s2, s1, "freed slot is recycled");
        assert!(arena.get_mut(s2).writes.is_empty(), "recycled slot is clean");
        assert_eq!(
            arena.get_mut(s2).writes.capacity(),
            cap_before,
            "recycling keeps the buffer"
        );
        assert_eq!(arena.live_hwm(), 2, "hwm survives frees");
    }
}
