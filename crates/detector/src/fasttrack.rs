//! The FastTrack-style epoch-optimized happens-before entry point.
//!
//! # Design note: from lossy prototype to lossless production path
//!
//! FastTrack (Flanagan & Freund, PLDI 2009 — the companion optimization
//! published alongside LiteRace) observes that writes to a location are
//! almost always totally ordered, so the *last write epoch* `c@t` suffices,
//! and reads only need a full representation while they are concurrent
//! ("read-shared"). The first version of this module implemented that idea
//! directly as a standalone detector with its own location states
//! (`None`/`Single`/`Shared` reads, one optional write epoch). It was fast,
//! but **lossy**: the read-shared state collapsed concurrent readers into a
//! single clock plus a bounded PC list, so it could only be tested to agree
//! with the full detector on *which locations race*, not on the exact
//! static pairs or dynamic counts.
//!
//! That trade-off is no longer necessary. The production frontier
//! ([`frontier`](crate::frontier)) now carries the same adaptive epoch
//! representation *losslessly*: every location starts as two inline epochs
//! (last write + last read — exactly FastTrack's common case, O(1) state,
//! no heap), escalates to a full access antichain only when a genuinely
//! concurrent pair of same-kind accesses forces it, and collapses back to
//! inline epochs at the next ordered write. Escalated histories keep every
//! surviving access, so reports are **byte-identical** to the vector-clock
//! frontier on every path and thread count — the equivalence tests assert
//! exact [`RaceReport`] equality, not racy-address agreement.
//!
//! [`FastTrackDetector`] therefore delegates to [`HbDetector`]: the epoch
//! optimization is not a separate, approximate detector any more — it *is*
//! the detector.

use literace_log::{EventLog, Record};

use crate::hb::{detect, HbDetector};
use crate::report::RaceReport;

/// The epoch-optimized detector. Since the adaptive epoch representation
/// became the production frontier this is a thin wrapper over
/// [`HbDetector`], kept so callers that opt into "FastTrack mode" keep
/// compiling and now get lossless results.
#[derive(Debug, Default)]
pub struct FastTrackDetector {
    inner: HbDetector,
}

impl FastTrackDetector {
    /// Creates an empty detector.
    pub fn new() -> FastTrackDetector {
        FastTrackDetector::default()
    }

    /// Processes one record.
    pub fn process(&mut self, record: &Record) {
        self.inner.process(record);
    }

    /// Processes a whole log.
    pub fn process_log(&mut self, log: &EventLog) {
        self.inner.process_log(log);
    }

    /// Finishes, producing a report.
    pub fn finish(self, non_stack_accesses: u64) -> RaceReport {
        self.inner.finish(non_stack_accesses)
    }
}

/// One-shot convenience: run the FastTrack detector on a log.
pub fn detect_fasttrack(log: &EventLog, non_stack_accesses: u64) -> RaceReport {
    detect(log, non_stack_accesses)
}

#[cfg(test)]
mod tests {
    use super::*;
    use literace_log::SamplerMask;
    use literace_sim::{Addr, FuncId, Pc, SyncOpKind, SyncVar, ThreadId};

    fn t(i: usize) -> ThreadId {
        ThreadId::from_index(i)
    }
    fn pc(i: usize) -> Pc {
        Pc::new(FuncId::from_index(0), i)
    }
    fn a(i: u64) -> Addr {
        Addr::global(i)
    }

    fn mem(tid: ThreadId, pcv: usize, addr: Addr, w: bool) -> Record {
        Record::Mem {
            tid,
            pc: pc(pcv),
            addr,
            is_write: w,
            mask: SamplerMask::FULL,
        }
    }

    fn sync(tid: ThreadId, kind: SyncOpKind, var: u64, ts: u64) -> Record {
        Record::Sync {
            tid,
            pc: pc(99),
            kind,
            var: SyncVar(0x2000_0000 + var),
            timestamp: ts,
        }
    }

    #[test]
    fn detects_write_write_race() {
        let log: EventLog = vec![mem(t(0), 1, a(0), true), mem(t(1), 2, a(0), true)]
            .into_iter()
            .collect();
        assert_eq!(detect_fasttrack(&log, 2).static_count(), 1);
    }

    #[test]
    fn detects_read_shared_write_race() {
        let log: EventLog = vec![
            mem(t(0), 1, a(0), false),
            mem(t(1), 2, a(0), false),
            mem(t(2), 3, a(0), true),
        ]
        .into_iter()
        .collect();
        let r = detect_fasttrack(&log, 3);
        // The write races with both concurrent reads.
        assert_eq!(r.static_count(), 2);
    }

    #[test]
    fn clean_on_locked_program() {
        let log: EventLog = vec![
            sync(t(0), SyncOpKind::LockAcquire, 0, 1),
            mem(t(0), 1, a(0), true),
            sync(t(0), SyncOpKind::LockRelease, 0, 2),
            sync(t(1), SyncOpKind::LockAcquire, 0, 3),
            mem(t(1), 2, a(0), true),
            sync(t(1), SyncOpKind::LockRelease, 0, 4),
        ]
        .into_iter()
        .collect();
        assert_eq!(detect_fasttrack(&log, 2).static_count(), 0);
    }

    #[test]
    fn identical_to_full_detector_not_just_racy_locations() {
        // The old lossy prototype only agreed on racy address sets; the
        // delegating detector must produce the exact same report.
        let mut records = Vec::new();
        for i in 0..5u64 {
            records.push(mem(t(0), 1, a(i), true));
            if i % 2 == 0 {
                // Protected handoff for even addresses.
                records.push(sync(t(0), SyncOpKind::LockRelease, i, 2 * i + 1));
                records.push(sync(t(1), SyncOpKind::LockAcquire, i, 2 * i + 2));
            }
            records.push(mem(t(1), 2, a(i), true));
            records.push(mem(t(1), 3, a(i), false));
            records.push(mem(t(0), 4, a(i), false));
        }
        let log: EventLog = records.into_iter().collect();
        let full = detect(&log, 10);
        let fast = detect_fasttrack(&log, 10);
        assert_eq!(full, fast);
    }

    #[test]
    fn incremental_processing_matches_one_shot() {
        let log: EventLog = vec![
            mem(t(0), 1, a(0), false),
            mem(t(1), 2, a(0), false),
            mem(t(2), 3, a(0), true),
            mem(t(0), 4, a(1), true),
            mem(t(1), 5, a(1), true),
        ]
        .into_iter()
        .collect();
        let mut d = FastTrackDetector::new();
        for r in &log {
            d.process(r);
        }
        assert_eq!(d.finish(5), detect_fasttrack(&log, 5));
    }
}
