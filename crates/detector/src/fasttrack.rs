//! A FastTrack-style epoch-optimized happens-before detector.
//!
//! The full vector-clock detector in [`hb`](crate::hb) keeps an access
//! frontier per location. FastTrack (Flanagan & Freund, PLDI 2009 — the
//! companion optimization published alongside LiteRace) observes that writes
//! to a location are almost always totally ordered, so the *last write
//! epoch* suffices, and reads only need a full clock while they are
//! concurrent ("read-shared"). This detector trades some static-pair
//! completeness for O(1) state per location in the common case; the test
//! suite checks it agrees with the full detector on *which locations race*.

use std::collections::HashMap;

use literace_log::{EventLog, Record};
use literace_sim::{Addr, Pc, SyncVar, ThreadId};

use crate::report::{DynamicRace, RaceReport};
use crate::vector_clock::VectorClock;

/// A (thread, clock) pair: FastTrack's scalar epoch `c@t`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Epoch {
    tid: ThreadId,
    clock: u64,
    pc: Pc,
}

impl Epoch {
    fn happens_before(&self, c: &VectorClock) -> bool {
        c.get(self.tid) >= self.clock
    }
}

#[derive(Debug)]
enum ReadState {
    /// No reads since the last write.
    None,
    /// All reads so far are totally ordered: only the latest matters.
    Single(Epoch),
    /// Concurrent reads: escalated to a full clock (plus PCs for reports).
    Shared(VectorClock, Vec<Epoch>),
}

#[derive(Debug)]
struct LocState {
    write: Option<Epoch>,
    read: ReadState,
}

impl Default for LocState {
    fn default() -> LocState {
        LocState {
            write: None,
            read: ReadState::None,
        }
    }
}

/// The epoch-optimized detector.
#[derive(Debug)]
pub struct FastTrackDetector {
    threads: Vec<VectorClock>,
    syncvars: HashMap<SyncVar, VectorClock>,
    locations: HashMap<u64, LocState>,
    races: Vec<DynamicRace>,
}

impl FastTrackDetector {
    /// Creates an empty detector.
    pub fn new() -> FastTrackDetector {
        FastTrackDetector {
            threads: Vec::new(),
            syncvars: HashMap::new(),
            locations: HashMap::new(),
            races: Vec::new(),
        }
    }

    fn clock_mut(&mut self, tid: ThreadId) -> &mut VectorClock {
        let i = tid.index();
        if i >= self.threads.len() {
            for j in self.threads.len()..=i {
                let mut c = VectorClock::new();
                c.set(ThreadId::from_index(j), 1);
                self.threads.push(c);
            }
        }
        &mut self.threads[i]
    }

    /// Processes one record.
    pub fn process(&mut self, record: &Record) {
        match *record {
            Record::Sync { tid, kind, var, .. } => {
                if kind.is_acquire() {
                    if let Some(l) = self.syncvars.get(&var) {
                        let l = l.clone();
                        self.clock_mut(tid).join(&l);
                    } else {
                        let _ = self.clock_mut(tid);
                    }
                }
                if kind.is_release() {
                    let c = self.clock_mut(tid).clone();
                    self.syncvars.entry(var).or_default().join(&c);
                    self.clock_mut(tid).increment(tid);
                }
            }
            Record::Mem {
                tid,
                pc,
                addr,
                is_write,
                ..
            } => {
                if is_write {
                    self.write(tid, pc, addr);
                } else {
                    self.read(tid, pc, addr);
                }
            }
            _ => {}
        }
    }

    fn read(&mut self, tid: ThreadId, pc: Pc, addr: Addr) {
        let clock = self.clock_mut(tid).clone();
        let epoch = Epoch {
            tid,
            clock: clock.get(tid),
            pc,
        };
        let loc = self.locations.entry(addr.raw()).or_default();
        if let Some(w) = loc.write {
            if w.tid != tid && !w.happens_before(&clock) {
                self.races.push(race(w, epoch, addr, true, false));
            }
        }
        match &mut loc.read {
            ReadState::None => loc.read = ReadState::Single(epoch),
            ReadState::Single(prev) => {
                if prev.tid == tid || prev.happens_before(&clock) {
                    *prev = epoch;
                } else {
                    // Concurrent reads: escalate to a read clock.
                    let mut vc = VectorClock::new();
                    vc.set(prev.tid, prev.clock);
                    vc.set(tid, epoch.clock);
                    loc.read = ReadState::Shared(vc, vec![*prev, epoch]);
                }
            }
            ReadState::Shared(vc, pcs) => {
                vc.set(tid, epoch.clock.max(vc.get(tid)));
                pcs.retain(|e| e.tid != tid);
                pcs.push(epoch);
                if pcs.len() > 64 {
                    pcs.drain(0..32);
                }
            }
        }
    }

    fn write(&mut self, tid: ThreadId, pc: Pc, addr: Addr) {
        let clock = self.clock_mut(tid).clone();
        let epoch = Epoch {
            tid,
            clock: clock.get(tid),
            pc,
        };
        let loc = self.locations.entry(addr.raw()).or_default();
        if let Some(w) = loc.write {
            if w.tid != tid && !w.happens_before(&clock) {
                self.races.push(race(w, epoch, addr, true, true));
            }
        }
        match &loc.read {
            ReadState::None => {}
            ReadState::Single(r) => {
                if r.tid != tid && !r.happens_before(&clock) {
                    self.races.push(race(*r, epoch, addr, false, true));
                }
            }
            ReadState::Shared(vc, pcs) => {
                if !vc.le(&clock) {
                    // Report against every remembered concurrent reader.
                    for r in pcs {
                        if r.tid != tid && !r.happens_before(&clock) {
                            self.races.push(race(*r, epoch, addr, false, true));
                        }
                    }
                }
            }
        }
        loc.write = Some(epoch);
        loc.read = ReadState::None;
    }

    /// Processes a whole log.
    pub fn process_log(&mut self, log: &EventLog) {
        for r in log {
            self.process(r);
        }
    }

    /// Finishes, producing a report.
    pub fn finish(self, non_stack_accesses: u64) -> RaceReport {
        RaceReport::from_dynamic(self.races, non_stack_accesses)
    }
}

impl Default for FastTrackDetector {
    fn default() -> FastTrackDetector {
        FastTrackDetector::new()
    }
}

fn race(first: Epoch, second: Epoch, addr: Addr, fw: bool, sw: bool) -> DynamicRace {
    DynamicRace {
        first_pc: first.pc,
        second_pc: second.pc,
        addr,
        first_tid: first.tid,
        second_tid: second.tid,
        first_is_write: fw,
        second_is_write: sw,
    }
}

/// One-shot convenience: run the FastTrack detector on a log.
pub fn detect_fasttrack(log: &EventLog, non_stack_accesses: u64) -> RaceReport {
    let mut d = FastTrackDetector::new();
    d.process_log(log);
    d.finish(non_stack_accesses)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hb::detect;
    use literace_log::SamplerMask;
    use literace_sim::{FuncId, SyncOpKind};

    fn t(i: usize) -> ThreadId {
        ThreadId::from_index(i)
    }
    fn pc(i: usize) -> Pc {
        Pc::new(FuncId::from_index(0), i)
    }
    fn a(i: u64) -> Addr {
        Addr::global(i)
    }

    fn mem(tid: ThreadId, pcv: usize, addr: Addr, w: bool) -> Record {
        Record::Mem {
            tid,
            pc: pc(pcv),
            addr,
            is_write: w,
            mask: SamplerMask::FULL,
        }
    }

    fn sync(tid: ThreadId, kind: SyncOpKind, var: u64, ts: u64) -> Record {
        Record::Sync {
            tid,
            pc: pc(99),
            kind,
            var: SyncVar(0x2000_0000 + var),
            timestamp: ts,
        }
    }

    #[test]
    fn detects_write_write_race() {
        let log: EventLog = vec![mem(t(0), 1, a(0), true), mem(t(1), 2, a(0), true)]
            .into_iter()
            .collect();
        assert_eq!(detect_fasttrack(&log, 2).static_count(), 1);
    }

    #[test]
    fn detects_read_shared_write_race() {
        let log: EventLog = vec![
            mem(t(0), 1, a(0), false),
            mem(t(1), 2, a(0), false),
            mem(t(2), 3, a(0), true),
        ]
        .into_iter()
        .collect();
        let r = detect_fasttrack(&log, 3);
        // The write races with both concurrent reads.
        assert_eq!(r.static_count(), 2);
    }

    #[test]
    fn clean_on_locked_program() {
        let log: EventLog = vec![
            sync(t(0), SyncOpKind::LockAcquire, 0, 1),
            mem(t(0), 1, a(0), true),
            sync(t(0), SyncOpKind::LockRelease, 0, 2),
            sync(t(1), SyncOpKind::LockAcquire, 0, 3),
            mem(t(1), 2, a(0), true),
            sync(t(1), SyncOpKind::LockRelease, 0, 4),
        ]
        .into_iter()
        .collect();
        assert_eq!(detect_fasttrack(&log, 2).static_count(), 0);
    }

    #[test]
    fn agrees_with_full_detector_on_racy_locations() {
        // Randomized-ish small scenario mixing sync and races.
        let mut records = Vec::new();
        for i in 0..5u64 {
            records.push(mem(t(0), 1, a(i), true));
            if i % 2 == 0 {
                // Protected handoff for even addresses.
                records.push(sync(t(0), SyncOpKind::LockRelease, i, 2 * i + 1));
                records.push(sync(t(1), SyncOpKind::LockAcquire, i, 2 * i + 2));
            }
            records.push(mem(t(1), 2, a(i), true));
        }
        let log: EventLog = records.into_iter().collect();
        let full = detect(&log, 10);
        let fast = detect_fasttrack(&log, 10);
        let full_addrs: std::collections::HashSet<_> = full
            .static_races
            .iter()
            .map(|s| s.example_addr)
            .collect();
        let fast_addrs: std::collections::HashSet<_> = fast
            .static_races
            .iter()
            .map(|s| s.example_addr)
            .collect();
        assert_eq!(full_addrs, fast_addrs);
    }

    #[test]
    fn same_thread_reads_do_not_escalate() {
        let mut d = FastTrackDetector::new();
        for i in 0..10 {
            d.process(&mem(t(0), i, a(0), false));
        }
        let loc = &d.locations[&a(0).raw()];
        assert!(matches!(loc.read, ReadState::Single(_)));
    }
}
