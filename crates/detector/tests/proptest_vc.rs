//! Property tests for the vector-clock lattice: the happens-before core's
//! correctness rests on these algebraic laws.

use literace_detector::VectorClock;
use literace_sim::ThreadId;
use proptest::prelude::*;

fn arb_clock() -> impl Strategy<Value = VectorClock> {
    prop::collection::vec(0u64..50, 0..8).prop_map(|components| {
        let mut c = VectorClock::new();
        for (i, v) in components.into_iter().enumerate() {
            c.set(ThreadId::from_index(i), v);
        }
        c
    })
}

fn joined(a: &VectorClock, b: &VectorClock) -> VectorClock {
    let mut j = a.clone();
    j.join(b);
    j
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// ≤ is reflexive.
    #[test]
    fn le_reflexive(a in arb_clock()) {
        prop_assert!(a.le(&a));
    }

    /// ≤ is antisymmetric up to component equality.
    #[test]
    fn le_antisymmetric(a in arb_clock(), b in arb_clock()) {
        if a.le(&b) && b.le(&a) {
            for i in 0..8 {
                let t = ThreadId::from_index(i);
                prop_assert_eq!(a.get(t), b.get(t));
            }
        }
    }

    /// ≤ is transitive.
    #[test]
    fn le_transitive(a in arb_clock(), b in arb_clock(), c in arb_clock()) {
        if a.le(&b) && b.le(&c) {
            prop_assert!(a.le(&c));
        }
    }

    /// join is the least upper bound: an upper bound of both operands, and
    /// below any other upper bound.
    #[test]
    fn join_is_lub(a in arb_clock(), b in arb_clock(), other in arb_clock()) {
        let j = joined(&a, &b);
        prop_assert!(a.le(&j));
        prop_assert!(b.le(&j));
        if a.le(&other) && b.le(&other) {
            prop_assert!(j.le(&other));
        }
    }

    /// join is commutative, associative and idempotent.
    #[test]
    fn join_lattice_laws(a in arb_clock(), b in arb_clock(), c in arb_clock()) {
        prop_assert_eq!(joined(&a, &b), joined(&b, &a));
        prop_assert_eq!(joined(&joined(&a, &b), &c), joined(&a, &joined(&b, &c)));
        prop_assert_eq!(joined(&a, &a), a.clone());
    }

    /// Concurrency is symmetric and exclusive with ordering.
    #[test]
    fn concurrency_properties(a in arb_clock(), b in arb_clock()) {
        prop_assert_eq!(a.concurrent(&b), b.concurrent(&a));
        if a.concurrent(&b) {
            prop_assert!(!a.le(&b));
            prop_assert!(!b.le(&a));
        } else {
            prop_assert!(a.le(&b) || b.le(&a));
        }
    }

    /// Incrementing a component strictly increases the clock.
    #[test]
    fn increment_strictly_increases(a in arb_clock(), t in 0usize..8) {
        let before = a.clone();
        let mut after = a;
        after.increment(ThreadId::from_index(t));
        prop_assert!(before.le(&after));
        prop_assert!(!after.le(&before));
    }

    /// partial_cmp agrees with le in both directions.
    #[test]
    fn partial_cmp_consistent(a in arb_clock(), b in arb_clock()) {
        use std::cmp::Ordering::*;
        match a.partial_cmp(&b) {
            Some(Less) => prop_assert!(a.le(&b) && !b.le(&a)),
            Some(Greater) => prop_assert!(b.le(&a) && !a.le(&b)),
            Some(Equal) => prop_assert!(a.le(&b) && b.le(&a)),
            None => prop_assert!(a.concurrent(&b)),
        }
    }
}
