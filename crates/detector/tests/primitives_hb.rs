//! Happens-before edges induced by semaphores and barriers, end to end:
//! simulate a program using the primitive, detect on the full event stream,
//! and check the race verdicts.

use literace_detector::OnlineDetector;
use literace_sim::{
    lower, Machine, MachineConfig, ProgramBuilder, RandomScheduler, Rvalue,
};

fn detect(build: impl FnOnce(&mut ProgramBuilder), seed: u64) -> usize {
    let mut pb = ProgramBuilder::new();
    build(&mut pb);
    let compiled = lower(&pb.build().expect("validates"));
    let mut det = OnlineDetector::new();
    Machine::new(&compiled, MachineConfig::default())
        .run(&mut RandomScheduler::seeded(seed), &mut det)
        .expect("runs");
    det.finish().static_count()
}

#[test]
fn binary_semaphore_orders_critical_sections() {
    for seed in 0..10 {
        let races = detect(
            |b| {
                let g = b.global_word("g");
                let sem = b.semaphore("mutex", 1);
                let w = b.function("w", 0, move |f| {
                    f.sem_acquire(sem);
                    f.read(g);
                    f.write(g);
                    f.sem_release(sem);
                });
                b.entry_fn("main", move |f| {
                    let t1 = f.spawn(w, Rvalue::Const(0));
                    let t2 = f.spawn(w, Rvalue::Const(0));
                    f.join(t1);
                    f.join(t2);
                });
            },
            seed,
        );
        assert_eq!(races, 0, "seed {seed}: semaphore-protected CS raced");
    }
}

#[test]
fn semaphore_handoff_orders_producer_and_consumer() {
    for seed in 0..10 {
        let races = detect(
            |b| {
                let g = b.global_word("payload");
                let ready = b.semaphore("ready", 0);
                let consumer = b.function("consumer", 0, move |f| {
                    f.sem_acquire(ready);
                    f.read(g);
                });
                b.entry_fn("main", move |f| {
                    let t = f.spawn(consumer, Rvalue::Const(0));
                    f.write(g);
                    f.sem_release(ready);
                    f.join(t);
                });
            },
            seed,
        );
        assert_eq!(races, 0, "seed {seed}");
    }
}

#[test]
fn unprotected_access_next_to_semaphore_still_races() {
    // The semaphore protects nothing here: the racy write happens before P.
    let races = detect(
        |b| {
            let g = b.global_word("g");
            let sem = b.semaphore("s", 1);
            let w = b.function("w", 0, move |f| {
                f.write(g); // outside the critical section
                f.sem_acquire(sem);
                f.compute(3);
                f.sem_release(sem);
            });
            b.entry_fn("main", move |f| {
                let t1 = f.spawn(w, Rvalue::Const(0));
                let t2 = f.spawn(w, Rvalue::Const(0));
                f.join(t1);
                f.join(t2);
            });
        },
        1,
    );
    assert!(races > 0, "pre-P writes must still race");
}

#[test]
fn barrier_separates_phases() {
    // Phase 1: each thread writes its own slot. Barrier. Phase 2: each
    // thread reads the *other* thread's slot. Without the barrier edge this
    // is a textbook race; with it, it is clean.
    for seed in 0..10 {
        let races = detect(
            |b| {
                let slots = b.global_array("slots", 2);
                let bar = b.barrier("phase", 2);
                let w0 = b.function("w0", 0, move |f| {
                    f.write(slots.at(0));
                    f.barrier_wait(bar);
                    f.read(slots.at(1));
                });
                let w1 = b.function("w1", 0, move |f| {
                    f.write(slots.at(1));
                    f.barrier_wait(bar);
                    f.read(slots.at(0));
                });
                b.entry_fn("main", move |f| {
                    let t1 = f.spawn(w0, Rvalue::Const(0));
                    let t2 = f.spawn(w1, Rvalue::Const(0));
                    f.join(t1);
                    f.join(t2);
                });
            },
            seed,
        );
        assert_eq!(races, 0, "seed {seed}: barrier edge missing");
    }
}

#[test]
fn writes_in_the_same_phase_race_despite_the_barrier() {
    let races = detect(
        |b| {
            let g = b.global_word("g");
            let bar = b.barrier("phase", 2);
            let w = b.function("w", 0, move |f| {
                f.write(g); // both threads, same phase: race
                f.barrier_wait(bar);
            });
            b.entry_fn("main", move |f| {
                let t1 = f.spawn(w, Rvalue::Const(0));
                let t2 = f.spawn(w, Rvalue::Const(0));
                f.join(t1);
                f.join(t2);
            });
        },
        2,
    );
    assert_eq!(races, 1, "same-phase writes must race");
}

#[test]
fn multi_generation_barrier_pipeline_is_clean() {
    // Double-buffered pipeline: writers alternate buffers each generation,
    // readers read the buffer written in the previous generation.
    for seed in 0..6 {
        let races = detect(
            |b| {
                let bufs = b.global_array("bufs", 2);
                let bar = b.barrier("gen", 2);
                let w = b.function("w", 1, move |f| {
                    // Generation 0: write slot 0; barrier; read slot 1 …
                    f.loop_(4, |f| {
                        f.write(bufs.at(0));
                        f.barrier_wait(bar);
                        f.read(bufs.at(0));
                        f.barrier_wait(bar);
                    });
                });
                // One writer, one reader-ish (same body, same slot): every
                // write/read pair is separated by a barrier generation.
                b.entry_fn("main", move |f| {
                    let t1 = f.spawn(w, Rvalue::Const(0));
                    let t2 = f.spawn(w, Rvalue::Const(1));
                    f.join(t1);
                    f.join(t2);
                });
            },
            seed,
        );
        // Writes by both threads to bufs[0] in the SAME phase race; this
        // checks the barrier does not accidentally over-order (mask) them.
        assert!(races > 0, "seed {seed}: same-phase writes were masked");
    }
}

/// Frontier compaction reclaims location state once it can no longer race,
/// without changing any verdict: sequential (joined) phases touch disjoint
/// heap buffers; after each join the previous phase's locations are
/// reclaimable.
#[test]
fn compaction_bounds_tracked_locations() {
    use literace_detector::{HbConfig, HbCore};
    use literace_sim::{alloc_page_var, pages_of, Event, Observer};

    struct Probe {
        core: HbCore,
        peak: usize,
    }
    impl Observer for Probe {
        fn on_event(&mut self, event: &Event) {
            match *event {
                Event::MemRead { tid, pc, addr } => self.core.access(tid, pc, addr, false),
                Event::MemWrite { tid, pc, addr } => self.core.access(tid, pc, addr, true),
                Event::Sync { tid, kind, var, .. } => self.core.sync(tid, kind, var),
                Event::Alloc { tid, base, words, .. }
                | Event::Free { tid, base, words, .. } => {
                    for page in pages_of(base, words) {
                        self.core.sync(
                            tid,
                            literace_sim::SyncOpKind::AllocPage,
                            alloc_page_var(page),
                        );
                    }
                }
                Event::ThreadExit { tid } => {
                    self.core.retire_thread(tid);
                    self.core.compact();
                }
                _ => {}
            }
            self.peak = self.peak.max(self.core.tracked_locations());
        }
    }

    let mut pb = ProgramBuilder::new();
    let phase = pb.function("phase", 0, |f| {
        let buf = f.alloc(256);
        f.loop_(256, |f| {
            f.write(literace_sim::AddrExpr::Indirect { base: buf, offset: 0 });
        });
        // Touch each word once via indexed strides.
        let idx = f.local();
        f.loop_(256, |f| {
            f.write(literace_sim::AddrExpr::IndirectIndexed {
                base: buf,
                index: idx,
                modulus: 256,
            });
            f.add_local(idx, literace_sim::Rvalue::Const(1));
        });
        f.free(buf);
    });
    pb.entry_fn("main", move |f| {
        for _ in 0..8 {
            let t = f.spawn(phase, Rvalue::Const(0));
            f.join(t);
        }
    });
    let compiled = lower(&pb.build().unwrap());
    let mut probe = Probe {
        core: HbCore::new(HbConfig::default()),
        peak: 0,
    };
    Machine::new(&compiled, MachineConfig::default())
        .run(&mut RandomScheduler::seeded(1), &mut probe)
        .unwrap();
    // Eight phases × 256 distinct words would accumulate ~2048 locations
    // without compaction; with per-exit compaction the peak stays near one
    // phase's footprint.
    assert!(
        probe.peak < 700,
        "peak tracked locations {} suggests compaction is not reclaiming",
        probe.peak
    );
    let report = probe.core.finish(10_000);
    assert_eq!(report.static_count(), 0, "phases are join-ordered");
}
