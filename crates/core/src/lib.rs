//! # literace
//!
//! A reproduction of **"LiteRace: Effective Sampling for Lightweight
//! Data-Race Detection"** (Marino, Musuvathi, Narayanasamy — PLDI 2009) as
//! a Rust library.
//!
//! LiteRace makes dynamic data-race detection cheap enough for routine use
//! by *sampling* memory accesses with a **thread-local adaptive bursty
//! sampler** — cold code is logged at 100%, hot code backs off to 0.1% —
//! while logging *every* synchronization operation so that no false race is
//! ever reported. This crate ties together the whole reproduction:
//!
//! * [`pipeline`] — instrument a program, execute it, collect the event
//!   log, detect races offline;
//! * [`eval`] — the paper's §5.3 methodology: evaluate many samplers
//!   against one identical interleaving via a marked full-logging run;
//! * [`overhead`] — the Table 5 / Figure 6 cost model;
//! * [`experiments`] — drivers regenerating every table and figure of the
//!   paper's evaluation;
//! * re-exports of the substrate crates (simulator, samplers, instrument,
//!   detectors, logs, workloads).
//!
//! ## Quickstart
//!
//! ```
//! use literace::pipeline::{run_literace, RunConfig};
//! use literace::samplers::SamplerKind;
//! use literace::sim::{ProgramBuilder, Rvalue};
//!
//! // Two threads write a global without synchronization.
//! let mut b = ProgramBuilder::new();
//! let shared = b.global_word("shared");
//! let worker = b.function("worker", 0, move |f| {
//!     f.write(shared);
//! });
//! b.entry_fn("main", move |f| {
//!     let t1 = f.spawn(worker, Rvalue::Const(0));
//!     let t2 = f.spawn(worker, Rvalue::Const(1));
//!     f.join(t1);
//!     f.join(t2);
//! });
//! let program = b.build()?;
//!
//! let outcome = run_literace(&program, SamplerKind::TlAdaptive,
//!                            &RunConfig::seeded(42))?;
//! assert_eq!(outcome.report.static_count(), 1);
//! # Ok::<(), literace::sim::SimError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod charts;
pub mod eval;
pub mod experiments;
pub mod overhead;
pub mod pipeline;
pub mod render;
pub mod tables;

/// The simulator substrate (programs, machine, schedulers, events).
pub use literace_sim as sim;

/// Event-log records, codec and statistics.
pub use literace_log as log;

/// The sampling strategies of Table 3.
pub use literace_samplers as samplers;

/// The instrumentation pass (dispatch checks, timestamps, logging).
pub use literace_instrument as instrument;

/// Happens-before, FastTrack, lockset and online detectors.
pub use literace_detector as detector;

/// The paper's benchmark workloads.
pub use literace_workloads as workloads;

/// The pipeline-wide metrics registry, phase spans and snapshot exporters.
pub use literace_telemetry as telemetry;

/// Commonly used items, for glob import in examples and tests.
pub mod prelude {
    pub use crate::eval::{evaluate_program, EvalConfig, ProgramEval};
    pub use crate::experiments::{
        run_overhead_study, run_sampler_study, OverheadStudy, SamplerStudy,
    };
    pub use crate::overhead::{measure_overhead, OverheadReport};
    pub use crate::pipeline::{
        run_baseline, run_literace, run_literace_with_sink, RunConfig, RunOutcome,
    };
    pub use literace_detector::{detect, HbDetector, RaceReport, StaticRace};
    pub use literace_instrument::{InstrumentConfig, Instrumenter};
    pub use literace_log::{EventLog, Record, SamplerMask};
    pub use literace_samplers::{Dispatch, Sampler, SamplerKind};
    pub use literace_sim::{
        lower, Machine, MachineConfig, Program, ProgramBuilder, RandomScheduler, Rvalue,
        SimError,
    };
    pub use literace_workloads::{build, Scale, Workload, WorkloadId};
}
