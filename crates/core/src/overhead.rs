//! The Table 5 / Figure 6 overhead model.
//!
//! Execution time is modeled in abstract instructions (see
//! [`CostModel`](literace_sim::CostModel)); instrumentation overhead comes
//! from the instrumentation layer's accounting. The four configurations of
//! Figure 6 are measured by toggling instrumentation features, and the
//! full-logging comparison of Table 5 uses
//! [`InstrumentConfig::full_logging`].
//!
//! Log rates in MB/s use a nominal simulated clock of
//! [`SIM_INSTRUCTIONS_PER_SECOND`] abstract instructions per second.

use serde::{Deserialize, Serialize};

use literace_instrument::{InstrumentConfig, Instrumenter};
use literace_log::LogStats;
use literace_samplers::SamplerKind;
use literace_sim::{lower, ChunkedRandomScheduler, Machine, Program, SimError};

use crate::pipeline::RunConfig;

/// Nominal simulated clock: abstract instructions per second. Used only to
/// express log volume as MB/s, as the paper does.
pub const SIM_INSTRUCTIONS_PER_SECOND: f64 = 1.0e9;

/// One configuration's modeled cost and log volume.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct ConfigCost {
    /// Total modeled cost (baseline + overhead), abstract instructions.
    pub total_cost: u64,
    /// Overhead attributable to dispatch checks.
    pub dispatch: u64,
    /// Overhead attributable to synchronization logging.
    pub sync_logging: u64,
    /// Overhead attributable to memory-access logging.
    pub mem_logging: u64,
    /// Encoded log bytes produced.
    pub log_bytes: u64,
}

impl ConfigCost {
    /// Slowdown over a baseline cost.
    pub fn slowdown(&self, baseline: u64) -> f64 {
        if baseline == 0 {
            return 1.0;
        }
        self.total_cost as f64 / baseline as f64
    }

    /// Log rate in MB/s at the nominal clock, over this configuration's own
    /// modeled wall time.
    pub fn log_mb_per_s(&self) -> f64 {
        let seconds = self.total_cost as f64 / SIM_INSTRUCTIONS_PER_SECOND;
        if seconds <= 0.0 {
            return 0.0;
        }
        self.log_bytes as f64 / (1024.0 * 1024.0) / seconds
    }
}

/// The full overhead decomposition for one program (one row of Table 5 and
/// one bar group of Figure 6).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OverheadReport {
    /// Uninstrumented baseline cost.
    pub baseline_cost: u64,
    /// Baseline in nominal seconds.
    pub baseline_secs: f64,
    /// Dispatch checks only (Figure 6, second configuration).
    pub dispatch_only: ConfigCost,
    /// Dispatch + synchronization logging (third configuration).
    pub dispatch_sync: ConfigCost,
    /// Complete LiteRace with the thread-local adaptive sampler.
    pub literace: ConfigCost,
    /// Full logging (no dispatch, everything logged) — Table 5's comparison.
    pub full_logging: ConfigCost,
    /// LiteRace effective sampling rate in this run.
    pub literace_esr: f64,
}

impl OverheadReport {
    /// LiteRace slowdown (Table 5 column 3).
    pub fn literace_slowdown(&self) -> f64 {
        self.literace.slowdown(self.baseline_cost)
    }

    /// Full-logging slowdown (Table 5 column 4).
    pub fn full_logging_slowdown(&self) -> f64 {
        self.full_logging.slowdown(self.baseline_cost)
    }
}

fn run_config(
    program: &Program,
    sampler: SamplerKind,
    cfg: &RunConfig,
    instrument: InstrumentConfig,
) -> Result<(u64, ConfigCost), SimError> {
    let compiled = lower(program);
    let mut inst = Instrumenter::new(sampler.build(cfg.seed), instrument);
    let mut sched = ChunkedRandomScheduler::seeded(cfg.seed, cfg.sched_quantum);
    let summary = Machine::new(&compiled, cfg.machine).run(&mut sched, &mut inst)?;
    let out = inst.finish();
    let stats = LogStats::of(&out.log);
    Ok((
        summary.baseline_cost,
        ConfigCost {
            total_cost: summary.baseline_cost + out.overhead.total(),
            dispatch: out.overhead.dispatch,
            sync_logging: out.overhead.sync_logging,
            mem_logging: out.overhead.mem_logging,
            log_bytes: stats.bytes,
        },
    ))
}

/// Measures the four Figure 6 configurations plus full logging.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn measure_overhead(program: &Program, cfg: &RunConfig) -> Result<OverheadReport, SimError> {
    // Configuration 2: dispatch checks only.
    let dispatch_cfg = InstrumentConfig {
        sync_logging: false,
        alloc_sync: false,
        log_markers: false,
        ..cfg.instrument.clone()
    };
    let (baseline, dispatch_only) =
        run_config(program, SamplerKind::Never, cfg, dispatch_cfg)?;
    // Configuration 3: dispatch + synchronization logging.
    let (_, dispatch_sync) = run_config(
        program,
        SamplerKind::Never,
        cfg,
        cfg.instrument.clone(),
    )?;
    // Configuration 4: complete LiteRace (TL-Ad).
    let compiled_esr;
    let literace = {
        let compiled = lower(program);
        let mut inst = Instrumenter::new(
            SamplerKind::TlAdaptive.build(cfg.seed),
            cfg.instrument.clone(),
        );
        let mut sched = ChunkedRandomScheduler::seeded(cfg.seed, cfg.sched_quantum);
        let summary = Machine::new(&compiled, cfg.machine).run(&mut sched, &mut inst)?;
        let out = inst.finish();
        compiled_esr = out.stats.esr();
        let stats = LogStats::of(&out.log);
        ConfigCost {
            total_cost: summary.baseline_cost + out.overhead.total(),
            dispatch: out.overhead.dispatch,
            sync_logging: out.overhead.sync_logging,
            mem_logging: out.overhead.mem_logging,
            log_bytes: stats.bytes,
        }
    };
    // Table 5 comparison: full logging, no dispatch checks or cloned code.
    let full_cfg = InstrumentConfig {
        ..InstrumentConfig::full_logging()
    };
    let (_, full_logging) = run_config(program, SamplerKind::Always, cfg, full_cfg)?;

    Ok(OverheadReport {
        baseline_cost: baseline,
        baseline_secs: baseline as f64 / SIM_INSTRUCTIONS_PER_SECOND,
        dispatch_only,
        dispatch_sync,
        literace,
        full_logging,
        literace_esr: compiled_esr,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use literace_sim::{ProgramBuilder, Rvalue};

    fn program() -> Program {
        let mut b = ProgramBuilder::new();
        let g = b.global_word("g");
        let m = b.mutex("m");
        let hot = b.function("hot", 0, move |f| {
            f.read(g);
        });
        let w = b.function("w", 0, move |f| {
            f.loop_(2_000, |f| {
                f.lock(m);
                f.write(g);
                f.unlock(m);
                f.call(hot);
            });
        });
        b.entry_fn("main", move |f| {
            let t1 = f.spawn(w, Rvalue::Const(0));
            let t2 = f.spawn(w, Rvalue::Const(0));
            f.join(t1);
            f.join(t2);
        });
        b.build().unwrap()
    }

    #[test]
    fn overhead_configurations_are_ordered() {
        let r = measure_overhead(&program(), &RunConfig::seeded(3)).unwrap();
        // Figure 6: each configuration adds overhead on top of the previous.
        assert!(r.dispatch_only.total_cost > r.baseline_cost);
        assert!(r.dispatch_sync.total_cost > r.dispatch_only.total_cost);
        assert!(r.literace.total_cost > r.dispatch_sync.total_cost);
        // Full logging is the most expensive of all.
        assert!(
            r.full_logging_slowdown() > r.literace_slowdown(),
            "full {} vs literace {}",
            r.full_logging_slowdown(),
            r.literace_slowdown()
        );
    }

    #[test]
    fn literace_logs_less_than_full_logging() {
        let r = measure_overhead(&program(), &RunConfig::seeded(3)).unwrap();
        assert!(r.literace.log_bytes < r.full_logging.log_bytes);
        assert!(r.literace.log_mb_per_s() < r.full_logging.log_mb_per_s());
    }

    #[test]
    fn dispatch_only_has_no_logging_overhead() {
        let r = measure_overhead(&program(), &RunConfig::seeded(3)).unwrap();
        assert_eq!(r.dispatch_only.sync_logging, 0);
        assert_eq!(r.dispatch_only.mem_logging, 0);
        assert_eq!(r.dispatch_only.log_bytes, 0);
        assert!(r.dispatch_only.dispatch > 0);
    }

    #[test]
    fn full_logging_has_no_dispatch_overhead() {
        let r = measure_overhead(&program(), &RunConfig::seeded(3)).unwrap();
        assert_eq!(r.full_logging.dispatch, 0);
        assert!(r.full_logging.mem_logging > 0);
    }
}
