//! ASCII bar charts for the figure-regenerating binaries.
//!
//! The paper's Figures 4–6 are grouped bar charts; [`BarChart`] renders the
//! same data as horizontal bars so the shape (who wins, by how much) is
//! visible directly in a terminal, next to the exact numbers in the
//! accompanying tables.

use std::fmt;

/// A horizontal grouped bar chart.
///
/// # Examples
///
/// ```
/// use literace::charts::BarChart;
/// let mut c = BarChart::new("demo", 40);
/// c.group("Dryad")
///     .bar("TL-Ad", 0.875)
///     .bar("G-Ad", 0.75);
/// let s = c.to_string();
/// assert!(s.contains("TL-Ad"));
/// assert!(s.contains("87.5%"));
/// ```
#[derive(Debug, Clone)]
pub struct BarChart {
    title: String,
    width: usize,
    groups: Vec<(String, Vec<(String, f64)>)>,
    /// Values are fractions in `[0, 1]` shown as percentages when true
    /// (the default), otherwise raw numbers scaled to the maximum.
    percent: bool,
}

/// Builder handle for one group's bars.
#[derive(Debug)]
pub struct GroupBuilder<'a> {
    chart: &'a mut BarChart,
}

impl BarChart {
    /// Creates an empty chart; `width` is the maximum bar width in cells.
    pub fn new(title: &str, width: usize) -> BarChart {
        BarChart {
            title: title.to_owned(),
            width: width.max(8),
            groups: Vec::new(),
            percent: true,
        }
    }

    /// Switches to raw-value mode: bars are scaled to the chart's maximum
    /// value and labeled with the raw numbers (used for slowdown factors).
    pub fn raw_values(mut self) -> BarChart {
        self.percent = false;
        self
    }

    /// Starts a new group (e.g. one benchmark).
    pub fn group(&mut self, label: &str) -> GroupBuilder<'_> {
        self.groups.push((label.to_owned(), Vec::new()));
        GroupBuilder { chart: self }
    }

    /// Number of groups so far.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Whether the chart has no groups.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }
}

impl GroupBuilder<'_> {
    /// Adds one bar to the current group.
    pub fn bar(self, label: &str, value: f64) -> Self {
        self.chart
            .groups
            .last_mut()
            .expect("group exists")
            .1
            .push((label.to_owned(), value.max(0.0)));
        self
    }
}

impl fmt::Display for BarChart {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} ==", self.title)?;
        let label_w = self
            .groups
            .iter()
            .flat_map(|(_, bars)| bars.iter().map(|(l, _)| l.len()))
            .max()
            .unwrap_or(0);
        let max_val = if self.percent {
            1.0
        } else {
            self.groups
                .iter()
                .flat_map(|(_, bars)| bars.iter().map(|(_, v)| *v))
                .fold(0.0f64, f64::max)
                .max(f64::MIN_POSITIVE)
        };
        for (group, bars) in &self.groups {
            writeln!(f, "{group}")?;
            for (label, value) in bars {
                let frac = (value / max_val).clamp(0.0, 1.0);
                let filled = (frac * self.width as f64).round() as usize;
                let bar: String = std::iter::repeat_n('█', filled)
                    .chain(std::iter::repeat_n('·', self.width - filled))
                    .collect();
                let num = if self.percent {
                    format!("{:.1}%", value * 100.0)
                } else {
                    format!("{value:.2}")
                };
                writeln!(f, "  {label:<label_w$} {bar} {num}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scaled_bars() {
        let mut c = BarChart::new("t", 10);
        c.group("g").bar("full", 1.0).bar("half", 0.5).bar("none", 0.0);
        let s = c.to_string();
        assert!(s.contains("██████████ 100.0%"), "{s}");
        assert!(s.contains("█████····· 50.0%"), "{s}");
        assert!(s.contains("·········· 0.0%"), "{s}");
    }

    #[test]
    fn raw_mode_scales_to_max() {
        let mut c = BarChart::new("slowdowns", 10);
        c.group("g").bar("a", 2.0).bar("b", 4.0);
        let c = c.raw_values();
        let s = c.to_string();
        assert!(s.contains("4.00"), "{s}");
        // b is the max → full bar; a → half bar.
        assert!(s.contains("█████····· 2.00"), "{s}");
    }

    #[test]
    fn values_above_scale_are_clamped() {
        let mut c = BarChart::new("t", 10);
        c.group("g").bar("over", 1.5);
        let s = c.to_string();
        assert!(s.contains("██████████ 150.0%"), "{s}");
    }

    #[test]
    fn labels_align() {
        let mut c = BarChart::new("t", 8);
        c.group("g").bar("ab", 0.1).bar("abcdef", 0.2);
        let s = c.to_string();
        let lines: Vec<&str> = s.lines().filter(|l| l.contains('█') || l.contains('·')).collect();
        let starts: Vec<usize> = lines
            .iter()
            .map(|l| l.find(['█', '·']).unwrap())
            .collect();
        assert_eq!(starts[0], starts[1], "{s}");
    }
}
