//! Drivers that regenerate every table and figure of the paper's
//! evaluation (§5), printing paper-reference values next to measured ones.
//!
//! * [`SamplerStudy`] (one set of marked runs over the detection benchmarks)
//!   renders **Table 3** (effective sampling rates), **Table 4** (races
//!   found, rare/frequent), **Figure 4** (detection rate per sampler per
//!   benchmark) and **Figure 5** (rare vs frequent detection rates).
//! * [`OverheadStudy`] renders **Table 5** (slowdowns and log rates) and
//!   **Figure 6** (stacked overhead decomposition).

use serde::{Deserialize, Serialize};

use literace_samplers::SamplerKind;
use literace_sim::SimError;
use literace_workloads::{build, Scale, WorkloadId};

use crate::eval::{evaluate_program, EvalConfig, ProgramEval};
use crate::overhead::{measure_overhead, OverheadReport};
use crate::pipeline::RunConfig;
use crate::charts::BarChart;
use crate::tables::{mb_s, pct, slowdown, Table};

/// Renders Table 1: how each synchronization-operation class maps to its
/// `SyncVar` and whether additional synchronization is required for atomic
/// timestamping (§4.2). This is a design table; the mapping itself lives in
/// `literace-sim` and is exercised by every detection test.
pub fn table1() -> Table {
    let mut t = Table::new(
        "Table 1: logging synchronization operations",
        &["Synchronization Op", "SyncVar", "Add'l Sync?"],
    );
    t.row(vec![
        "Lock / Unlock".into(),
        "lock object address".into(),
        "no".into(),
    ]);
    t.row(vec![
        "Wait / Notify".into(),
        "event handle".into(),
        "no".into(),
    ]);
    t.row(vec![
        "Fork / Join".into(),
        "child thread id".into(),
        "no".into(),
    ]);
    t.row(vec![
        "Atomic machine ops".into(),
        "target memory address".into(),
        "yes".into(),
    ]);
    t.row(vec![
        "Semaphore P / V (extension)".into(),
        "semaphore address".into(),
        "no".into(),
    ]);
    t.row(vec![
        "Barrier wait (extension)".into(),
        "barrier address".into(),
        "no".into(),
    ]);
    t.row(vec![
        "Alloc / Free (§4.3)".into(),
        "containing page number".into(),
        "no".into(),
    ]);
    t
}

/// Renders Table 2: the benchmark inventory with *measured* function counts
/// from the generated programs next to the paper's (the paper also reports
/// binary sizes, which have no analog here).
pub fn table2(scale: Scale) -> Table {
    let mut t = Table::new(
        "Table 2: benchmarks used",
        &["Benchmark", "Description", "#Fns", "(paper #Fns)"],
    );
    let paper_fns = |id: WorkloadId| match id {
        WorkloadId::DryadStdlib | WorkloadId::Dryad => "4788",
        WorkloadId::ConcrtMessaging | WorkloadId::ConcrtScheduling => "1889",
        WorkloadId::Apache1 | WorkloadId::Apache2 => "2178",
        WorkloadId::FirefoxStart | WorkloadId::FirefoxRender => "8192",
        WorkloadId::LkrHash | WorkloadId::LfList => "—",
    };
    for id in WorkloadId::all() {
        let w = build(id, scale);
        t.row(vec![
            id.name().to_owned(),
            w.spec.description.to_owned(),
            w.program.functions().len().to_string(),
            paper_fns(id).to_owned(),
        ]);
    }
    t
}

/// Results of the §5.3 sampler study over the detection benchmark set.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SamplerStudy {
    /// Sampler kinds evaluated, in column order.
    pub samplers: Vec<SamplerKind>,
    /// Per-workload evaluation results.
    pub per_workload: Vec<(WorkloadId, ProgramEval)>,
}

/// Runs the sampler study over the paper's detection benchmarks.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn run_sampler_study(scale: Scale, seeds: &[u64]) -> Result<SamplerStudy, SimError> {
    run_sampler_study_on(scale, seeds, &WorkloadId::detection_set())
}

/// Runs the sampler study over an explicit workload list.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn run_sampler_study_on(
    scale: Scale,
    seeds: &[u64],
    workloads: &[WorkloadId],
) -> Result<SamplerStudy, SimError> {
    let samplers = SamplerKind::study_set().to_vec();
    let cfg = EvalConfig {
        seeds: seeds.to_vec(),
        samplers: samplers.clone(),
        ..EvalConfig::default()
    };
    let mut per_workload = Vec::new();
    for &id in workloads {
        let w = build(id, scale);
        let eval = evaluate_program(&w.program, &cfg)?;
        per_workload.push((id, eval));
    }
    Ok(SamplerStudy {
        samplers,
        per_workload,
    })
}

/// Like [`run_sampler_study_on`], but evaluating the workloads on parallel
/// OS threads (they are fully independent). Results are identical to the
/// sequential version — generation and evaluation are deterministic — only
/// wall-clock time changes.
///
/// # Errors
///
/// Propagates the first simulator error from any workload.
pub fn run_sampler_study_parallel(
    scale: Scale,
    seeds: &[u64],
    workloads: &[WorkloadId],
) -> Result<SamplerStudy, SimError> {
    run_sampler_study_parallel_threads(scale, seeds, workloads, 1)
}

/// Like [`run_sampler_study_parallel`], additionally sharding each offline
/// detection pass across `detect_threads` workers (see
/// [`literace_detector::detect_sharded`]). Sharded detection is
/// byte-identical to sequential, so results still match
/// [`run_sampler_study_on`].
///
/// # Errors
///
/// Propagates the first simulator error from any workload.
pub fn run_sampler_study_parallel_threads(
    scale: Scale,
    seeds: &[u64],
    workloads: &[WorkloadId],
    detect_threads: usize,
) -> Result<SamplerStudy, SimError> {
    run_sampler_study_parallel_opts(scale, seeds, workloads, detect_threads, false)
}

/// Like [`run_sampler_study_parallel_threads`], additionally choosing the
/// streaming detection path ([`literace_detector::detect_stream`]) for
/// every offline pass. Streaming detection is byte-identical to the
/// materialized path, so results still match [`run_sampler_study_on`].
///
/// # Errors
///
/// Propagates the first simulator error from any workload.
pub fn run_sampler_study_parallel_opts(
    scale: Scale,
    seeds: &[u64],
    workloads: &[WorkloadId],
    detect_threads: usize,
    streaming_detect: bool,
) -> Result<SamplerStudy, SimError> {
    let samplers = SamplerKind::study_set().to_vec();
    let cfg = EvalConfig {
        seeds: seeds.to_vec(),
        samplers: samplers.clone(),
        detect_threads,
        streaming_detect,
        ..EvalConfig::default()
    };
    // Slot per workload, filled from worker threads; parking_lot's mutex is
    // cheap enough to take per completed workload.
    let results: parking_lot::Mutex<Vec<Option<Result<ProgramEval, SimError>>>> =
        parking_lot::Mutex::new((0..workloads.len()).map(|_| None).collect());
    crossbeam::thread::scope(|scope| {
        for (slot, &id) in workloads.iter().enumerate() {
            let cfg = &cfg;
            let results = &results;
            scope.spawn(move |_| {
                let w = build(id, scale);
                let eval = evaluate_program(&w.program, cfg);
                results.lock()[slot] = Some(eval);
            });
        }
    })
    .expect("evaluation workers do not panic");
    let mut per_workload = Vec::with_capacity(workloads.len());
    for (slot, &id) in workloads.iter().enumerate() {
        let eval = results.lock()[slot]
            .take()
            .expect("every worker fills its slot")?;
        per_workload.push((id, eval));
    }
    Ok(SamplerStudy {
        samplers,
        per_workload,
    })
}

impl SamplerStudy {
    /// Weighted-average effective sampling rate for sampler `i` — weights
    /// are each benchmark's executed memory-access count (Table 3).
    pub fn weighted_esr(&self, i: usize) -> f64 {
        let total: u64 = self.per_workload.iter().map(|(_, e)| e.total_mem).sum();
        if total == 0 {
            return 0.0;
        }
        let logged: u64 = self
            .per_workload
            .iter()
            .map(|(_, e)| e.samplers[i].logged_mem)
            .sum();
        logged as f64 / total as f64
    }

    /// Unweighted average ESR for sampler `i` (Table 3's second column).
    pub fn average_esr(&self, i: usize) -> f64 {
        if self.per_workload.is_empty() {
            return 0.0;
        }
        self.per_workload
            .iter()
            .map(|(_, e)| e.samplers[i].esr)
            .sum::<f64>()
            / self.per_workload.len() as f64
    }

    /// Average overall detection rate for sampler `i` (Figure 4's Average).
    pub fn average_detection(&self, i: usize) -> f64 {
        if self.per_workload.is_empty() {
            return 0.0;
        }
        self.per_workload
            .iter()
            .map(|(_, e)| e.samplers[i].detection_rate)
            .sum::<f64>()
            / self.per_workload.len() as f64
    }

    fn average_rate(&self, i: usize, rare: bool) -> f64 {
        if self.per_workload.is_empty() {
            return 0.0;
        }
        self.per_workload
            .iter()
            .map(|(_, e)| {
                let s = &e.samplers[i];
                if rare {
                    s.rare_detection_rate
                } else {
                    s.frequent_detection_rate
                }
            })
            .sum::<f64>()
            / self.per_workload.len() as f64
    }

    /// Renders Table 3: sampler descriptions and effective sampling rates.
    /// The paper's reference ESRs are shown alongside.
    pub fn table3(&self) -> Table {
        let paper_weighted = [1.8, 5.2, 1.3, 10.0, 9.9, 24.8, 98.9];
        let paper_avg = [8.2, 11.5, 2.9, 10.3, 9.6, 24.0, 92.3];
        let mut t = Table::new(
            "Table 3: samplers and effective sampling rates",
            &[
                "Sampler",
                "Weighted ESR",
                "(paper)",
                "Average ESR",
                "(paper)",
            ],
        );
        for (i, k) in self.samplers.iter().enumerate() {
            t.row(vec![
                k.short_name().to_owned(),
                pct(self.weighted_esr(i)),
                paper_weighted
                    .get(i)
                    .map(|p| format!("{p}%"))
                    .unwrap_or_default(),
                pct(self.average_esr(i)),
                paper_avg
                    .get(i)
                    .map(|p| format!("{p}%"))
                    .unwrap_or_default(),
            ]);
        }
        t
    }

    /// Renders Table 4: static races found under full logging (median over
    /// seeds), split rare/frequent, with the paper's counts.
    pub fn table4(&self) -> Table {
        let mut t = Table::new(
            "Table 4: static data races found (full logging)",
            &[
                "Benchmark",
                "races",
                "(paper)",
                "rare",
                "(paper)",
                "freq",
                "(paper)",
            ],
        );
        for (id, e) in &self.per_workload {
            let spec = literace_workloads::spec(*id);
            let fmt_opt = |o: Option<u32>| o.map(|v| v.to_string()).unwrap_or_else(|| "—".into());
            t.row(vec![
                id.name().to_owned(),
                e.truth.static_races_median.to_string(),
                fmt_opt(spec.paper.races),
                e.truth.rare_median.to_string(),
                fmt_opt(spec.paper.rare),
                e.truth.frequent_median.to_string(),
                fmt_opt(spec.paper.frequent),
            ]);
        }
        t
    }

    /// Renders Figure 4: per-benchmark detection rate for every sampler,
    /// plus the average row and each sampler's weighted ESR.
    pub fn fig4(&self) -> Table {
        let mut headers: Vec<&str> = vec!["Benchmark"];
        let names: Vec<String> = self
            .samplers
            .iter()
            .map(|k| k.short_name().to_owned())
            .collect();
        headers.extend(names.iter().map(|s| s.as_str()));
        let mut t = Table::new(
            "Figure 4: proportion of static data races found by sampler",
            &headers,
        );
        for (id, e) in &self.per_workload {
            let mut row = vec![id.name().to_owned()];
            row.extend(e.samplers.iter().map(|s| pct(s.detection_rate)));
            t.row(row);
        }
        let mut avg = vec!["Average".to_owned()];
        avg.extend((0..self.samplers.len()).map(|i| pct(self.average_detection(i))));
        t.row(avg);
        let mut esr = vec!["Weighted Avg Eff Sampling Rate".to_owned()];
        esr.extend((0..self.samplers.len()).map(|i| pct(self.weighted_esr(i))));
        t.row(esr);
        t
    }

    /// Renders a stability companion to Figure 4: each sampler's average
    /// detection rate with its per-seed minimum and maximum across the
    /// study's runs, pooled over benchmarks — how much a single deployment
    /// can deviate from the average (the paper reports only averages of
    /// three runs).
    pub fn fig4_stability(&self) -> Table {
        let mut t = Table::new(
            "Figure 4 companion: per-seed detection-rate spread",
            &["Sampler", "average", "min seed", "max seed"],
        );
        for (i, k) in self.samplers.iter().enumerate() {
            let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
            for (_, e) in &self.per_workload {
                lo = lo.min(e.samplers[i].detection_rate_min);
                hi = hi.max(e.samplers[i].detection_rate_max);
            }
            t.row(vec![
                k.short_name().to_owned(),
                pct(self.average_detection(i)),
                pct(lo.min(1.0)),
                pct(hi.max(0.0)),
            ]);
        }
        t
    }

    /// Renders Figure 4 as a bar chart (the paper's presentation).
    pub fn fig4_chart(&self) -> BarChart {
        let mut c = BarChart::new(
            "Figure 4 (chart): proportion of static data races found",
            48,
        );
        for (id, e) in &self.per_workload {
            let mut g = c.group(id.name());
            for s in &e.samplers {
                g = g.bar(&s.name, s.detection_rate);
            }
        }
        let mut g = c.group("Average");
        for i in 0..self.samplers.len() {
            let name = self.samplers[i].short_name().to_owned();
            g = g.bar(&name, self.average_detection(i));
        }
        c
    }

    /// Renders Figure 5 as two bar charts (rare, frequent averages).
    pub fn fig5_charts(&self) -> (BarChart, BarChart) {
        let make = |rare: bool| {
            let title = if rare {
                "Figure 5 (chart, left): rare race detection rate (average)"
            } else {
                "Figure 5 (chart, right): frequent race detection rate (average)"
            };
            let mut c = BarChart::new(title, 48);
            let mut g = c.group("Average over benchmarks");
            for i in 0..self.samplers.len() {
                let name = self.samplers[i].short_name().to_owned();
                g = g.bar(&name, self.average_rate(i, rare));
            }
            c
        };
        (make(true), make(false))
    }

    /// Renders Figure 5: detection rates split into rare and frequent.
    pub fn fig5(&self) -> (Table, Table) {
        let make = |rare: bool| {
            let title = if rare {
                "Figure 5 (left): rare data-race detection rate"
            } else {
                "Figure 5 (right): frequent data-race detection rate"
            };
            let mut headers: Vec<&str> = vec!["Benchmark"];
            let names: Vec<String> = self
                .samplers
                .iter()
                .map(|k| k.short_name().to_owned())
                .collect();
            headers.extend(names.iter().map(|s| s.as_str()));
            let mut t = Table::new(title, &headers);
            for (id, e) in &self.per_workload {
                let mut row = vec![id.name().to_owned()];
                row.extend(e.samplers.iter().map(|s| {
                    pct(if rare {
                        s.rare_detection_rate
                    } else {
                        s.frequent_detection_rate
                    })
                }));
                t.row(row);
            }
            let mut avg = vec!["Average".to_owned()];
            avg.extend((0..self.samplers.len()).map(|i| pct(self.average_rate(i, rare))));
            t.row(avg);
            t
        };
        (make(true), make(false))
    }
}

impl SamplerStudy {
    /// Renders the complete detection side of the evaluation (Tables 3–4,
    /// Figures 4–5 with charts) as a markdown document fragment, for
    /// writing regenerated artifacts to disk.
    pub fn to_markdown(&self) -> String {
        let (rare, frequent) = self.fig5();
        let (rare_chart, frequent_chart) = self.fig5_charts();
        format!(
            "## Sampler study (§5.3)\n\n```text\n{}\n{}\n{}\n{}\n{}\n{}\n{}\n{}\n```\n",
            self.table3(),
            self.table4(),
            self.fig4(),
            self.fig4_chart(),
            self.fig4_stability(),
            rare,
            frequent,
            format_args!("{rare_chart}\n{frequent_chart}"),
        )
    }
}

/// Results of the §5.4 overhead study over all ten workloads.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OverheadStudy {
    /// Per-workload overhead reports.
    pub rows: Vec<(WorkloadId, OverheadReport)>,
}

/// Runs the overhead study over all workloads (micro-benchmarks included).
///
/// # Errors
///
/// Propagates simulator errors.
pub fn run_overhead_study(scale: Scale, seed: u64) -> Result<OverheadStudy, SimError> {
    run_overhead_study_on(scale, seed, &WorkloadId::all())
}

/// Runs the overhead study over an explicit workload list.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn run_overhead_study_on(
    scale: Scale,
    seed: u64,
    workloads: &[WorkloadId],
) -> Result<OverheadStudy, SimError> {
    let cfg = RunConfig::seeded(seed);
    let mut rows = Vec::new();
    for &id in workloads {
        let w = build(id, scale);
        let report = measure_overhead(&w.program, &cfg)?;
        rows.push((id, report));
    }
    Ok(OverheadStudy { rows })
}

impl OverheadStudy {
    /// Renders Table 5: slowdowns and log rates, LiteRace vs full logging,
    /// with the paper's reference values.
    pub fn table5(&self) -> Table {
        let mut t = Table::new(
            "Table 5: performance and log-size overhead",
            &[
                "Benchmark",
                "LiteRace slow",
                "(paper)",
                "Full slow",
                "(paper)",
                "LR MB/s",
                "(paper)",
                "Full MB/s",
                "(paper)",
            ],
        );
        let mut lr_sum = 0.0;
        let mut full_sum = 0.0;
        for (id, r) in &self.rows {
            let paper = literace_workloads::spec(*id).paper;
            lr_sum += r.literace_slowdown();
            full_sum += r.full_logging_slowdown();
            t.row(vec![
                id.name().to_owned(),
                slowdown(r.literace_slowdown()),
                slowdown(paper.literace_slowdown),
                slowdown(r.full_logging_slowdown()),
                slowdown(paper.full_logging_slowdown),
                mb_s(r.literace.log_mb_per_s()),
                mb_s(paper.literace_mb_s),
                mb_s(r.full_logging.log_mb_per_s()),
                mb_s(paper.full_logging_mb_s),
            ]);
        }
        let n = self.rows.len().max(1) as f64;
        t.row(vec![
            "Average".to_owned(),
            slowdown(lr_sum / n),
            "1.47x".to_owned(),
            slowdown(full_sum / n),
            "9.09x".to_owned(),
            String::new(),
            "28.6".to_owned(),
            String::new(),
            "396.5".to_owned(),
        ]);
        t
    }

    /// Renders Figure 6 as a bar chart of LiteRace slowdowns.
    pub fn fig6_chart(&self) -> BarChart {
        let mut c = BarChart::new(
            "Figure 6 (chart): LiteRace slowdown over uninstrumented baseline",
            48,
        );
        let mut g = c.group("Slowdown (x)");
        for (id, r) in &self.rows {
            g = g.bar(id.name(), r.literace_slowdown());
        }
        c.raw_values()
    }

    /// Renders Figure 6: the stacked overhead decomposition, as each
    /// configuration's slowdown over baseline.
    pub fn fig6(&self) -> Table {
        let mut t = Table::new(
            "Figure 6: LiteRace overhead decomposition (slowdown over baseline)",
            &[
                "Benchmark",
                "baseline",
                "+dispatch",
                "+sync log",
                "+mem log (LiteRace)",
            ],
        );
        for (id, r) in &self.rows {
            t.row(vec![
                id.name().to_owned(),
                "1.00x".to_owned(),
                slowdown(r.dispatch_only.slowdown(r.baseline_cost)),
                slowdown(r.dispatch_sync.slowdown(r.baseline_cost)),
                slowdown(r.literace.slowdown(r.baseline_cost)),
            ]);
        }
        t
    }
}

impl OverheadStudy {
    /// Renders the overhead side of the evaluation (Table 5, Figure 6) as a
    /// markdown document fragment.
    pub fn to_markdown(&self) -> String {
        format!(
            "## Overhead study (§5.4)\n\n```text\n{}\n{}\n{}\n```\n",
            self.table5(),
            self.fig6(),
            self.fig6_chart(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sampler_study_renders_all_tables() {
        let study =
            run_sampler_study_on(Scale::Smoke, &[1], &[WorkloadId::Dryad]).unwrap();
        assert!(study.table3().to_string().contains("TL-Ad"));
        assert!(study.table4().to_string().contains("Dryad"));
        assert!(study.fig4().to_string().contains("Average"));
        let (rare, freq) = study.fig5();
        assert!(rare.to_string().contains("rare"));
        assert!(freq.to_string().contains("frequent"));
    }

    #[test]
    fn table1_and_table2_render() {
        let t1 = table1().to_string();
        assert!(t1.contains("Atomic machine ops"));
        assert!(t1.contains("child thread id"));
        let t2 = table2(Scale::Smoke).to_string();
        assert!(t2.contains("Firefox Render"));
        assert!(t2.contains("4788"));
    }

    #[test]
    fn parallel_study_matches_sequential() {
        let ids = [WorkloadId::Dryad, WorkloadId::LkrHash];
        let seq = run_sampler_study_on(Scale::Smoke, &[1], &ids).unwrap();
        let par = run_sampler_study_parallel(Scale::Smoke, &[1], &ids).unwrap();
        assert_eq!(seq.table3().to_string(), par.table3().to_string());
        assert_eq!(seq.fig4().to_string(), par.fig4().to_string());
        // Sharded offline detection inside the study changes nothing either.
        let sharded = run_sampler_study_parallel_threads(Scale::Smoke, &[1], &ids, 4).unwrap();
        assert_eq!(seq.table4().to_string(), sharded.table4().to_string());
        assert_eq!(seq.fig4().to_string(), sharded.fig4().to_string());
        // As does routing every pass through streaming detection.
        let streamed =
            run_sampler_study_parallel_opts(Scale::Smoke, &[1], &ids, 4, true).unwrap();
        assert_eq!(seq.table4().to_string(), streamed.table4().to_string());
        assert_eq!(seq.fig4().to_string(), streamed.fig4().to_string());
    }

    #[test]
    fn markdown_fragments_render() {
        let study =
            run_sampler_study_on(Scale::Smoke, &[1], &[WorkloadId::Dryad]).unwrap();
        let md = study.to_markdown();
        assert!(md.contains("## Sampler study"));
        assert!(md.contains("Table 4"));
        let os = run_overhead_study_on(Scale::Smoke, 1, &[WorkloadId::Dryad]).unwrap();
        let md = os.to_markdown();
        assert!(md.contains("Table 5"));
        assert!(md.contains("Figure 6"));
    }

    #[test]
    fn smoke_overhead_study_renders() {
        let study =
            run_overhead_study_on(Scale::Smoke, 1, &[WorkloadId::LkrHash]).unwrap();
        let t5 = study.table5().to_string();
        assert!(t5.contains("LKRHash"));
        let f6 = study.fig6().to_string();
        assert!(f6.contains("+dispatch"));
    }
}
