//! The §5.3 sampler-effectiveness methodology.
//!
//! One marked run produces a full log where every memory record carries a
//! bitmask of the samplers that would have logged it. Ground truth is
//! detection over the full log; each sampler's result is detection over its
//! subset. Rates are averaged over several scheduler seeds (the paper runs
//! each benchmark three times and averages).

use std::collections::HashSet;

use serde::{Deserialize, Serialize};

use literace_detector::{DetectConfig, RaceReport};
use literace_instrument::{InstrumentConfig, MultiSamplerInstrumenter};
use literace_log::SamplerMask;
use literace_samplers::SamplerKind;
use literace_sim::{
    lower, ChunkedRandomScheduler, Machine, MachineConfig, Pc, Program, SimError,
};

/// Configuration for a sampler-comparison evaluation.
#[derive(Debug, Clone)]
pub struct EvalConfig {
    /// Scheduler seeds; one marked run per seed.
    pub seeds: Vec<u64>,
    /// The samplers to compare (≤ 32).
    pub samplers: Vec<SamplerKind>,
    /// Scheduler chunk size.
    pub sched_quantum: u32,
    /// Machine limits.
    pub machine: MachineConfig,
    /// Instrumentation knobs (alloc-sync etc.).
    pub instrument: InstrumentConfig,
    /// Worker threads for each offline detection pass (1 = sequential;
    /// sharded detection is byte-identical, so results don't change).
    pub detect_threads: usize,
    /// Use the streaming detection path for each pass (byte-identical to
    /// the materialized path; see
    /// [`detect_stream`](literace_detector::detect_stream)).
    pub streaming_detect: bool,
}

impl Default for EvalConfig {
    fn default() -> EvalConfig {
        EvalConfig {
            seeds: vec![1, 2, 3],
            samplers: SamplerKind::paper_set().to_vec(),
            sched_quantum: 64,
            machine: MachineConfig::default(),
            instrument: InstrumentConfig::default(),
            detect_threads: 1,
            streaming_detect: false,
        }
    }
}

/// Per-sampler aggregate over all seeds.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SamplerEval {
    /// Sampler short name.
    pub name: String,
    /// Effective sampling rate: logged / executed memory ops, pooled over
    /// seeds (Table 3).
    pub esr: f64,
    /// Fraction of ground-truth static races detected, averaged per seed
    /// (Figure 4).
    pub detection_rate: f64,
    /// Lowest per-seed detection rate (stability across interleavings).
    pub detection_rate_min: f64,
    /// Highest per-seed detection rate.
    pub detection_rate_max: f64,
    /// Detection rate over ground-truth *rare* races (Figure 5, left).
    pub rare_detection_rate: f64,
    /// Detection rate over ground-truth *frequent* races (Figure 5, right).
    pub frequent_detection_rate: f64,
    /// Total memory records this sampler would have logged (all seeds).
    pub logged_mem: u64,
}

/// Ground-truth statistics, pooled over seeds.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GroundTruth {
    /// Static races found by full logging, median over seeds (Table 4).
    pub static_races_median: u64,
    /// Rare static races, median over seeds.
    pub rare_median: u64,
    /// Frequent static races, median over seeds.
    pub frequent_median: u64,
    /// Static races per seed.
    pub per_seed: Vec<u64>,
}

/// The result of evaluating all samplers on one program.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProgramEval {
    /// Ground-truth race statistics.
    pub truth: GroundTruth,
    /// Per-sampler aggregates, index-aligned with the config's samplers.
    pub samplers: Vec<SamplerEval>,
    /// Memory accesses executed, summed over seeds.
    pub total_mem: u64,
    /// Non-stack memory accesses executed, summed over seeds.
    pub non_stack: u64,
}

fn median(mut v: Vec<u64>) -> u64 {
    if v.is_empty() {
        return 0;
    }
    v.sort_unstable();
    v[v.len() / 2]
}

/// Runs the marked-run evaluation on one program.
///
/// # Errors
///
/// Propagates simulator errors from any seed's run.
pub fn evaluate_program(program: &Program, cfg: &EvalConfig) -> Result<ProgramEval, SimError> {
    let compiled = lower(program);
    let n = cfg.samplers.len();
    let mut per_sampler_logged = vec![0u64; n];
    let mut per_sampler_det = vec![0.0f64; n];
    let mut per_sampler_det_min = vec![f64::INFINITY; n];
    let mut per_sampler_det_max = vec![f64::NEG_INFINITY; n];
    let mut per_sampler_rare = vec![(0u64, 0u64); n]; // (found, truth)
    let mut per_sampler_freq = vec![(0u64, 0u64); n];
    let mut truth_counts = Vec::new();
    let mut rare_counts = Vec::new();
    let mut freq_counts = Vec::new();
    let mut total_mem = 0u64;
    let mut non_stack = 0u64;

    // Samplers operating over the static prefilter's residual site set get
    // the skip table applied to their mask bits; everyone else (including
    // the ground-truth full log) is untouched.
    let prefilter_mask = cfg
        .samplers
        .iter()
        .enumerate()
        .filter(|(_, k)| k.needs_prefilter())
        .fold(SamplerMask::EMPTY, |m, (i, _)| m.union(SamplerMask::bit(i)));
    let table = if prefilter_mask.is_empty() {
        None
    } else {
        Some(literace_sim::PrefilterTable::build(&compiled))
    };

    for &seed in &cfg.seeds {
        let samplers = cfg.samplers.iter().map(|k| k.build(seed)).collect();
        let mut obs = match &table {
            Some(t) => MultiSamplerInstrumenter::with_prefilter(
                samplers,
                cfg.instrument.clone(),
                t.clone(),
                prefilter_mask,
            ),
            None => MultiSamplerInstrumenter::new(samplers, cfg.instrument.clone()),
        };
        let mut sched = ChunkedRandomScheduler::seeded(seed, cfg.sched_quantum);
        let summary = Machine::new(&compiled, cfg.machine).run(&mut sched, &mut obs)?;
        let out = obs.finish();
        total_mem += out.total_mem;
        non_stack += summary.non_stack_accesses;

        // Ground truth: full log.
        let truth = detect_log(&out.log, summary.non_stack_accesses, cfg);
        let (truth_rare, truth_freq) = truth.split_by_rarity();
        let rare_keys: HashSet<(Pc, Pc)> = truth_rare.iter().map(|s| s.pcs).collect();
        let freq_keys: HashSet<(Pc, Pc)> = truth_freq.iter().map(|s| s.pcs).collect();
        truth_counts.push(truth.static_count() as u64);
        rare_counts.push(rare_keys.len() as u64);
        freq_counts.push(freq_keys.len() as u64);

        for i in 0..n {
            per_sampler_logged[i] += out.per_sampler[i].logged_mem;
            let subset = out.log.sampler_subset(i);
            let found = detect_log(&subset, summary.non_stack_accesses, cfg);
            let rate = found.detection_rate_against(&truth);
            per_sampler_det[i] += rate;
            per_sampler_det_min[i] = per_sampler_det_min[i].min(rate);
            per_sampler_det_max[i] = per_sampler_det_max[i].max(rate);
            let found_keys = found.static_keys();
            per_sampler_rare[i].0 +=
                rare_keys.iter().filter(|k| found_keys.contains(*k)).count() as u64;
            per_sampler_rare[i].1 += rare_keys.len() as u64;
            per_sampler_freq[i].0 +=
                freq_keys.iter().filter(|k| found_keys.contains(*k)).count() as u64;
            per_sampler_freq[i].1 += freq_keys.len() as u64;
        }
    }

    let seeds = cfg.seeds.len().max(1) as f64;
    let samplers = cfg
        .samplers
        .iter()
        .enumerate()
        .map(|(i, k)| SamplerEval {
            name: k.short_name().to_owned(),
            esr: if total_mem == 0 {
                0.0
            } else {
                per_sampler_logged[i] as f64 / total_mem as f64
            },
            detection_rate: per_sampler_det[i] / seeds,
            detection_rate_min: per_sampler_det_min[i].min(1.0),
            detection_rate_max: per_sampler_det_max[i].max(0.0),
            rare_detection_rate: ratio(per_sampler_rare[i]),
            frequent_detection_rate: ratio(per_sampler_freq[i]),
            logged_mem: per_sampler_logged[i],
        })
        .collect();
    Ok(ProgramEval {
        truth: GroundTruth {
            static_races_median: median(truth_counts.clone()),
            rare_median: median(rare_counts),
            frequent_median: median(freq_counts),
            per_seed: truth_counts,
        },
        samplers,
        total_mem,
        non_stack,
    })
}

fn ratio((found, total): (u64, u64)) -> f64 {
    if total == 0 {
        1.0
    } else {
        found as f64 / total as f64
    }
}

fn detect_log(log: &literace_log::EventLog, non_stack: u64, cfg: &EvalConfig) -> RaceReport {
    crate::pipeline::detect_event_log(
        log,
        non_stack,
        &DetectConfig::with_threads(cfg.detect_threads),
        cfg.streaming_detect,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use literace_sim::{ProgramBuilder, Rvalue};

    /// A small program with one cold race (TL should catch, UCP should not)
    /// and one hot race.
    fn mixed_program() -> Program {
        let mut b = ProgramBuilder::new();
        let cold_g = b.global_word("cold");
        let hot_g = b.global_word("hot");
        let shared = b.function("shared_util", 0, move |f| {
            f.compute(1);
            f.write(cold_g);
        });
        // One thread makes shared_util hot; a late thread calls it once.
        let hot_caller = b.function("hot_caller", 0, move |f| {
            f.loop_(5_000, |f| {
                f.call(shared);
            });
        });
        let cold_caller = b.function("cold_caller", 0, move |f| {
            f.loop_(60, |f| {
                f.write_stack(0);
            });
            f.call(shared);
        });
        // The racy hot access lives in a function *called* per iteration,
        // as in real programs — inline loop bodies would be fully logged
        // whenever their (single) enclosing function execution is sampled.
        let hot_step = b.function("hot_step", 0, move |f| {
            f.write(hot_g);
            f.compute(2);
        });
        let hot_racer = b.function("hot_racer", 0, move |f| {
            f.loop_(2_000, |f| {
                f.call(hot_step);
            });
        });
        b.entry_fn("main", move |f| {
            let mut hs = vec![];
            hs.push(f.spawn(hot_caller, Rvalue::Const(0)));
            hs.push(f.spawn(hot_racer, Rvalue::Const(0)));
            hs.push(f.spawn(hot_racer, Rvalue::Const(0)));
            hs.push(f.spawn(cold_caller, Rvalue::Const(0)));
            for h in hs {
                f.join(h);
            }
        });
        b.build().unwrap()
    }

    #[test]
    fn ground_truth_finds_both_races() {
        let eval = evaluate_program(&mixed_program(), &EvalConfig::default()).unwrap();
        assert_eq!(eval.truth.static_races_median, 2);
    }

    #[test]
    fn full_sampler_detects_everything() {
        let cfg = EvalConfig {
            samplers: vec![SamplerKind::Always],
            ..EvalConfig::default()
        };
        let eval = evaluate_program(&mixed_program(), &cfg).unwrap();
        assert!((eval.samplers[0].detection_rate - 1.0).abs() < 1e-9);
        assert!((eval.samplers[0].esr - 1.0).abs() < 1e-9);
    }

    #[test]
    fn tl_ad_beats_global_adaptive_and_ucp_on_the_cold_race() {
        let cfg = EvalConfig {
            samplers: vec![
                SamplerKind::TlAdaptive,
                SamplerKind::GlobalAdaptive,
                SamplerKind::UnCold,
            ],
            seeds: vec![1, 2, 3, 4, 5],
            ..EvalConfig::default()
        };
        let eval = evaluate_program(&mixed_program(), &cfg).unwrap();
        let tl = &eval.samplers[0];
        let gad = &eval.samplers[1];
        let ucp = &eval.samplers[2];
        assert!(
            tl.detection_rate > gad.detection_rate,
            "TL-Ad {} vs G-Ad {}",
            tl.detection_rate,
            gad.detection_rate
        );
        assert!(
            tl.detection_rate > ucp.detection_rate,
            "TL-Ad {} vs UCP {}",
            tl.detection_rate,
            ucp.detection_rate
        );
        // And it does so while logging far less than UCP.
        assert!(tl.esr < 0.2);
        assert!(ucp.esr > 0.9);
    }

    #[test]
    fn prefiltered_logs_no_more_than_plain_tl_ad() {
        // mixed_program's cold_caller burns 60 stack writes before its racy
        // call; the prefilter skips them, so the Prefiltered sampler's ESR
        // is at most TL-Ad's while the racy sites stay detectable.
        let cfg = EvalConfig {
            samplers: vec![SamplerKind::TlAdaptive, SamplerKind::Prefiltered],
            seeds: vec![1, 2, 3],
            ..EvalConfig::default()
        };
        let eval = evaluate_program(&mixed_program(), &cfg).unwrap();
        let tl = &eval.samplers[0];
        let pf = &eval.samplers[1];
        assert!(
            pf.logged_mem < tl.logged_mem,
            "Prefiltered {} vs TL-Ad {}",
            pf.logged_mem,
            tl.logged_mem
        );
        assert!(
            pf.detection_rate >= tl.detection_rate,
            "Prefiltered {} vs TL-Ad {}",
            pf.detection_rate,
            tl.detection_rate
        );
    }

    #[test]
    fn never_sampler_detects_nothing() {
        let cfg = EvalConfig {
            samplers: vec![SamplerKind::Never],
            seeds: vec![1],
            ..EvalConfig::default()
        };
        let eval = evaluate_program(&mixed_program(), &cfg).unwrap();
        assert_eq!(eval.samplers[0].detection_rate, 0.0);
        assert_eq!(eval.samplers[0].esr, 0.0);
    }
}
