//! Plain-text table rendering for the benchmark harness.

use std::fmt;

/// A simple aligned text table.
///
/// # Examples
///
/// ```
/// use literace::tables::Table;
/// let mut t = Table::new("Demo", &["name", "value"]);
/// t.row(vec!["esr".into(), "1.8%".into()]);
/// let s = t.to_string();
/// assert!(s.contains("Demo"));
/// assert!(s.contains("1.8%"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: &str, headers: &[&str]) -> Table {
        Table {
            title: title.to_owned(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; short rows are padded with empty cells.
    pub fn row(&mut self, mut cells: Vec<String>) -> &mut Table {
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:<width$}", width = widths[c])?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a fraction as a percentage with one decimal, e.g. `1.8%`.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a slowdown factor, e.g. `2.4x`.
pub fn slowdown(x: f64) -> String {
    format!("{x:.2}x")
}

/// Formats a rate in MB/s with one decimal.
pub fn mb_s(x: f64) -> String {
    format!("{x:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("T", &["a", "long_header"]);
        t.row(vec!["xxxxxx".into(), "1".into()]);
        t.row(vec!["y".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].contains("T"));
        assert!(lines[1].starts_with("a     "));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn formatters() {
        assert_eq!(pct(0.018), "1.8%");
        assert_eq!(slowdown(2.4), "2.40x");
        assert_eq!(mb_s(159.62), "159.6");
    }
}
