//! The end-to-end LiteRace pipeline: instrument → execute → log → detect.

use literace_detector::{detect_sharded, detect_stream, DetectConfig, HbConfig, RaceReport};
use literace_instrument::{InstrumentConfig, InstrumentOutput, Instrumenter, RecordSink};
use literace_log::EventLog;
use literace_samplers::SamplerKind;
use literace_sim::{
    lower, ChunkedRandomScheduler, Machine, MachineConfig, Program, RunSummary, SimError,
};

/// Configuration for one pipeline run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Scheduler seed — fixes the interleaving.
    pub seed: u64,
    /// Scheduler chunk size (steps a thread runs before a context switch
    /// may occur); models coarse timeslicing on a few cores.
    pub sched_quantum: u32,
    /// Machine limits and baseline cost model.
    pub machine: MachineConfig,
    /// Instrumentation configuration.
    pub instrument: InstrumentConfig,
    /// Offline detector configuration.
    pub detector: HbConfig,
    /// Offline detection worker threads (1 = sequential; N ≥ 2 shards
    /// accesses across N workers with byte-identical output).
    pub detect_threads: usize,
    /// Use the streaming detection path
    /// ([`detect_stream`](literace_detector::detect_stream)): the log is
    /// fed to the sharded workers block-by-block, overlapping routing and
    /// replay. Output is byte-identical either way.
    pub streaming_detect: bool,
}

impl Default for RunConfig {
    fn default() -> RunConfig {
        RunConfig {
            seed: 0,
            sched_quantum: 64,
            machine: MachineConfig::default(),
            instrument: InstrumentConfig::default(),
            detector: HbConfig::default(),
            detect_threads: 1,
            streaming_detect: false,
        }
    }
}

impl RunConfig {
    /// A config with everything default but the scheduler seed.
    pub fn seeded(seed: u64) -> RunConfig {
        RunConfig {
            seed,
            ..RunConfig::default()
        }
    }

    /// The offline-detection config implied by this run config.
    pub fn detect_config(&self) -> DetectConfig {
        DetectConfig {
            threads: self.detect_threads,
            hb: self.detector,
        }
    }
}

/// Everything one pipeline run produces.
#[derive(Debug)]
pub struct RunOutcome {
    /// Baseline execution statistics (instrumentation never perturbs the
    /// interleaving in this substrate, so these are the uninstrumented
    /// numbers).
    pub summary: RunSummary,
    /// Log, overhead breakdown and instrumentation counters.
    pub instrumented: InstrumentOutput,
    /// Offline happens-before detection over the produced log.
    pub report: RaceReport,
}

impl RunOutcome {
    /// Effective sampling rate of this run (Table 3).
    pub fn esr(&self) -> f64 {
        self.instrumented.stats.esr()
    }

    /// Modeled slowdown over the uninstrumented baseline (Table 5).
    pub fn slowdown(&self) -> f64 {
        self.instrumented.overhead.slowdown(self.summary.baseline_cost)
    }
}

/// Runs the full LiteRace pipeline on `program` with the given sampler.
///
/// # Errors
///
/// Propagates simulator errors (deadlock, limits, runtime faults).
pub fn run_literace(
    program: &Program,
    sampler: SamplerKind,
    cfg: &RunConfig,
) -> Result<RunOutcome, SimError> {
    let compiled = lower(program);
    let icfg = instrument_config_for(&compiled, sampler, &cfg.instrument);
    let mut inst = Instrumenter::new(sampler.build(cfg.seed), icfg);
    let mut sched = ChunkedRandomScheduler::seeded(cfg.seed, cfg.sched_quantum);
    let summary = {
        let _span = literace_telemetry::metrics().phase_execute.span();
        literace_telemetry::trace_begin("phase.execute");
        let run = Machine::new(&compiled, cfg.machine).run(&mut sched, &mut inst);
        literace_telemetry::trace_end("phase.execute");
        run?
    };
    let instrumented = inst.finish();
    let report = detect_event_log(
        &instrumented.log,
        summary.non_stack_accesses,
        &cfg.detect_config(),
        cfg.streaming_detect,
    );
    Ok(RunOutcome {
        summary,
        instrumented,
        report,
    })
}

/// Resolves the effective instrument config for one run: samplers that
/// operate over the static prefilter's residual site set get a skip table
/// built from the compiled program unless the caller supplied one already.
/// The table is only sound when synchronization logging is on (the ordering
/// proofs lean on fork/join and lock edges being in the log), so a config
/// with `sync_logging` disabled never gets one auto-installed.
fn instrument_config_for(
    compiled: &literace_sim::CompiledProgram,
    sampler: SamplerKind,
    base: &InstrumentConfig,
) -> InstrumentConfig {
    let mut cfg = base.clone();
    if sampler.needs_prefilter() && cfg.prefilter.is_none() && cfg.sync_logging {
        cfg.prefilter = Some(literace_sim::PrefilterTable::build(compiled));
    }
    cfg
}

/// Detects over an in-memory log via either the materialized sharded path
/// or the streaming path (byte-identical results).
pub(crate) fn detect_event_log(
    log: &EventLog,
    non_stack_accesses: u64,
    cfg: &DetectConfig,
    streaming: bool,
) -> RaceReport {
    let _span = literace_telemetry::metrics().phase_detect.span();
    literace_telemetry::trace_begin("phase.detect");
    let report = if streaming {
        let blocks = log.records().chunks(4096).map(|c| Ok(c.to_vec()));
        detect_stream(blocks, non_stack_accesses, cfg)
            .expect("in-memory blocks cannot fail to decode")
    } else {
        detect_sharded(log, non_stack_accesses, cfg)
    };
    literace_telemetry::trace_end("phase.detect");
    report
}

/// Runs instrumentation and execution, emitting records into `sink` as
/// they are produced — with a [`V2Sink`](literace_instrument::V2Sink)
/// over a file, the event log streams to disk in compact v2 blocks and is
/// never materialized in memory. No detection is performed; callers
/// typically re-open the written log and stream-detect it (see the
/// `literace run --streaming` command).
///
/// # Errors
///
/// Propagates simulator errors. Sink I/O errors surface from the sink's
/// own `finish`, on the returned output's `log`.
pub fn run_literace_with_sink<L: RecordSink>(
    program: &Program,
    sampler: SamplerKind,
    cfg: &RunConfig,
    sink: L,
) -> Result<(RunSummary, InstrumentOutput<L>), SimError> {
    let compiled = lower(program);
    let icfg = instrument_config_for(&compiled, sampler, &cfg.instrument);
    let mut inst = Instrumenter::with_sink(sampler.build(cfg.seed), icfg, sink);
    let mut sched = ChunkedRandomScheduler::seeded(cfg.seed, cfg.sched_quantum);
    let summary = {
        let _span = literace_telemetry::metrics().phase_execute.span();
        literace_telemetry::trace_begin("phase.execute");
        let run = Machine::new(&compiled, cfg.machine).run(&mut sched, &mut inst);
        literace_telemetry::trace_end("phase.execute");
        run?
    };
    Ok((summary, inst.finish()))
}

/// Runs the program uninstrumented, returning baseline statistics only.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn run_baseline(program: &Program, cfg: &RunConfig) -> Result<RunSummary, SimError> {
    let compiled = lower(program);
    let mut sched = ChunkedRandomScheduler::seeded(cfg.seed, cfg.sched_quantum);
    Machine::new(&compiled, cfg.machine).run(&mut sched, &mut literace_sim::NullObserver)
}

#[cfg(test)]
mod tests {
    use super::*;
    use literace_sim::ProgramBuilder;
    use literace_sim::Rvalue;

    fn racy_program() -> Program {
        let mut b = ProgramBuilder::new();
        let g = b.global_word("g");
        let w = b.function("w", 0, move |f| {
            f.write(g);
        });
        b.entry_fn("main", move |f| {
            let t1 = f.spawn(w, Rvalue::Const(0));
            let t2 = f.spawn(w, Rvalue::Const(0));
            f.join(t1);
            f.join(t2);
        });
        b.build().unwrap()
    }

    #[test]
    fn full_sampler_finds_the_race() {
        let out = run_literace(&racy_program(), SamplerKind::Always, &RunConfig::seeded(1))
            .unwrap();
        assert_eq!(out.report.static_count(), 1);
        assert!((out.esr() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn never_sampler_finds_nothing_but_costs_less() {
        let full = run_literace(&racy_program(), SamplerKind::Always, &RunConfig::seeded(1))
            .unwrap();
        let none = run_literace(&racy_program(), SamplerKind::Never, &RunConfig::seeded(1))
            .unwrap();
        assert_eq!(none.report.static_count(), 0);
        assert!(none.instrumented.overhead.total() < full.instrumented.overhead.total());
    }

    #[test]
    fn tl_ad_finds_cold_race_too() {
        let out = run_literace(
            &racy_program(),
            SamplerKind::TlAdaptive,
            &RunConfig::seeded(1),
        )
        .unwrap();
        assert_eq!(out.report.static_count(), 1, "both accesses are cold");
    }

    #[test]
    fn parallel_detection_matches_sequential_pipeline() {
        let seq = run_literace(&racy_program(), SamplerKind::Always, &RunConfig::seeded(3))
            .unwrap();
        let mut cfg = RunConfig::seeded(3);
        cfg.detect_threads = 4;
        let par = run_literace(&racy_program(), SamplerKind::Always, &cfg).unwrap();
        assert_eq!(seq.report, par.report);
    }

    #[test]
    fn streaming_detection_matches_materialized_pipeline() {
        let base = run_literace(&racy_program(), SamplerKind::Always, &RunConfig::seeded(5))
            .unwrap();
        for threads in [1, 2, 4] {
            let mut cfg = RunConfig::seeded(5);
            cfg.detect_threads = threads;
            cfg.streaming_detect = true;
            let streamed =
                run_literace(&racy_program(), SamplerKind::Always, &cfg).unwrap();
            assert_eq!(streamed.report, base.report, "threads={threads}");
        }
    }

    #[test]
    fn sink_run_writes_a_log_equal_to_the_materialized_one() {
        let cfg = RunConfig::seeded(2);
        let materialized =
            run_literace(&racy_program(), SamplerKind::Always, &cfg).unwrap();
        let (summary, out) = run_literace_with_sink(
            &racy_program(),
            SamplerKind::Always,
            &cfg,
            literace_instrument::V2Sink::new(Vec::new()),
        )
        .unwrap();
        assert_eq!(summary, materialized.summary);
        let bytes = out.log.finish().unwrap();
        let log = literace_log::read_log_auto(&bytes[..]).unwrap();
        assert_eq!(log, materialized.instrumented.log);
    }

    #[test]
    fn prefiltered_sampler_gets_an_auto_built_table() {
        let out = run_literace(
            &racy_program(),
            SamplerKind::Prefiltered,
            &RunConfig::seeded(1),
        )
        .unwrap();
        // The racy write is to an unprotected global: residual, so the cold
        // race is still found; the table was installed (counters moved).
        assert_eq!(out.report.static_count(), 1);
        assert!(out.instrumented.stats.prefilter_residual > 0);
    }

    #[test]
    fn prefilter_is_not_auto_installed_without_sync_logging() {
        let mut cfg = RunConfig::seeded(1);
        cfg.instrument.sync_logging = false;
        let out = run_literace(&racy_program(), SamplerKind::Prefiltered, &cfg).unwrap();
        // Unsound to prefilter without sync edges in the log: both counters
        // stay untouched because no table was installed.
        assert_eq!(out.instrumented.stats.prefilter_skipped, 0);
        assert_eq!(out.instrumented.stats.prefilter_residual, 0);
    }

    #[test]
    fn baseline_matches_instrumented_summary() {
        let cfg = RunConfig::seeded(7);
        let base = run_baseline(&racy_program(), &cfg).unwrap();
        let inst = run_literace(&racy_program(), SamplerKind::TlAdaptive, &cfg).unwrap();
        assert_eq!(base, inst.summary, "observation must not perturb execution");
    }
}
