//! Human-readable rendering of race reports against their program.
//!
//! A [`RaceReport`](literace_detector::RaceReport) speaks in program
//! counters; a triager wants function names and rarity. [`render_report`]
//! joins the two, producing the text the CLI's `run` command and the
//! examples print.

use literace_detector::RaceReport;
use literace_sim::Program;

use crate::tables::Table;

/// Renders a race report as an aligned table, resolving program counters to
/// function names and classifying rarity with the report's own denominator.
///
/// # Examples
///
/// ```
/// use literace::pipeline::{run_literace, RunConfig};
/// use literace::render::render_report;
/// use literace::prelude::*;
///
/// let w = build(WorkloadId::LfList, Scale::Smoke);
/// let out = run_literace(&w.program, SamplerKind::Always, &RunConfig::seeded(1))?;
/// let text = render_report(&out.report, &w.program);
/// assert!(text.contains("hr_lflist_len"));
/// # Ok::<(), SimError>(())
/// ```
pub fn render_report(report: &RaceReport, program: &Program) -> String {
    if report.static_races.is_empty() {
        return "no data races detected\n".to_owned();
    }
    let mut t = Table::new(
        &format!(
            "{} static data races ({} dynamic occurrences)",
            report.static_count(),
            report.dynamic_races
        ),
        &["site A", "site B", "dynamic", "per million", "rarity", "example addr"],
    );
    let (rare, _) = report.split_by_rarity();
    let rare_keys: std::collections::HashSet<_> = rare.iter().map(|s| s.pcs).collect();
    for r in &report.static_races {
        let name = |pc: literace_sim::Pc| {
            format!(
                "{}+{}",
                program.function(pc.func()).name,
                pc.offset()
            )
        };
        let per_million = if report.non_stack_accesses == 0 {
            0.0
        } else {
            r.count as f64 * 1e6 / report.non_stack_accesses as f64
        };
        t.row(vec![
            name(r.pcs.0),
            name(r.pcs.1),
            r.count.to_string(),
            format!("{per_million:.2}"),
            if rare_keys.contains(&r.pcs) {
                "rare"
            } else {
                "frequent"
            }
            .to_owned(),
            r.example_addr.to_string(),
        ]);
    }
    t.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{run_literace, RunConfig};
    use crate::prelude::*;

    #[test]
    fn renders_sites_and_rarity() {
        let w = build(WorkloadId::Dryad, Scale::Smoke);
        let out = run_literace(&w.program, SamplerKind::Always, &RunConfig::seeded(1)).unwrap();
        let text = render_report(&out.report, &w.program);
        assert!(text.contains("static data races"), "{text}");
        assert!(text.contains("frequent"), "{text}");
        assert!(text.contains("hr_dryad"), "{text}");
        // Site offsets follow the `func+offset` convention used by the
        // disassembler, so reports and listings cross-reference.
        assert!(text.contains('+'), "{text}");
    }

    #[test]
    fn empty_report_is_a_clear_message() {
        let report = RaceReport::default();
        let w = build(WorkloadId::LfList, Scale::Smoke);
        assert_eq!(render_report(&report, &w.program), "no data races detected\n");
    }
}
