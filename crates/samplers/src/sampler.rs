//! The `Sampler` trait: the dispatch-check decision procedure.

use std::fmt;

use literace_sim::{FuncId, ThreadId};

/// The outcome of a dispatch check at a function entry (§3.3, Figure 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dispatch {
    /// Run the instrumented copy: memory accesses in this function execution
    /// are logged.
    Instrumented,
    /// Run the uninstrumented copy: only synchronization operations are
    /// logged (those are logged from both copies).
    Uninstrumented,
}

impl Dispatch {
    /// Whether this decision samples the execution.
    pub fn is_sampled(self) -> bool {
        matches!(self, Dispatch::Instrumented)
    }
}

impl From<bool> for Dispatch {
    fn from(sampled: bool) -> Dispatch {
        if sampled {
            Dispatch::Instrumented
        } else {
            Dispatch::Uninstrumented
        }
    }
}

impl fmt::Display for Dispatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Dispatch::Instrumented => "instrumented",
            Dispatch::Uninstrumented => "uninstrumented",
        })
    }
}

/// A sampling strategy: decides at every function entry which copy of the
/// function runs.
///
/// Implementations must be deterministic given their construction parameters
/// and the sequence of `dispatch` calls — this is what allows several
/// samplers to be evaluated against a single execution (§5.3).
pub trait Sampler {
    /// Short display name, e.g. `"TL-Ad"` (Table 3's Short Name column).
    fn name(&self) -> &str;

    /// Decides the dispatch for one entry of `func` by `tid`.
    fn dispatch(&mut self, tid: ThreadId, func: FuncId) -> Dispatch;
}

impl<S: Sampler + ?Sized> Sampler for Box<S> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn dispatch(&mut self, tid: ThreadId, func: FuncId) -> Dispatch {
        (**self).dispatch(tid, func)
    }
}

impl<S: Sampler + ?Sized> Sampler for &mut S {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn dispatch(&mut self, tid: ThreadId, func: FuncId) -> Dispatch {
        (**self).dispatch(tid, func)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_from_bool() {
        assert_eq!(Dispatch::from(true), Dispatch::Instrumented);
        assert_eq!(Dispatch::from(false), Dispatch::Uninstrumented);
        assert!(Dispatch::Instrumented.is_sampled());
        assert!(!Dispatch::Uninstrumented.is_sampled());
    }

    #[test]
    fn trait_is_object_safe() {
        struct Always;
        impl Sampler for Always {
            fn name(&self) -> &str {
                "Always"
            }
            fn dispatch(&mut self, _: ThreadId, _: FuncId) -> Dispatch {
                Dispatch::Instrumented
            }
        }
        let mut s: Box<dyn Sampler> = Box::new(Always);
        assert_eq!(
            s.dispatch(ThreadId::MAIN, FuncId::from_index(0)),
            Dispatch::Instrumented
        );
        assert_eq!(s.name(), "Always");
    }
}
