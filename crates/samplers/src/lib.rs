//! # literace-samplers
//!
//! The sampling strategies evaluated in the LiteRace paper (Table 3): the
//! proposed **thread-local adaptive bursty sampler** (TL-Ad), its fixed-rate
//! variant, the SWAT-style global samplers, naive random samplers, and the
//! Un-Cold-Region control — plus `Always`/`Never` endpoints for ground truth
//! and baseline runs.
//!
//! A [`Sampler`] answers one question, at every function entry: run the
//! instrumented or the uninstrumented copy? (Figure 3 of the paper.) All
//! samplers are deterministic given their construction parameters and call
//! sequence, so any set of them can be evaluated against one execution.
//!
//! ## Example
//!
//! ```
//! use literace_samplers::{Sampler, SamplerKind};
//! use literace_sim::{FuncId, ThreadId};
//!
//! let mut tl_ad = SamplerKind::TlAdaptive.build(0);
//! // Cold code is always sampled.
//! assert!(tl_ad
//!     .dispatch(ThreadId::MAIN, FuncId::from_index(0))
//!     .is_sampled());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod burst;
mod global;
mod kind;
mod o1pair;
mod random;
mod sampler;
mod thread_local;
mod uncold;

pub use burst::{BackoffSchedule, BurstState, BURST_LEN};
pub use global::GlobalSampler;
pub use kind::SamplerKind;
pub use o1pair::O1PairSampler;
pub use random::RandomSampler;
pub use sampler::{Dispatch, Sampler};
pub use thread_local::ThreadLocalSampler;
pub use uncold::{AlwaysSampler, NeverSampler, UnColdSampler};
