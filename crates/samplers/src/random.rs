//! The random per-call samplers (Rnd10 and Rnd25 of Table 3).
//!
//! Each dynamic function call is sampled independently with probability `p`;
//! there is no burstiness and no per-region state. The paper uses these as
//! the naive baseline: they log a lot yet miss most rare races, because the
//! probability that *both* racing accesses fall in sampled executions decays
//! quadratically (§1).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use literace_sim::{FuncId, ThreadId};

use crate::sampler::{Dispatch, Sampler};

/// Samples each dynamic call independently with a fixed probability.
#[derive(Debug, Clone)]
pub struct RandomSampler {
    name: String,
    rate: f64,
    rng: StdRng,
}

impl RandomSampler {
    /// A random sampler with probability `rate`, deterministic from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1]`.
    pub fn new(rate: f64, seed: u64) -> RandomSampler {
        assert!((0.0..=1.0).contains(&rate), "rate {rate} outside [0, 1]");
        RandomSampler {
            name: format!("Rnd{}", (rate * 100.0).round() as u32),
            rate,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The paper's Rnd10 (10% of dynamic calls).
    pub fn rnd10(seed: u64) -> RandomSampler {
        RandomSampler::new(0.10, seed)
    }

    /// The paper's Rnd25 (25% of dynamic calls).
    pub fn rnd25(seed: u64) -> RandomSampler {
        RandomSampler::new(0.25, seed)
    }

    /// The sampling probability.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl Sampler for RandomSampler {
    fn name(&self) -> &str {
        &self.name
    }

    fn dispatch(&mut self, _tid: ThreadId, _func: FuncId) -> Dispatch {
        Dispatch::from(self.rng.gen_bool(self.rate))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f() -> FuncId {
        FuncId::from_index(0)
    }
    fn t() -> ThreadId {
        ThreadId::MAIN
    }

    #[test]
    fn names_match_table_3() {
        assert_eq!(RandomSampler::rnd10(0).name(), "Rnd10");
        assert_eq!(RandomSampler::rnd25(0).name(), "Rnd25");
    }

    #[test]
    fn rate_concentrates() {
        let mut s = RandomSampler::rnd25(42);
        let n = 200_000;
        let sampled = (0..n).filter(|_| s.dispatch(t(), f()).is_sampled()).count();
        let esr = sampled as f64 / n as f64;
        assert!((esr - 0.25).abs() < 0.01, "esr {esr}");
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut s = RandomSampler::rnd10(seed);
            (0..1_000)
                .map(|_| s.dispatch(t(), f()).is_sampled())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn extreme_rates_are_constant() {
        let mut never = RandomSampler::new(0.0, 0);
        let mut always = RandomSampler::new(1.0, 0);
        for _ in 0..100 {
            assert!(!never.dispatch(t(), f()).is_sampled());
            assert!(always.dispatch(t(), f()).is_sampled());
        }
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn invalid_rate_panics() {
        let _ = RandomSampler::new(1.5, 0);
    }
}
