//! The O(1)-samples budget sampler (`O1Pair`).
//!
//! "Dynamic Race Detection With O(1) Samples" observes that a race detector
//! does not need a *rate* — it needs a constant number of samples per pair
//! of conflicting sites to catch a reproducible race with high probability.
//! This sampler adapts that idea to LiteRace's function-granularity
//! dispatch: each `(thread, function)` region gets a fixed budget of fully
//! sampled executions (the burst that covers every access-site pair the
//! region can produce), after which sampling stops entirely except for
//! exponentially spaced *refresh* windows that re-establish coverage when a
//! function's behavior drifts over a long run.
//!
//! Unlike the adaptive back-off of TL-Ad, the total number of samples per
//! region is **O(1) + O(log calls)** — constant budget plus logarithmically
//! many refreshes — instead of a constant *fraction*. The coverage
//! accounting ([`O1PairSampler::pairs_covered`]) makes the guarantee
//! inspectable: a covered region consumed its full constant budget.

use std::collections::HashMap;

use literace_sim::{FuncId, ThreadId};

use crate::burst::BURST_LEN;
use crate::sampler::{Dispatch, Sampler};

/// Constant samples per `(thread, function)` region, plus logarithmically
/// many refresh windows. Deterministic; ignores the run seed.
#[derive(Debug, Clone)]
pub struct O1PairSampler {
    /// Fully sampled executions granted to each region before back-off.
    budget: u64,
    /// Per-thread maps from function index to region call count.
    counts: Vec<HashMap<u32, u64>>,
    /// Per-function global call counts driving the refresh windows.
    global: HashMap<u32, u64>,
}

impl O1PairSampler {
    /// The default configuration: budget of [`BURST_LEN`] samples per
    /// region, matching the burst length of the paper's samplers so ESR
    /// comparisons in §5.3 are apples-to-apples.
    pub fn paper() -> O1PairSampler {
        O1PairSampler::with_budget(u64::from(BURST_LEN))
    }

    /// A sampler granting `budget` fully sampled executions per region.
    pub fn with_budget(budget: u64) -> O1PairSampler {
        O1PairSampler {
            budget,
            counts: Vec::new(),
            global: HashMap::new(),
        }
    }

    /// Number of `(thread, function)` regions seen so far.
    pub fn pairs_tracked(&self) -> usize {
        self.counts.iter().map(|m| m.len()).sum()
    }

    /// Number of regions that have consumed their full constant budget —
    /// the coverage guarantee: every access-site pair such a region can
    /// produce has been observed `budget` times.
    pub fn pairs_covered(&self) -> usize {
        self.counts
            .iter()
            .flat_map(|m| m.values())
            .filter(|&&c| c >= self.budget)
            .count()
    }
}

impl Sampler for O1PairSampler {
    fn name(&self) -> &str {
        "O1Pair"
    }

    fn dispatch(&mut self, tid: ThreadId, func: FuncId) -> Dispatch {
        let ti = tid.index();
        if ti >= self.counts.len() {
            self.counts.resize_with(ti + 1, HashMap::new);
        }
        let fi = func.index() as u32;
        let pair = self.counts[ti].entry(fi).or_insert(0);
        *pair += 1;
        let global = self.global.entry(fi).or_insert(0);
        *global += 1;
        // Constant budget per region, then refresh only when the function's
        // global call count crosses a power of two — log-many samples over
        // any execution length.
        Dispatch::from(*pair <= self.budget || global.is_power_of_two())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(i: usize) -> FuncId {
        FuncId::from_index(i)
    }
    fn t(i: usize) -> ThreadId {
        ThreadId::from_index(i)
    }

    #[test]
    fn every_region_gets_its_full_budget() {
        let mut s = O1PairSampler::paper();
        for tid in 0..3 {
            for i in 0..BURST_LEN {
                assert!(s.dispatch(t(tid), f(5)).is_sampled(), "thread {tid} call {i}");
            }
        }
        assert_eq!(s.pairs_covered(), 3);
    }

    #[test]
    fn total_samples_are_logarithmic_after_the_budget() {
        let mut s = O1PairSampler::paper();
        let n: u64 = 1 << 17;
        let sampled = (0..n).filter(|_| s.dispatch(t(0), f(0)).is_sampled()).count() as u64;
        // Budget (10) + power-of-two refreshes up to 2^17 (18), minus the
        // overlap where both conditions hold on early calls.
        assert!(sampled <= u64::from(BURST_LEN) + 18, "sampled {sampled}");
        assert!(sampled >= u64::from(BURST_LEN), "sampled {sampled}");
    }

    #[test]
    fn refresh_windows_hit_power_of_two_global_counts() {
        let mut s = O1PairSampler::with_budget(2);
        let mut sampled_at = Vec::new();
        for i in 1..=40u64 {
            if s.dispatch(t(0), f(0)).is_sampled() {
                sampled_at.push(i);
            }
        }
        assert_eq!(sampled_at, vec![1, 2, 4, 8, 16, 32]);
    }

    #[test]
    fn a_new_thread_gets_a_fresh_budget_even_when_the_function_is_hot() {
        let mut s = O1PairSampler::paper();
        for _ in 0..50_000 {
            s.dispatch(t(0), f(0));
        }
        for i in 0..BURST_LEN {
            assert!(s.dispatch(t(1), f(0)).is_sampled(), "call {i}");
        }
    }

    #[test]
    fn coverage_accounting_tracks_partial_regions() {
        let mut s = O1PairSampler::paper();
        for _ in 0..BURST_LEN {
            s.dispatch(t(0), f(0));
        }
        s.dispatch(t(0), f(1)); // partially covered
        assert_eq!(s.pairs_tracked(), 2);
        assert_eq!(s.pairs_covered(), 1);
    }

    #[test]
    fn dispatch_sequence_is_deterministic() {
        let run = || {
            let mut s = O1PairSampler::paper();
            (0..5_000)
                .map(|i| s.dispatch(t(i % 3), f(i % 7)).is_sampled())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
