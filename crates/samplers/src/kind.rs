//! Registry of the sampling strategies evaluated in the paper (Table 3).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::burst::BackoffSchedule;
use crate::global::GlobalSampler;
use crate::o1pair::O1PairSampler;
use crate::random::RandomSampler;
use crate::sampler::Sampler;
use crate::thread_local::ThreadLocalSampler;
use crate::uncold::{AlwaysSampler, NeverSampler, UnColdSampler};

/// The sampling strategies of Table 3, plus the `Always`/`Never` endpoints
/// used for ground truth and baseline overhead configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SamplerKind {
    /// Thread-local adaptive (TL-Ad): LiteRace's proposed sampler.
    TlAdaptive,
    /// Thread-local fixed 5% (TL-Fx).
    TlFixed,
    /// Global adaptive (G-Ad), SWAT-style.
    GlobalAdaptive,
    /// Global fixed 10% (G-Fx).
    GlobalFixed,
    /// Random 10% of dynamic calls (Rnd10).
    Rnd10,
    /// Random 25% of dynamic calls (Rnd25).
    Rnd25,
    /// Un-Cold Region (UCP): everything except the first 10 calls per
    /// function per thread.
    UnCold,
    /// Constant samples per `(thread, function)` region plus log-many
    /// refreshes, after "Dynamic Race Detection With O(1) Samples".
    O1Pair,
    /// TL-Ad over the static prefilter's residual possibly-racy site set:
    /// provably ordered sites never reach the sampler, so the cold-region
    /// budget concentrates where races can live.
    Prefiltered,
    /// Sample everything (full logging; ground truth).
    Always,
    /// Sample nothing (baseline; sync ops still logged).
    Never,
}

impl SamplerKind {
    /// The seven samplers compared in §5 of the paper, in Table 3 order.
    pub fn paper_set() -> [SamplerKind; 7] {
        [
            SamplerKind::TlAdaptive,
            SamplerKind::TlFixed,
            SamplerKind::GlobalAdaptive,
            SamplerKind::GlobalFixed,
            SamplerKind::Rnd10,
            SamplerKind::Rnd25,
            SamplerKind::UnCold,
        ]
    }

    /// The §5.3 study set: the paper's seven samplers plus the two
    /// budget-aware extensions evaluated alongside them.
    pub fn study_set() -> [SamplerKind; 9] {
        [
            SamplerKind::TlAdaptive,
            SamplerKind::TlFixed,
            SamplerKind::GlobalAdaptive,
            SamplerKind::GlobalFixed,
            SamplerKind::Rnd10,
            SamplerKind::Rnd25,
            SamplerKind::UnCold,
            SamplerKind::O1Pair,
            SamplerKind::Prefiltered,
        ]
    }

    /// Whether this sampler only makes sense over a static prefilter's
    /// residual site set (the run pipeline builds the skip table
    /// automatically for such kinds).
    pub fn needs_prefilter(self) -> bool {
        matches!(self, SamplerKind::Prefiltered)
    }

    /// Short name as used in the paper's figures.
    pub fn short_name(self) -> &'static str {
        match self {
            SamplerKind::TlAdaptive => "TL-Ad",
            SamplerKind::TlFixed => "TL-Fx",
            SamplerKind::GlobalAdaptive => "G-Ad",
            SamplerKind::GlobalFixed => "G-Fx",
            SamplerKind::Rnd10 => "Rnd10",
            SamplerKind::Rnd25 => "Rnd25",
            SamplerKind::UnCold => "UCP",
            SamplerKind::O1Pair => "O1Pair",
            SamplerKind::Prefiltered => "Prefiltered",
            SamplerKind::Always => "Full",
            SamplerKind::Never => "None",
        }
    }

    /// One-line description matching Table 3's Description column.
    pub fn description(self) -> &'static str {
        match self {
            SamplerKind::TlAdaptive => {
                "adaptive back-off per function / per thread (100%, 10%, 1%, 0.1%); bursty"
            }
            SamplerKind::TlFixed => "fixed 5% per function / per thread; bursty",
            SamplerKind::GlobalAdaptive => {
                "adaptive back-off per function globally (100%, 50%, 25%, ..., 0.1%); bursty"
            }
            SamplerKind::GlobalFixed => "fixed 10% per function globally; bursty",
            SamplerKind::Rnd10 => "random 10% of dynamic calls chosen for sampling",
            SamplerKind::Rnd25 => "random 25% of dynamic calls chosen for sampling",
            SamplerKind::UnCold => {
                "first 10 calls per function / per thread are NOT sampled, all remaining calls are sampled"
            }
            SamplerKind::O1Pair => {
                "constant budget of 10 samples per function / per thread, then only log-many refresh samples"
            }
            SamplerKind::Prefiltered => {
                "TL-Ad restricted to the static prefilter's residual possibly-racy sites"
            }
            SamplerKind::Always => "all calls sampled (full logging)",
            SamplerKind::Never => "no calls sampled",
        }
    }

    /// Instantiates the sampler. `seed` feeds the random samplers; the
    /// deterministic samplers ignore it.
    pub fn build(self, seed: u64) -> Box<dyn Sampler> {
        match self {
            SamplerKind::TlAdaptive => Box::new(ThreadLocalSampler::adaptive()),
            SamplerKind::TlFixed => Box::new(ThreadLocalSampler::fixed_5pct()),
            SamplerKind::GlobalAdaptive => Box::new(GlobalSampler::adaptive()),
            SamplerKind::GlobalFixed => Box::new(GlobalSampler::fixed_10pct()),
            SamplerKind::Rnd10 => Box::new(RandomSampler::rnd10(seed)),
            SamplerKind::Rnd25 => Box::new(RandomSampler::rnd25(seed)),
            SamplerKind::UnCold => Box::new(UnColdSampler::paper()),
            SamplerKind::O1Pair => Box::new(O1PairSampler::paper()),
            SamplerKind::Prefiltered => Box::new(ThreadLocalSampler::with_schedule(
                "Prefiltered",
                BackoffSchedule::literace(),
            )),
            SamplerKind::Always => Box::new(AlwaysSampler),
            SamplerKind::Never => Box::new(NeverSampler),
        }
    }

    /// Parses a short name (case-insensitive) back into a kind.
    pub fn from_short_name(name: &str) -> Option<SamplerKind> {
        SamplerKind::all()
            .into_iter()
            .find(|k| k.short_name().eq_ignore_ascii_case(name))
    }

    /// Every kind, in Table 3 order followed by the extensions and the
    /// `Full`/`None` endpoints.
    pub fn all() -> [SamplerKind; 11] {
        [
            SamplerKind::TlAdaptive,
            SamplerKind::TlFixed,
            SamplerKind::GlobalAdaptive,
            SamplerKind::GlobalFixed,
            SamplerKind::Rnd10,
            SamplerKind::Rnd25,
            SamplerKind::UnCold,
            SamplerKind::O1Pair,
            SamplerKind::Prefiltered,
            SamplerKind::Always,
            SamplerKind::Never,
        ]
    }
}

impl fmt::Display for SamplerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use literace_sim::{FuncId, ThreadId};

    #[test]
    fn paper_set_matches_table_3_order() {
        let names: Vec<&str> = SamplerKind::paper_set()
            .iter()
            .map(|k| k.short_name())
            .collect();
        assert_eq!(
            names,
            vec!["TL-Ad", "TL-Fx", "G-Ad", "G-Fx", "Rnd10", "Rnd25", "UCP"]
        );
    }

    #[test]
    fn study_set_is_paper_set_plus_extensions() {
        let names: Vec<&str> = SamplerKind::study_set()
            .iter()
            .map(|k| k.short_name())
            .collect();
        assert_eq!(
            names,
            vec!["TL-Ad", "TL-Fx", "G-Ad", "G-Fx", "Rnd10", "Rnd25", "UCP", "O1Pair", "Prefiltered"]
        );
    }

    #[test]
    fn built_sampler_names_match_kind() {
        for kind in SamplerKind::all() {
            let s = kind.build(0);
            assert_eq!(s.name(), kind.short_name());
        }
    }

    #[test]
    fn short_names_round_trip_for_every_kind() {
        for kind in SamplerKind::all() {
            assert_eq!(SamplerKind::from_short_name(kind.short_name()), Some(kind));
            // Case-insensitively too.
            let lower = kind.short_name().to_ascii_lowercase();
            assert_eq!(SamplerKind::from_short_name(&lower), Some(kind));
        }
        assert_eq!(SamplerKind::from_short_name("tl-ad"), Some(SamplerKind::TlAdaptive));
        assert_eq!(SamplerKind::from_short_name("o1pair"), Some(SamplerKind::O1Pair));
        assert_eq!(
            SamplerKind::from_short_name("PREFILTERED"),
            Some(SamplerKind::Prefiltered)
        );
        assert_eq!(SamplerKind::from_short_name("nope"), None);
    }

    #[test]
    fn only_prefiltered_needs_a_prefilter() {
        for kind in SamplerKind::all() {
            assert_eq!(
                kind.needs_prefilter(),
                kind == SamplerKind::Prefiltered,
                "{kind}"
            );
        }
    }

    #[test]
    fn all_samplers_dispatch_without_panicking() {
        for kind in SamplerKind::all() {
            let mut s = kind.build(1);
            for i in 0..100 {
                let _ = s.dispatch(ThreadId::from_index(i % 3), FuncId::from_index(i % 7));
            }
        }
    }
}
