//! The bursty back-off state machine shared by the adaptive and fixed-rate
//! samplers.
//!
//! The paper's samplers are *bursty*: "when they decide to sample a function,
//! they do so for ten consecutive executions of that function" (§5.2). An
//! *adaptive* sampler additionally reduces the sampling rate after every
//! completed burst, following a back-off schedule, until a lower bound
//! (§3.4). A *fixed* sampler uses a constant rate.
//!
//! For a burst length `B` and a current rate `r`, the gap between bursts is
//! `B/r − B` skipped executions, so the long-run fraction of sampled
//! executions converges to `r`.

use serde::{Deserialize, Serialize};

/// The paper's burst length: ten consecutive executions.
pub const BURST_LEN: u32 = 10;

/// A back-off schedule: the sampling rate to use after each completed burst.
///
/// `rate(n)` is the sampling rate in effect after `n` completed bursts; it
/// is clamped to the final entry, which is the sampler's lower bound.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BackoffSchedule {
    rates: Vec<f64>,
}

impl BackoffSchedule {
    /// Creates a schedule from an explicit rate list.
    ///
    /// # Panics
    ///
    /// Panics if `rates` is empty or contains a rate outside `(0, 1]`.
    pub fn new(rates: Vec<f64>) -> BackoffSchedule {
        assert!(!rates.is_empty(), "schedule must have at least one rate");
        for &r in &rates {
            assert!(r > 0.0 && r <= 1.0, "rate {r} outside (0, 1]");
        }
        BackoffSchedule { rates }
    }

    /// The paper's thread-local adaptive schedule: 100%, 10%, 1%, 0.1%
    /// (Table 3, TL-Ad).
    pub fn literace() -> BackoffSchedule {
        BackoffSchedule::new(vec![1.0, 0.1, 0.01, 0.001])
    }

    /// The paper's global adaptive schedule: 100%, 50%, 25%, … halving down
    /// to the 0.1% lower bound (Table 3, G-Ad).
    pub fn halving() -> BackoffSchedule {
        let mut rates = vec![1.0];
        let mut r: f64 = 0.5;
        while r > 0.001 {
            rates.push(r);
            r /= 2.0;
        }
        rates.push(0.001);
        BackoffSchedule::new(rates)
    }

    /// A constant-rate schedule (the fixed samplers).
    pub fn fixed(rate: f64) -> BackoffSchedule {
        BackoffSchedule::new(vec![rate])
    }

    /// The rate in effect after `bursts_done` completed bursts.
    pub fn rate(&self, bursts_done: u32) -> f64 {
        let idx = (bursts_done as usize).min(self.rates.len() - 1);
        self.rates[idx]
    }

    /// The lower bound (final) rate.
    pub fn floor(&self) -> f64 {
        *self.rates.last().expect("schedule is non-empty")
    }
}

/// Per-region bursty sampling state.
///
/// One `BurstState` exists per sampled region — per `(thread, function)` for
/// thread-local samplers, per function for global ones. Regions start inside
/// a burst: the first [`BURST_LEN`] executions are always sampled, which is
/// what makes cold regions fully covered (§3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BurstState {
    sample_left: u32,
    skip_left: u64,
    bursts_done: u32,
    /// Fractional part of the ideal inter-burst gap not yet skipped, in
    /// Q32 fixed point (`2^32` = one whole execution). Rounding `B/r − B`
    /// per burst biases the realized rate (0.3 → 10/33 ≈ 0.303); carrying
    /// the remainder here makes the long-run rate exact.
    #[serde(default)]
    gap_frac: u64,
}

impl BurstState {
    /// A fresh region: mid-burst, nothing skipped yet.
    pub fn new() -> BurstState {
        BurstState {
            sample_left: BURST_LEN,
            skip_left: 0,
            bursts_done: 0,
            gap_frac: 0,
        }
    }

    /// Number of completed bursts (drives the adaptive back-off).
    pub fn bursts_done(&self) -> u32 {
        self.bursts_done
    }

    /// Advances the state by one execution of the region and reports whether
    /// that execution is sampled.
    pub fn step(&mut self, schedule: &BackoffSchedule) -> bool {
        if self.sample_left > 0 {
            self.sample_left -= 1;
            if self.sample_left == 0 {
                self.bursts_done += 1;
                if literace_telemetry::enabled() {
                    // Slot n = regions finishing their n-th burst; the last
                    // slot pools every transition at or past the rate floor.
                    literace_telemetry::metrics()
                        .sampler_burst_transitions
                        .add(self.bursts_done as usize - 1, 1);
                }
                let rate = schedule.rate(self.bursts_done);
                self.skip_left = gap_for(BURST_LEN, rate, &mut self.gap_frac);
                if self.skip_left == 0 {
                    self.sample_left = BURST_LEN;
                }
            }
            true
        } else {
            debug_assert!(self.skip_left > 0, "neither sampling nor skipping");
            self.skip_left -= 1;
            if self.skip_left == 0 {
                self.sample_left = BURST_LEN;
            }
            false
        }
    }
}

impl Default for BurstState {
    fn default() -> BurstState {
        BurstState::new()
    }
}

/// One whole execution in the Q32 fixed-point gap remainder.
const GAP_FRAC_ONE: u64 = 1 << 32;

/// Executions to skip between bursts so the long-run sampled fraction is
/// `rate`.
///
/// The ideal gap `B/rate − B` is rarely an integer; truncating or
/// rounding it once per burst drifts the realized rate (e.g. 0.3 becomes
/// 10/33 ≈ 0.303). Instead the integer part is skipped now and the
/// fractional part accumulates in `frac_acc` (Q32), spilling an extra
/// skipped execution whenever a whole one has built up — so the average
/// gap over many bursts is exact.
fn gap_for(burst_len: u32, rate: f64, frac_acc: &mut u64) -> u64 {
    let b = burst_len as f64;
    let gap = ((b / rate) - b).max(0.0);
    let int = gap.floor();
    *frac_acc += ((gap - int) * GAP_FRAC_ONE as f64).round() as u64;
    let carry = *frac_acc >> 32;
    *frac_acc &= GAP_FRAC_ONE - 1;
    (int as u64).saturating_add(carry)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_burst_is_fully_sampled() {
        let sched = BackoffSchedule::literace();
        let mut st = BurstState::new();
        for i in 0..BURST_LEN {
            assert!(st.step(&sched), "execution {i} of the first burst");
        }
    }

    #[test]
    fn literace_schedule_backs_off_to_floor() {
        let sched = BackoffSchedule::literace();
        assert_eq!(sched.rate(0), 1.0);
        assert_eq!(sched.rate(1), 0.1);
        assert_eq!(sched.rate(2), 0.01);
        assert_eq!(sched.rate(3), 0.001);
        assert_eq!(sched.rate(99), 0.001);
        assert_eq!(sched.floor(), 0.001);
    }

    #[test]
    fn halving_schedule_descends_monotonically() {
        let sched = BackoffSchedule::halving();
        let mut prev = f64::INFINITY;
        for n in 0..20 {
            let r = sched.rate(n);
            assert!(r <= prev, "rate must not increase");
            prev = r;
        }
        assert_eq!(sched.floor(), 0.001);
    }

    #[test]
    fn gap_matches_rate() {
        // Rates whose ideal gap is an integer: exact, no carry builds up.
        for (rate, gap) in [(1.0, 0), (0.1, 90), (0.01, 990), (0.001, 9990), (0.05, 190)] {
            let mut acc = 0u64;
            assert_eq!(gap_for(10, rate, &mut acc), gap, "rate {rate}");
            assert_eq!(acc, 0, "rate {rate} left a remainder");
        }
    }

    #[test]
    fn fractional_gap_carries_across_bursts() {
        // rate 0.3: ideal gap 10/0.3 − 10 = 23.333… — single-shot rounding
        // gave a constant 23 (realized rate 10/33 ≈ 0.303). With carry,
        // every third-ish gap is 24 and the average is exact.
        let mut acc = 0u64;
        let gaps: Vec<u64> = (0..300).map(|_| gap_for(10, 0.3, &mut acc)).collect();
        assert!(gaps.iter().all(|&g| g == 23 || g == 24), "{gaps:?}");
        assert!(gaps.contains(&24), "carry never spilled");
        let total: u64 = gaps.iter().sum();
        // 300 ideal gaps sum to 7000; carry keeps the realized sum within
        // one execution of that.
        assert!((total as i64 - 7000).unsigned_abs() <= 1, "total {total}");
    }

    #[test]
    fn fixed_rate_long_run_fraction_converges() {
        let sched = BackoffSchedule::fixed(0.05);
        let mut st = BurstState::new();
        let n = 1_000_000u64;
        let sampled = (0..n).filter(|_| st.step(&sched)).count() as f64;
        let esr = sampled / n as f64;
        assert!((esr - 0.05).abs() < 0.005, "esr {esr} not near 0.05");
    }

    #[test]
    fn adaptive_long_run_rate_approaches_floor() {
        let sched = BackoffSchedule::literace();
        let mut st = BurstState::new();
        // Warm up far past the back-off phase.
        for _ in 0..200_000 {
            st.step(&sched);
        }
        let n = 1_000_000u64;
        let sampled = (0..n).filter(|_| st.step(&sched)).count() as f64;
        let esr = sampled / n as f64;
        assert!((esr - 0.001).abs() < 0.0005, "tail esr {esr} not near floor");
    }

    #[test]
    fn bursts_are_contiguous() {
        let sched = BackoffSchedule::fixed(0.1);
        let mut st = BurstState::new();
        let decisions: Vec<bool> = (0..2_000).map(|_| st.step(&sched)).collect();
        // Every run of `true` must have length exactly BURST_LEN.
        let mut run = 0;
        for &d in &decisions {
            if d {
                run += 1;
            } else {
                if run > 0 {
                    assert_eq!(run, BURST_LEN, "short burst");
                }
                run = 0;
            }
        }
    }

    #[test]
    fn fixed_rate_that_does_not_divide_burst_len_converges() {
        // The motivating case: 0.3 drifted to ≈0.303 before the carry.
        let sched = BackoffSchedule::fixed(0.3);
        let mut st = BurstState::new();
        let n = 1_000_000u64;
        let sampled = (0..n).filter(|_| st.step(&sched)).count() as f64;
        let esr = sampled / n as f64;
        assert!((esr - 0.3).abs() < 0.001, "esr {esr} not near 0.3");
    }

    #[test]
    #[should_panic(expected = "outside (0, 1]")]
    fn zero_rate_is_rejected() {
        let _ = BackoffSchedule::new(vec![0.0]);
    }

    #[test]
    #[should_panic(expected = "at least one rate")]
    fn empty_schedule_is_rejected() {
        let _ = BackoffSchedule::new(vec![]);
    }

    mod convergence {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]

            /// For arbitrary rates the long-run sampled fraction converges
            /// to the schedule rate — the carry keeps non-divisor rates
            /// (the old drift bug) exact on average.
            #[test]
            fn long_run_fraction_matches_arbitrary_rates(rate in 0.001f64..=1.0) {
                let sched = BackoffSchedule::fixed(rate);
                let mut st = BurstState::new();
                // Cover at least 50 full sample+skip periods.
                let period = (BURST_LEN as f64 / rate).ceil() as u64;
                let n = (50 * period).max(500_000);
                let sampled = (0..n).filter(|_| st.step(&sched)).count() as f64;
                let esr = sampled / n as f64;
                let tolerance = rate * 0.05 + 1e-4;
                prop_assert!(
                    (esr - rate).abs() < tolerance,
                    "esr {esr} vs rate {rate} (n={n})"
                );
            }
        }
    }
}
