//! Thread-local bursty samplers (TL-Ad and TL-Fx of Table 3).
//!
//! LiteRace's key extension over the SWAT-style global adaptive sampler is
//! maintaining sampling state *per thread* (§3.4): a function that is hot
//! globally is still sampled at 100% the first times a *new* thread executes
//! it, because, per the cold-region hypothesis, races cluster where a thread
//! executes code it rarely runs.

use std::collections::HashMap;

use literace_sim::{FuncId, ThreadId};

use crate::burst::{BackoffSchedule, BurstState};
use crate::sampler::{Dispatch, Sampler};

/// A bursty sampler with independent state per `(thread, function)` pair.
///
/// With [`BackoffSchedule::literace`] this is **TL-Ad**, the paper's
/// proposed sampler; with [`BackoffSchedule::fixed`] it is **TL-Fx**.
///
/// # Examples
///
/// ```
/// use literace_samplers::{BackoffSchedule, Dispatch, Sampler, ThreadLocalSampler};
/// use literace_sim::{FuncId, ThreadId};
///
/// let mut s = ThreadLocalSampler::adaptive();
/// let f = FuncId::from_index(0);
/// // The first executions of a function in a thread are always sampled.
/// assert_eq!(s.dispatch(ThreadId::MAIN, f), Dispatch::Instrumented);
/// // A different thread has its own cold state for the same function.
/// assert_eq!(s.dispatch(ThreadId::from_index(1), f), Dispatch::Instrumented);
/// ```
#[derive(Debug, Clone)]
pub struct ThreadLocalSampler {
    name: String,
    schedule: BackoffSchedule,
    /// Per-thread maps from function index to burst state. Indexed by thread
    /// id, mirroring the paper's per-thread buffer in thread-local storage.
    state: Vec<HashMap<u32, BurstState>>,
}

impl ThreadLocalSampler {
    /// The paper's TL-Ad: adaptive back-off 100% → 10% → 1% → 0.1%.
    pub fn adaptive() -> ThreadLocalSampler {
        ThreadLocalSampler::with_schedule("TL-Ad", BackoffSchedule::literace())
    }

    /// The paper's TL-Fx: fixed 5% per function per thread.
    pub fn fixed_5pct() -> ThreadLocalSampler {
        ThreadLocalSampler::with_schedule("TL-Fx", BackoffSchedule::fixed(0.05))
    }

    /// A thread-local bursty sampler with an arbitrary schedule.
    pub fn with_schedule(name: &str, schedule: BackoffSchedule) -> ThreadLocalSampler {
        ThreadLocalSampler {
            name: name.to_owned(),
            schedule,
            state: Vec::new(),
        }
    }

    /// Number of `(thread, function)` regions with live sampling state —
    /// the memory footprint the paper pays in thread-local storage.
    pub fn tracked_regions(&self) -> usize {
        self.state.iter().map(|m| m.len()).sum()
    }
}

impl Sampler for ThreadLocalSampler {
    fn name(&self) -> &str {
        &self.name
    }

    fn dispatch(&mut self, tid: ThreadId, func: FuncId) -> Dispatch {
        let ti = tid.index();
        if ti >= self.state.len() {
            self.state.resize_with(ti + 1, HashMap::new);
        }
        let st = self.state[ti]
            .entry(func.index() as u32)
            .or_default();
        st.step(&self.schedule).into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::burst::BURST_LEN;

    fn f(i: usize) -> FuncId {
        FuncId::from_index(i)
    }
    fn t(i: usize) -> ThreadId {
        ThreadId::from_index(i)
    }

    #[test]
    fn cold_function_is_fully_sampled_per_thread() {
        let mut s = ThreadLocalSampler::adaptive();
        for tid in 0..4 {
            for _ in 0..BURST_LEN {
                assert!(s.dispatch(t(tid), f(7)).is_sampled());
            }
        }
    }

    #[test]
    fn hot_function_backs_off() {
        let mut s = ThreadLocalSampler::adaptive();
        let sampled = (0..100_000)
            .filter(|_| s.dispatch(t(0), f(0)).is_sampled())
            .count();
        // 10 (100%) + 10 of the next 100 (10%) + ~10 per 1000 (1%) + tail at
        // 0.1%: far below 1% of 100k overall.
        assert!(sampled < 1_000, "sampled {sampled} of 100k");
        assert!(sampled >= 30, "sampled only {sampled}; bursts missing");
    }

    #[test]
    fn thread_going_hot_does_not_heat_other_threads() {
        let mut s = ThreadLocalSampler::adaptive();
        // Thread 0 hammers the function until it is thoroughly cold-blooded.
        for _ in 0..50_000 {
            s.dispatch(t(0), f(3));
        }
        // Thread 1 sees it for the first time: must be sampled.
        for _ in 0..BURST_LEN {
            assert!(s.dispatch(t(1), f(3)).is_sampled());
        }
    }

    #[test]
    fn functions_have_independent_state_within_a_thread() {
        let mut s = ThreadLocalSampler::adaptive();
        for _ in 0..50_000 {
            s.dispatch(t(0), f(0));
        }
        for _ in 0..BURST_LEN {
            assert!(s.dispatch(t(0), f(1)).is_sampled());
        }
    }

    #[test]
    fn fixed_sampler_rate_converges() {
        let mut s = ThreadLocalSampler::fixed_5pct();
        let n = 400_000;
        let sampled = (0..n).filter(|_| s.dispatch(t(0), f(0)).is_sampled()).count();
        let esr = sampled as f64 / n as f64;
        assert!((esr - 0.05).abs() < 0.01, "esr {esr}");
    }

    #[test]
    fn tracked_regions_counts_pairs() {
        let mut s = ThreadLocalSampler::adaptive();
        s.dispatch(t(0), f(0));
        s.dispatch(t(0), f(1));
        s.dispatch(t(1), f(0));
        assert_eq!(s.tracked_regions(), 3);
    }
}
