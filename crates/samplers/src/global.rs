//! Global bursty samplers (G-Ad and G-Fx of Table 3).
//!
//! These maintain one burst state per *function*, shared by all threads —
//! the SWAT-style design the paper compares against. Their weakness, which
//! the evaluation demonstrates: a function made hot by one thread is no
//! longer sampled when a different thread executes it for the first time,
//! missing exactly the cold-path races LiteRace targets.

use std::collections::HashMap;

use literace_sim::{FuncId, ThreadId};

use crate::burst::{BackoffSchedule, BurstState};
use crate::sampler::{Dispatch, Sampler};

/// A bursty sampler with one state per function, shared across threads.
///
/// # Examples
///
/// ```
/// use literace_samplers::{GlobalSampler, Sampler};
/// use literace_sim::{FuncId, ThreadId};
///
/// let mut s = GlobalSampler::adaptive();
/// // One thread heats the function up…
/// for _ in 0..100_000 {
///     s.dispatch(ThreadId::from_index(0), FuncId::from_index(0));
/// }
/// // …and a brand-new thread is *not* treated as cold (the flaw TL-Ad
/// // fixes):
/// let fresh: usize = (0..10)
///     .filter(|_| s
///         .dispatch(ThreadId::from_index(1), FuncId::from_index(0))
///         .is_sampled())
///     .count();
/// assert!(fresh < 10);
/// ```
#[derive(Debug, Clone)]
pub struct GlobalSampler {
    name: String,
    schedule: BackoffSchedule,
    state: HashMap<u32, BurstState>,
}

impl GlobalSampler {
    /// The paper's G-Ad: global adaptive back-off 100%, 50%, 25%, … 0.1%
    /// (a higher-rate variant of SWAT's schedule; Table 3).
    pub fn adaptive() -> GlobalSampler {
        GlobalSampler::with_schedule("G-Ad", BackoffSchedule::halving())
    }

    /// The paper's G-Fx: fixed 10% per function, globally.
    pub fn fixed_10pct() -> GlobalSampler {
        GlobalSampler::with_schedule("G-Fx", BackoffSchedule::fixed(0.10))
    }

    /// A global bursty sampler with an arbitrary schedule.
    pub fn with_schedule(name: &str, schedule: BackoffSchedule) -> GlobalSampler {
        GlobalSampler {
            name: name.to_owned(),
            schedule,
            state: HashMap::new(),
        }
    }
}

impl Sampler for GlobalSampler {
    fn name(&self) -> &str {
        &self.name
    }

    fn dispatch(&mut self, _tid: ThreadId, func: FuncId) -> Dispatch {
        let st = self
            .state
            .entry(func.index() as u32)
            .or_default();
        st.step(&self.schedule).into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::burst::BURST_LEN;

    fn f(i: usize) -> FuncId {
        FuncId::from_index(i)
    }
    fn t(i: usize) -> ThreadId {
        ThreadId::from_index(i)
    }

    #[test]
    fn heat_is_shared_across_threads() {
        let mut s = GlobalSampler::adaptive();
        // Thread 0 makes the function hot.
        for _ in 0..200_000 {
            s.dispatch(t(0), f(0));
        }
        // Thread 1's first executions are now mostly unsampled — the failure
        // mode LiteRace's thread-local extension fixes.
        let sampled = (0..BURST_LEN)
            .filter(|_| s.dispatch(t(1), f(0)).is_sampled())
            .count();
        assert!(
            sampled < BURST_LEN as usize,
            "global sampler unexpectedly treated thread 1 as cold"
        );
    }

    #[test]
    fn first_executions_are_sampled() {
        let mut s = GlobalSampler::adaptive();
        for i in 0..BURST_LEN {
            assert!(s.dispatch(t(i as usize % 3), f(0)).is_sampled());
        }
    }

    #[test]
    fn fixed_global_rate_converges() {
        let mut s = GlobalSampler::fixed_10pct();
        let n = 400_000;
        let sampled = (0..n)
            .filter(|i| s.dispatch(t(i % 4), f(0)).is_sampled())
            .count();
        let esr = sampled as f64 / n as f64;
        assert!((esr - 0.10).abs() < 0.01, "esr {esr}");
    }

    #[test]
    fn adaptive_backs_off_faster_than_fixed() {
        let mut ad = GlobalSampler::adaptive();
        let mut fx = GlobalSampler::fixed_10pct();
        let n = 200_000;
        let ad_sampled = (0..n).filter(|_| ad.dispatch(t(0), f(0)).is_sampled()).count();
        let fx_sampled = (0..n).filter(|_| fx.dispatch(t(0), f(0)).is_sampled()).count();
        assert!(ad_sampled < fx_sampled / 2);
    }
}
