//! The Un-Cold-Region sampler (UCP of Table 3) and trivial samplers.
//!
//! UCP is the paper's control experiment for the cold-region hypothesis: it
//! logs everything *except* the first ten calls of each function per thread
//! — the exact complement of what the bursty samplers prioritize. Despite
//! logging ~99% of memory operations, it finds only ~32% of races, which is
//! the evidence that races concentrate in cold regions (§5.3).

use std::collections::HashMap;

use literace_sim::{FuncId, ThreadId};

use crate::sampler::{Dispatch, Sampler};

/// Logs all but the first `threshold` calls of each function per thread.
#[derive(Debug, Clone)]
pub struct UnColdSampler {
    threshold: u64,
    calls: Vec<HashMap<u32, u64>>,
}

impl UnColdSampler {
    /// The paper's UCP: skip the first 10 calls per function per thread.
    pub fn paper() -> UnColdSampler {
        UnColdSampler::with_threshold(10)
    }

    /// Skip the first `threshold` calls per function per thread.
    pub fn with_threshold(threshold: u64) -> UnColdSampler {
        UnColdSampler {
            threshold,
            calls: Vec::new(),
        }
    }
}

impl Sampler for UnColdSampler {
    fn name(&self) -> &str {
        "UCP"
    }

    fn dispatch(&mut self, tid: ThreadId, func: FuncId) -> Dispatch {
        let ti = tid.index();
        if ti >= self.calls.len() {
            self.calls.resize_with(ti + 1, HashMap::new);
        }
        let count = self.calls[ti].entry(func.index() as u32).or_insert(0);
        *count += 1;
        Dispatch::from(*count > self.threshold)
    }
}

/// Samples every call — full logging, the ground-truth configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct AlwaysSampler;

impl Sampler for AlwaysSampler {
    fn name(&self) -> &str {
        "Full"
    }

    fn dispatch(&mut self, _tid: ThreadId, _func: FuncId) -> Dispatch {
        Dispatch::Instrumented
    }
}

/// Samples nothing — the baseline configuration (sync ops are still logged
/// by the instrumentation, as they are in every configuration).
#[derive(Debug, Clone, Copy, Default)]
pub struct NeverSampler;

impl Sampler for NeverSampler {
    fn name(&self) -> &str {
        "None"
    }

    fn dispatch(&mut self, _tid: ThreadId, _func: FuncId) -> Dispatch {
        Dispatch::Uninstrumented
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(i: usize) -> FuncId {
        FuncId::from_index(i)
    }
    fn t(i: usize) -> ThreadId {
        ThreadId::from_index(i)
    }

    #[test]
    fn first_ten_calls_are_skipped_then_all_sampled() {
        let mut s = UnColdSampler::paper();
        for i in 0..10 {
            assert!(!s.dispatch(t(0), f(0)).is_sampled(), "call {i}");
        }
        for i in 10..100 {
            assert!(s.dispatch(t(0), f(0)).is_sampled(), "call {i}");
        }
    }

    #[test]
    fn threshold_is_per_thread() {
        let mut s = UnColdSampler::paper();
        for _ in 0..50 {
            s.dispatch(t(0), f(0));
        }
        // A new thread starts cold (unsampled) again.
        assert!(!s.dispatch(t(1), f(0)).is_sampled());
    }

    #[test]
    fn threshold_is_per_function() {
        let mut s = UnColdSampler::paper();
        for _ in 0..50 {
            s.dispatch(t(0), f(0));
        }
        assert!(!s.dispatch(t(0), f(1)).is_sampled());
    }

    #[test]
    fn trivial_samplers() {
        let mut a = AlwaysSampler;
        let mut n = NeverSampler;
        assert!(a.dispatch(t(0), f(0)).is_sampled());
        assert!(!n.dispatch(t(0), f(0)).is_sampled());
        assert_eq!(a.name(), "Full");
        assert_eq!(n.name(), "None");
    }
}
