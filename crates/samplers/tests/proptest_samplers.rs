//! Property tests over the samplers: burst structure, rate convergence, and
//! thread-locality invariants hold for arbitrary schedules and call
//! sequences.

use literace_samplers::{
    BackoffSchedule, BurstState, Sampler, SamplerKind, ThreadLocalSampler, BURST_LEN,
};
use literace_sim::{FuncId, ThreadId};
use proptest::prelude::*;

fn arb_schedule() -> impl Strategy<Value = BackoffSchedule> {
    prop::collection::vec(0.001f64..=1.0, 1..6).prop_map(BackoffSchedule::new)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every maximal closed run of sampled executions is a whole number of
    /// bursts (rates near 1.0 produce zero gaps, which legally concatenates
    /// bursts back to back).
    #[test]
    fn sampled_runs_are_whole_bursts(schedule in arb_schedule(), n in 500usize..3000) {
        let mut st = BurstState::new();
        let decisions: Vec<bool> = (0..n).map(|_| st.step(&schedule)).collect();
        let mut run = 0u32;
        for (i, &d) in decisions.iter().enumerate() {
            if d {
                run += 1;
            } else {
                prop_assert_eq!(
                    run % BURST_LEN, 0,
                    "run of {} sampled executions closed at {}", run, i
                );
                run = 0;
            }
        }
    }

    /// The first BURST_LEN executions of any region are always sampled,
    /// whatever the schedule — the cold-region guarantee.
    #[test]
    fn first_executions_always_sampled(schedule in arb_schedule()) {
        let mut st = BurstState::new();
        for i in 0..BURST_LEN {
            prop_assert!(st.step(&schedule), "execution {i} unsampled");
        }
    }

    /// A fixed-rate sampler's long-run fraction converges to its exact
    /// rate: the Q32 gap-remainder carry spreads the fractional part of
    /// `B/r − B` across bursts, so the realized rate is no longer
    /// quantized to `B/(B+round(gap))`.
    #[test]
    fn fixed_rate_converges(rate in 0.01f64..=1.0) {
        let schedule = BackoffSchedule::fixed(rate);
        let mut st = BurstState::new();
        let n = 200_000u64;
        let sampled = (0..n).filter(|_| st.step(&schedule)).count() as f64;
        let esr = sampled / n as f64;
        prop_assert!(
            (esr - rate).abs() < rate * 0.05 + 1e-3,
            "esr {esr} for rate {rate}"
        );
    }

    /// Thread-local samplers never let one thread's history affect whether
    /// another thread's first executions are sampled.
    #[test]
    fn thread_locality(warm_calls in 0usize..20_000, victim_tid in 1usize..8) {
        let mut s = ThreadLocalSampler::adaptive();
        let f = FuncId::from_index(3);
        for _ in 0..warm_calls {
            s.dispatch(ThreadId::from_index(0), f);
        }
        for i in 0..BURST_LEN {
            prop_assert!(
                s.dispatch(ThreadId::from_index(victim_tid), f).is_sampled(),
                "victim call {i} unsampled after {warm_calls} warm calls"
            );
        }
    }

    /// Dispatch decisions are a pure function of the call sequence: two
    /// identically constructed samplers given the same sequence agree.
    #[test]
    fn determinism_across_instances(
        kind_idx in 0usize..7,
        calls in prop::collection::vec((0usize..6, 0usize..24), 1..400),
        seed: u64,
    ) {
        let kind = SamplerKind::paper_set()[kind_idx];
        let mut a = kind.build(seed);
        let mut b = kind.build(seed);
        for &(t, f) in &calls {
            let da = a.dispatch(ThreadId::from_index(t), FuncId::from_index(f));
            let db = b.dispatch(ThreadId::from_index(t), FuncId::from_index(f));
            prop_assert_eq!(da, db);
        }
    }

    /// The UCP sampler is the exact complement of cold-burst sampling on a
    /// per-(thread, function) basis: it skips precisely the first 10 calls.
    #[test]
    fn ucp_complements_cold_sampling(calls in 11u64..200) {
        let mut ucp = SamplerKind::UnCold.build(0);
        let t = ThreadId::from_index(0);
        let f = FuncId::from_index(0);
        let decisions: Vec<bool> = (0..calls).map(|_| ucp.dispatch(t, f).is_sampled()).collect();
        prop_assert!(decisions[..10].iter().all(|d| !d));
        prop_assert!(decisions[10..].iter().all(|d| *d));
    }
}
