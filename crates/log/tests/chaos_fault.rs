//! Chaos suite: deterministic fault injection against the salvage decoder
//! and the streaming pipeline.
//!
//! The contract under test, for *any* injected fault schedule:
//!
//! 1. nothing panics — every failure is a typed error or a salvage skip;
//! 2. salvage never invents records: the salvaged stream is a subsequence
//!    of the clean log's records (whole blocks survive or vanish);
//! 3. soundness: unless the report is `sync_tainted`, the salvaged sync
//!    records are a gap-free *prefix* of the clean log's sync records —
//!    the property that makes races from a salvaged log trustworthy;
//! 4. a writer killed mid-stream never leaves bytes that classify as a
//!    sealed log.

use literace_log::{
    encode_v2, peek_sealed_total, read_log_auto, salvage::SalvageReport, DecodeOpts, FaultPlan,
    FaultyReader, FaultySink, LogWriterV2, Record, RecordStream, SamplerMask, SealState,
};
use literace_sim::{Addr, Pc, SyncOpKind, SyncVar, ThreadId};
use proptest::prelude::*;

/// A mixed record stream with sync records sprinkled through it.
fn sample_records(n: usize) -> Vec<Record> {
    (0..n)
        .map(|i| match i % 4 {
            0 => Record::Sync {
                tid: ThreadId::from_index(i % 3),
                pc: Pc::new(literace_sim::FuncId::from_index(1), i),
                kind: SyncOpKind::LockAcquire,
                var: SyncVar((i % 4) as u64),
                timestamp: i as u64,
            },
            _ => Record::Mem {
                tid: ThreadId::from_index(i % 3),
                pc: Pc::new(literace_sim::FuncId::from_index(2), i % 11),
                addr: Addr::global((i % 7) as u64 * 8),
                is_write: i % 2 == 0,
                mask: SamplerMask::bit(0),
            },
        })
        .collect()
}

/// Encodes `records` into a multi-block v2 log with small blocks, so fault
/// offsets land in interesting places (frames, payloads, the footer).
fn small_block_log(records: &[Record]) -> Vec<u8> {
    let mut w = LogWriterV2::with_block_bytes(Vec::new(), 48);
    for r in records {
        w.write_record(r).unwrap();
    }
    w.finish().unwrap()
}

fn is_subsequence(needle: &[Record], hay: &[Record]) -> bool {
    let mut it = hay.iter();
    needle.iter().all(|r| it.any(|h| h == r))
}

fn sync_only(records: &[Record]) -> Vec<Record> {
    records
        .iter()
        .filter(|r| matches!(r, Record::Sync { .. }))
        .copied()
        .collect()
}

/// The salvage soundness contract against the clean record list.
fn check_soundness(original: &[Record], salvaged: &[Record], report: &SalvageReport) {
    assert!(
        is_subsequence(salvaged, original),
        "salvage invented records: {report}"
    );
    if !report.sync_tainted {
        let all_sync = sync_only(original);
        let got_sync = sync_only(salvaged);
        assert!(
            got_sync.len() <= all_sync.len()
                && all_sync[..got_sync.len()] == got_sync[..],
            "untainted salvage lost mid-stream sync records: {report}"
        );
    }
}

fn drain_salvage(source: impl std::io::Read) -> (Vec<Record>, SalvageReport) {
    let (blocks, handle) = literace_log::open_salvage(source);
    let mut out = Vec::new();
    for block in blocks {
        out.extend(block.expect("salvage streams never yield Err"));
    }
    (out, handle.report())
}

/// Like [`drain_salvage`], but through the out-of-order worker pool.
fn drain_salvage_pool(
    source: impl std::io::Read + Send + 'static,
) -> (Vec<Record>, SalvageReport) {
    let (blocks, handle) =
        RecordStream::spawn_salvage_with(source, DecodeOpts::with_threads(4))
            .expect("salvage never fails to open");
    let mut out = Vec::new();
    for block in blocks {
        out.extend(block.expect("salvage streams never yield Err"));
    }
    (out, handle.report())
}

#[test]
fn truncation_at_every_offset_is_panic_free_and_sound() {
    let records = sample_records(120);
    let bytes = small_block_log(&records);
    for cut in 0..=bytes.len() {
        let reader = FaultyReader::new(&bytes[..], FaultPlan::truncated_at(cut as u64), 1);
        let (salvaged, report) = drain_salvage(reader);
        check_soundness(&records, &salvaged, &report);
        assert_eq!(report.records_salvaged as usize, salvaged.len(), "cut {cut}");
        if cut < bytes.len() {
            assert_ne!(
                report.seal,
                SealState::Sealed,
                "cut {cut}/{} classified sealed: {report}",
                bytes.len()
            );
        } else {
            assert_eq!(report.seal, SealState::Sealed, "{report}");
            assert_eq!(salvaged, records, "{report}");
            assert!(report.clean(), "{report}");
        }
    }
}

#[test]
fn killed_writer_is_never_classified_sealed() {
    let records = sample_records(200);
    let full_len = small_block_log(&records).len() as u64;
    for fail_after in [0, 1, 30, 100, full_len / 2, full_len - 1] {
        let mut out = Vec::new();
        {
            let sink = FaultySink::new(&mut out, Some(fail_after), true, fail_after);
            let mut w = LogWriterV2::with_block_bytes(sink, 48);
            let mut failed = false;
            for r in &records {
                if w.write_record(r).is_err() {
                    failed = true;
                    break;
                }
            }
            if !failed {
                assert!(w.finish().is_err(), "sink dying at {fail_after} went unnoticed");
            }
            // Dropping the writer flushes best-effort into the dead sink.
        }
        assert!(out.len() as u64 <= fail_after);
        let (salvaged, report) = drain_salvage(&out[..]);
        assert_ne!(
            report.seal,
            SealState::Sealed,
            "torn write of {fail_after} bytes classified sealed: {report}"
        );
        check_soundness(&records, &salvaged, &report);
    }
}

#[test]
fn finalized_log_round_trips_byte_identically() {
    let records = sample_records(300);
    let bytes = encode_v2(&records);
    let log = read_log_auto(&bytes[..]).unwrap();
    assert_eq!(log.records(), &records[..]);
    // Re-encoding the decoded log reproduces the exact bytes, footer
    // included — the crash-consistency acceptance check.
    assert_eq!(&encode_v2(log.records())[..], &bytes[..]);
    let (salvaged, report) = drain_salvage(&bytes[..]);
    assert_eq!(salvaged, records);
    assert!(report.clean(), "{report}");
    assert_eq!(report.seal, SealState::Sealed);
}

#[test]
fn transient_errors_are_absorbed_by_the_retrying_stream() {
    let records = sample_records(400);
    let bytes = small_block_log(&records);
    let plan = FaultPlan {
        short_reads: true,
        interrupt_one_in: 3,
        transient_one_in: 5,
        transient_budget: 6,
        ..FaultPlan::default()
    };
    let reader = FaultyReader::new(std::io::Cursor::new(bytes.clone()), plan.clone(), 17);
    let stream = RecordStream::spawn(reader, 4).unwrap();
    let mut out = Vec::new();
    for block in stream {
        out.extend(block.expect("bounded retry must absorb budgeted transients"));
    }
    assert_eq!(out, records);
    // The pool's scanner sits behind the same retry wrapper, so budgeted
    // transients are just as invisible to parallel decode.
    let reader = FaultyReader::new(std::io::Cursor::new(bytes), plan, 17);
    let stream =
        RecordStream::spawn_with(reader, DecodeOpts::with_threads(4)).unwrap();
    let mut out = Vec::new();
    for block in stream {
        out.extend(block.expect("the pooled scanner must absorb transients too"));
    }
    assert_eq!(out, records);
}

/// Writes `bytes` to a throwaway file and runs [`peek_sealed_total`] on
/// it (the peek reads from a path, not a reader).
fn peek_of(bytes: &[u8], tag: &str) -> Option<u64> {
    let dir = std::env::temp_dir().join(format!("literace-peek-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{tag}.lrlog"));
    std::fs::write(&path, bytes).unwrap();
    let got = peek_sealed_total(&path);
    let _ = std::fs::remove_file(&path);
    got
}

#[test]
fn peek_sealed_total_reads_a_clean_footer() {
    let records = sample_records(120);
    let bytes = small_block_log(&records);
    assert_eq!(peek_of(&bytes, "clean"), Some(records.len() as u64));
}

#[test]
fn peek_sealed_total_rejects_every_truncation() {
    let records = sample_records(60);
    let bytes = small_block_log(&records);
    for cut in 0..bytes.len() {
        assert_eq!(
            peek_of(&bytes[..cut], "truncated"),
            None,
            "cut {cut}/{} peeked a total from a torn log",
            bytes.len()
        );
    }
}

#[test]
fn peek_sealed_total_rejects_header_footer_and_body_flips() {
    // A flipped footer fed the --progress heartbeat garbage totals before
    // the peek validated checksums; pin the fix across the whole file:
    // magic and version flips, body flips (caught by the stream checksum),
    // and footer flips (caught by the footer's own checksum).
    let records = sample_records(60);
    let bytes = small_block_log(&records);
    for off in 0..bytes.len() {
        for mask in [0x01u8, 0x10, 0x80] {
            let mut bad = bytes.clone();
            bad[off] ^= mask;
            assert_eq!(
                peek_of(&bad, "flip"),
                None,
                "flip at {off} mask {mask:#x} still peeked a total"
            );
        }
    }
}

#[test]
fn peek_sealed_total_rejects_an_unsealed_writer_drop() {
    let records = sample_records(60);
    let mut unsealed = Vec::new();
    {
        let mut w = LogWriterV2::with_block_bytes(&mut unsealed, 48);
        for r in &records {
            w.write_record(r).unwrap();
        }
        // Dropped without finish: blocks flushed, but no footer.
    }
    assert!(!unsealed.is_empty());
    assert_eq!(peek_of(&unsealed, "unsealed"), None);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Any fault schedule — truncation, bit flips anywhere, short reads,
    /// interrupts, transients — produces a panic-free salvage whose tally
    /// matches what was yielded.
    #[test]
    fn arbitrary_faults_never_panic_salvage(
        n in 1usize..160,
        cut_seed: u64,
        flips in prop::collection::vec((any::<u64>(), 1u8..=255), 0..4),
        short_reads: bool,
        // 1 would mean *every* read is interrupted: a device that never
        // makes progress, which (like std's `read_exact`) loops forever.
        interrupt_one_in in prop::sample::select(vec![0u32, 2, 3, 4, 5]),
        seed: u64,
    ) {
        let records = sample_records(n);
        let bytes = small_block_log(&records);
        let plan = FaultPlan {
            truncate_at: Some(cut_seed % (bytes.len() as u64 + 1)),
            bit_flips: flips
                .into_iter()
                .map(|(off, mask)| (off % bytes.len() as u64, mask))
                .collect(),
            short_reads,
            interrupt_one_in,
            transient_one_in: 0,
            transient_budget: 0,
        };
        let reader = FaultyReader::new(&bytes[..], plan, seed);
        let (salvaged, report) = drain_salvage(reader);
        prop_assert_eq!(report.records_salvaged as usize, salvaged.len());
        prop_assert!(report.blocks_decoded >= (!salvaged.is_empty()) as u64);
    }

    /// With the header intact (faults at offset ≥ 4, past the magic), the
    /// full soundness contract holds: salvage is a subsequence of the
    /// clean log, and untainted salvage keeps a gap-free sync prefix.
    #[test]
    fn faults_behind_the_magic_salvage_soundly(
        n in 1usize..160,
        cut_seed: u64,
        flips in prop::collection::vec((any::<u64>(), 1u8..=255), 0..4),
        short_reads: bool,
        seed: u64,
    ) {
        let records = sample_records(n);
        let bytes = small_block_log(&records);
        let len = bytes.len() as u64;
        let plan = FaultPlan {
            truncate_at: Some(4 + cut_seed % (len - 3)),
            bit_flips: flips
                .into_iter()
                .map(|(off, mask)| (4 + off % (len - 4), mask))
                .collect(),
            short_reads,
            ..FaultPlan::default()
        };
        let reader = FaultyReader::new(&bytes[..], plan, seed);
        let (salvaged, report) = drain_salvage(reader);
        check_soundness(&records, &salvaged, &report);
        prop_assert_eq!(report.records_salvaged as usize, salvaged.len());
    }

    /// The worker pool replicates sequential salvage under chaos: for any
    /// deterministic fault schedule (truncation + bit flips + short
    /// reads), parallel decode yields the same records, the same summary
    /// line, and the same soundness guarantees as the sequential decoder.
    #[test]
    fn pooled_salvage_matches_sequential_under_faults(
        n in 1usize..160,
        cut_seed: u64,
        flips in prop::collection::vec((any::<u64>(), 1u8..=255), 0..4),
        short_reads: bool,
        seed: u64,
    ) {
        let records = sample_records(n);
        let bytes = small_block_log(&records);
        let len = bytes.len() as u64;
        let plan = FaultPlan {
            truncate_at: Some(cut_seed % (len + 1)),
            bit_flips: flips
                .into_iter()
                .map(|(off, mask)| (off % len, mask))
                .collect(),
            short_reads,
            ..FaultPlan::default()
        };
        let (seq, seq_report) =
            drain_salvage(FaultyReader::new(&bytes[..], plan.clone(), seed));
        let (pool, pool_report) = drain_salvage_pool(FaultyReader::new(
            std::io::Cursor::new(bytes),
            plan,
            seed,
        ));
        prop_assert_eq!(&pool, &seq, "pooled salvage diverged: {}", pool_report);
        prop_assert_eq!(pool_report.to_string(), seq_report.to_string());
        prop_assert_eq!(pool_report.seal, seq_report.seal);
        check_soundness(&records, &pool, &pool_report);
    }
}
