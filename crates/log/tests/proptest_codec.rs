//! Property tests for the binary log codec: arbitrary records round-trip,
//! and arbitrary corruption never panics (it decodes or errors cleanly).

use literace_log::{decode_all, encode_all, encoded_len, Record, SamplerMask};
use literace_sim::{Addr, Pc, SyncOpKind, SyncVar, ThreadId};
use proptest::prelude::*;

fn arb_kind() -> impl Strategy<Value = SyncOpKind> {
    use SyncOpKind::*;
    prop::sample::select(vec![
        LockAcquire,
        LockRelease,
        Notify,
        WaitReturn,
        Reset,
        SemRelease,
        SemAcquire,
        BarrierArrive,
        BarrierDepart,
        Fork,
        ThreadStart,
        ThreadExit,
        Join,
        AtomicRmw,
        AllocPage,
    ])
}

fn arb_record() -> impl Strategy<Value = Record> {
    let sync = (any::<u32>(), any::<u64>(), arb_kind(), any::<u64>(), any::<u64>()).prop_map(
        |(tid, pc, kind, var, timestamp)| Record::Sync {
            tid: ThreadId::from_index(tid as usize),
            pc: Pc(pc),
            kind,
            var: SyncVar(var),
            timestamp,
        },
    );
    let mem = (any::<u32>(), any::<u64>(), any::<u64>(), any::<bool>(), any::<u32>()).prop_map(
        |(tid, pc, addr, is_write, mask)| Record::Mem {
            tid: ThreadId::from_index(tid as usize),
            pc: Pc(pc),
            addr: Addr(addr),
            is_write,
            mask: SamplerMask(mask),
        },
    );
    let begin = any::<u32>().prop_map(|tid| Record::ThreadBegin {
        tid: ThreadId::from_index(tid as usize),
    });
    let end = any::<u32>().prop_map(|tid| Record::ThreadEnd {
        tid: ThreadId::from_index(tid as usize),
    });
    prop_oneof![sync, mem, begin, end]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Encode ∘ decode is the identity on arbitrary record sequences.
    #[test]
    fn round_trip(records in prop::collection::vec(arb_record(), 0..64)) {
        let bytes = encode_all(&records);
        let decoded = decode_all(bytes).unwrap();
        prop_assert_eq!(records, decoded);
    }

    /// Encoded length matches the per-record constants.
    #[test]
    fn encoded_len_is_exact(record in arb_record()) {
        let bytes = encode_all(std::iter::once(&record));
        prop_assert_eq!(bytes.len(), encoded_len(&record));
    }

    /// Decoding arbitrary bytes never panics: it either produces records or
    /// a clean error.
    #[test]
    fn decoding_garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode_all(bytes::Bytes::from(bytes));
    }

    /// Flipping one byte of a valid stream never panics either, and any
    /// successful decode still yields records of the original count or a
    /// decode error (corruption is detected or benign, never UB).
    #[test]
    fn single_byte_corruption_is_handled(
        records in prop::collection::vec(arb_record(), 1..16),
        pos_seed: usize,
        flip: u8,
    ) {
        let bytes = encode_all(&records);
        let mut corrupted = bytes.to_vec();
        let pos = pos_seed % corrupted.len();
        corrupted[pos] ^= flip | 1; // guarantee a real change
        let _ = decode_all(bytes::Bytes::from(corrupted));
    }

    /// A truncated valid stream reports corruption rather than inventing
    /// records beyond the cut (a prefix of whole records may legitimately
    /// decode).
    #[test]
    fn truncation_is_detected_or_clean_prefix(
        records in prop::collection::vec(arb_record(), 1..16),
        cut_seed: usize,
    ) {
        let bytes = encode_all(&records);
        let cut = cut_seed % bytes.len();
        let truncated = bytes.slice(0..cut);
        if let Ok(decoded) = decode_all(truncated) {
            prop_assert!(decoded.len() <= records.len());
            prop_assert_eq!(&records[..decoded.len()], &decoded[..]);
        }
    }
}
