//! Decode-robustness contract for the v2 format: malformed inputs —
//! truncated blocks, corrupted varints, wrong magic, unknown versions —
//! must produce typed [`LogError`]s, never a panic and never invented
//! records.

use literace_log::{
    encode_v2, read_log_auto, LogError, Record, RecordBlocks, SamplerMask, V2Blocks,
    V2_MAGIC, V2_VERSION,
};
use literace_sim::{Addr, FuncId, Pc, SyncOpKind, SyncVar, ThreadId};

fn sample_records(n: usize) -> Vec<Record> {
    (0..n)
        .map(|i| match i % 5 {
            0 => Record::Sync {
                tid: ThreadId::from_index(i % 3),
                pc: Pc::new(FuncId::from_index(1), i),
                kind: SyncOpKind::LockRelease,
                var: SyncVar(7),
                timestamp: i as u64,
            },
            _ => Record::Mem {
                tid: ThreadId::from_index(i % 3),
                pc: Pc::new(FuncId::from_index(2), i % 17),
                addr: Addr::global((i % 13) as u64 * 8),
                is_write: i % 2 == 0,
                mask: SamplerMask::bit(0),
            },
        })
        .collect()
}

fn collect(blocks: impl Iterator<Item = literace_log::LogResult<Vec<Record>>>)
    -> literace_log::LogResult<Vec<Record>> {
    let mut out = Vec::new();
    for b in blocks {
        out.extend(b?);
    }
    Ok(out)
}

#[test]
fn bad_magic_is_typed() {
    let err = V2Blocks::open(&b"not a log at all"[..]).unwrap_err();
    assert!(
        matches!(&err, LogError::BadMagic { found } if found == b"not "),
        "{err}"
    );
    // Short streams report the bytes that were there.
    let err = V2Blocks::open(&b"LR"[..]).unwrap_err();
    assert!(matches!(err, LogError::BadMagic { .. }), "{err}");
    let err = V2Blocks::open(std::io::empty()).unwrap_err();
    assert!(
        matches!(&err, LogError::BadMagic { found } if found.is_empty()),
        "{err}"
    );
}

#[test]
fn version_mismatch_is_typed_everywhere() {
    let mut bytes = encode_v2(&sample_records(10)).to_vec();
    bytes[4] = 9;
    let err = V2Blocks::open(&bytes[..]).unwrap_err();
    assert!(
        matches!(
            err,
            LogError::UnsupportedVersion {
                found: 9,
                supported: V2_VERSION
            }
        ),
        "{err}"
    );
    // The auto-detecting readers agree.
    let err = RecordBlocks::open(&bytes[..]).unwrap_err();
    assert!(matches!(err, LogError::UnsupportedVersion { found: 9, .. }), "{err}");
    let err = read_log_auto(&bytes[..]).unwrap_err();
    assert!(matches!(err, LogError::UnsupportedVersion { found: 9, .. }), "{err}");
}

#[test]
fn magic_alone_with_no_version_byte_is_corrupt() {
    let err = V2Blocks::open(&V2_MAGIC[..]).unwrap_err();
    assert!(matches!(err, LogError::Corrupt { .. }), "{err}");
    let err = read_log_auto(&V2_MAGIC[..]).unwrap_err();
    assert!(matches!(err, LogError::Corrupt { .. }), "{err}");
}

/// The 24-byte block/footer frame size (see `crates/log/src/v2.rs`).
const FRAME: usize = 24;

/// Recomputes the head checksum of the block frame starting at `frame_at`
/// after a test mutated the header fields it covers.
fn fix_head_sum(bytes: &mut [u8], frame_at: usize) {
    let sum = literace_log::checksum32(&bytes[frame_at..frame_at + 12]);
    bytes[frame_at + 12..frame_at + 16].copy_from_slice(&sum.to_le_bytes());
}

#[test]
fn truncated_block_header_is_corrupt() {
    let bytes = encode_v2(&sample_records(100));
    // Cut inside the first block's 24-byte frame.
    let cut = &bytes[..5 + 3];
    let err = collect(V2Blocks::open(cut).unwrap()).unwrap_err();
    assert!(matches!(err, LogError::Corrupt { .. }), "{err}");
    assert!(err.to_string().contains("header"), "{err}");
}

#[test]
fn truncated_block_payload_is_corrupt() {
    let bytes = encode_v2(&sample_records(100));
    // One block: header(5) + frame(24) + payload + footer(24). Keep the
    // frame and half the payload.
    let payload_len = bytes.len() - 5 - 2 * FRAME;
    let cut = &bytes[..5 + FRAME + payload_len / 2];
    let err = collect(V2Blocks::open(cut).unwrap()).unwrap_err();
    assert!(matches!(err, LogError::Corrupt { .. }), "{err}");
}

#[test]
fn corrupted_varint_is_corrupt_not_panic() {
    let records = sample_records(50);
    let mut bytes = encode_v2(&records).to_vec();
    // Set continuation bits on a run of payload bytes: an unterminated
    // varint that would read past any sane field width. (The payload
    // checksum flags this first; either way it must be typed corrupt.)
    let payload_start = 5 + FRAME;
    for b in bytes.iter_mut().skip(payload_start + 1).take(12) {
        *b = 0xFF;
    }
    let err = collect(V2Blocks::open(&bytes[..]).unwrap()).unwrap_err();
    assert!(matches!(err, LogError::Corrupt { .. }), "{err}");
}

#[test]
fn corrupted_varint_behind_a_valid_checksum_is_corrupt_not_panic() {
    let records = sample_records(50);
    let mut bytes = encode_v2(&records).to_vec();
    // Same corruption, but with the payload checksum recomputed so the
    // decoder itself has to reject the unterminated varint.
    let payload_start = 5 + FRAME;
    let payload_end = bytes.len() - FRAME;
    for b in bytes
        .iter_mut()
        .skip(payload_start + 1)
        .take(12)
    {
        *b = 0xFF;
    }
    let sum = literace_log::checksum(&bytes[payload_start..payload_end]);
    bytes[5 + 16..5 + 24].copy_from_slice(&sum.to_le_bytes());
    let err = collect(V2Blocks::open(&bytes[..]).unwrap()).unwrap_err();
    assert!(matches!(err, LogError::Corrupt { .. }), "{err}");
    assert!(!err.to_string().contains("checksum"), "{err}");
}

#[test]
fn oversized_declared_payload_is_rejected_without_allocating() {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&V2_MAGIC);
    bytes.push(V2_VERSION);
    // An absurd (but non-sentinel) payload length behind a *valid* head
    // checksum, so the length cap itself does the rejecting.
    let mut frame = [0u8; FRAME];
    frame[..4].copy_from_slice(&((1u32 << 30) + 1).to_le_bytes());
    frame[4..8].copy_from_slice(&1u32.to_le_bytes());
    bytes.extend_from_slice(&frame);
    fix_head_sum(&mut bytes, 5);
    let err = collect(V2Blocks::open(&bytes[..]).unwrap()).unwrap_err();
    assert!(matches!(err, LogError::Corrupt { .. }), "{err}");
    assert!(err.to_string().contains("cap"), "{err}");
}

#[test]
fn record_count_mismatches_are_corrupt() {
    let records = sample_records(20);
    let bytes = encode_v2(&records).to_vec();
    // Record count sits at frame bytes 4..8 (file offset 9..13); the head
    // checksum must be recomputed or it flags the tamper first.
    let count = u32::from_le_bytes(bytes[9..13].try_into().unwrap());
    // Inflate the declared record count: decoding runs off the payload.
    let mut more = bytes.clone();
    more[9..13].copy_from_slice(&(count + 1).to_le_bytes());
    fix_head_sum(&mut more, 5);
    let err = collect(V2Blocks::open(&more[..]).unwrap()).unwrap_err();
    assert!(matches!(err, LogError::Corrupt { .. }), "{err}");
    // Deflate it: leftover bytes after the declared records. Revision 3
    // reports them as trailing payload; revision 4 sees the tag region
    // holding one byte per record no longer match the count.
    let mut fewer = bytes;
    fewer[9..13].copy_from_slice(&(count - 1).to_le_bytes());
    fix_head_sum(&mut fewer, 5);
    let err = collect(V2Blocks::open(&fewer[..]).unwrap()).unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("trailing") || msg.contains("tag bytes"),
        "{err}"
    );
}

#[test]
fn tampered_header_fields_fail_the_head_checksum() {
    let records = sample_records(20);
    let mut bytes = encode_v2(&records).to_vec();
    // Mutate the count *without* fixing the checksum: the frame check
    // itself must catch it.
    bytes[9] ^= 1;
    let err = collect(V2Blocks::open(&bytes[..]).unwrap()).unwrap_err();
    assert!(err.to_string().contains("header checksum"), "{err}");
}

#[test]
fn corruption_is_confined_to_one_block() {
    // Two-block log; corrupt the second block's payload. The first block
    // must still stream out intact before the error surfaces.
    let records = sample_records(200);
    let mut w = literace_log::LogWriterV2::with_block_bytes(Vec::new(), 64);
    for r in &records {
        w.write_record(r).unwrap();
    }
    let mut bytes = w.finish().unwrap();
    // Flip the last byte of the final block's payload (the 24-byte footer
    // sits after it).
    let last = bytes.len() - 1 - FRAME;
    bytes[last] = 0xFF;
    let mut decoded = Vec::new();
    let mut error = None;
    for block in V2Blocks::open(&bytes[..]).unwrap() {
        match block {
            Ok(b) => decoded.extend(b),
            Err(e) => {
                error = Some(e);
                break;
            }
        }
    }
    assert!(error.is_some(), "the corrupted tail block must error");
    assert!(!decoded.is_empty(), "intact leading blocks must decode");
    assert_eq!(&records[..decoded.len()], &decoded[..]);
}
