//! Decode-robustness contract for the v2 format: malformed inputs —
//! truncated blocks, corrupted varints, wrong magic, unknown versions —
//! must produce typed [`LogError`]s, never a panic and never invented
//! records.

use literace_log::{
    encode_v2, read_log_auto, LogError, Record, RecordBlocks, SamplerMask, V2Blocks,
    V2_MAGIC, V2_VERSION,
};
use literace_sim::{Addr, FuncId, Pc, SyncOpKind, SyncVar, ThreadId};

fn sample_records(n: usize) -> Vec<Record> {
    (0..n)
        .map(|i| match i % 5 {
            0 => Record::Sync {
                tid: ThreadId::from_index(i % 3),
                pc: Pc::new(FuncId::from_index(1), i),
                kind: SyncOpKind::LockRelease,
                var: SyncVar(7),
                timestamp: i as u64,
            },
            _ => Record::Mem {
                tid: ThreadId::from_index(i % 3),
                pc: Pc::new(FuncId::from_index(2), i % 17),
                addr: Addr::global((i % 13) as u64 * 8),
                is_write: i % 2 == 0,
                mask: SamplerMask::bit(0),
            },
        })
        .collect()
}

fn collect(blocks: impl Iterator<Item = literace_log::LogResult<Vec<Record>>>)
    -> literace_log::LogResult<Vec<Record>> {
    let mut out = Vec::new();
    for b in blocks {
        out.extend(b?);
    }
    Ok(out)
}

#[test]
fn bad_magic_is_typed() {
    let err = V2Blocks::open(&b"not a log at all"[..]).unwrap_err();
    assert!(
        matches!(&err, LogError::BadMagic { found } if found == b"not "),
        "{err}"
    );
    // Short streams report the bytes that were there.
    let err = V2Blocks::open(&b"LR"[..]).unwrap_err();
    assert!(matches!(err, LogError::BadMagic { .. }), "{err}");
    let err = V2Blocks::open(std::io::empty()).unwrap_err();
    assert!(
        matches!(&err, LogError::BadMagic { found } if found.is_empty()),
        "{err}"
    );
}

#[test]
fn version_mismatch_is_typed_everywhere() {
    let mut bytes = encode_v2(&sample_records(10)).to_vec();
    bytes[4] = 3;
    let err = V2Blocks::open(&bytes[..]).unwrap_err();
    assert!(
        matches!(
            err,
            LogError::UnsupportedVersion {
                found: 3,
                supported: V2_VERSION
            }
        ),
        "{err}"
    );
    // The auto-detecting readers agree.
    let err = RecordBlocks::open(&bytes[..]).unwrap_err();
    assert!(matches!(err, LogError::UnsupportedVersion { found: 3, .. }), "{err}");
    let err = read_log_auto(&bytes[..]).unwrap_err();
    assert!(matches!(err, LogError::UnsupportedVersion { found: 3, .. }), "{err}");
}

#[test]
fn magic_alone_with_no_version_byte_is_corrupt() {
    let err = V2Blocks::open(&V2_MAGIC[..]).unwrap_err();
    assert!(matches!(err, LogError::Corrupt { .. }), "{err}");
    let err = read_log_auto(&V2_MAGIC[..]).unwrap_err();
    assert!(matches!(err, LogError::Corrupt { .. }), "{err}");
}

#[test]
fn truncated_block_header_is_corrupt() {
    let bytes = encode_v2(&sample_records(100));
    // Cut inside the first block's 8-byte length/count header.
    let cut = &bytes[..5 + 3];
    let err = collect(V2Blocks::open(cut).unwrap()).unwrap_err();
    assert!(matches!(err, LogError::Corrupt { .. }), "{err}");
    assert!(err.to_string().contains("header"), "{err}");
}

#[test]
fn truncated_block_payload_is_corrupt() {
    let bytes = encode_v2(&sample_records(100));
    // Keep the header and half the first block's payload.
    let cut = &bytes[..bytes.len() - (bytes.len() - 13) / 2];
    let err = collect(V2Blocks::open(cut).unwrap()).unwrap_err();
    assert!(matches!(err, LogError::Corrupt { .. }), "{err}");
}

#[test]
fn corrupted_varint_is_corrupt_not_panic() {
    let records = sample_records(50);
    let mut bytes = encode_v2(&records).to_vec();
    // Set continuation bits on a run of payload bytes: an unterminated
    // varint that would read past any sane field width.
    let payload_start = 5 + 8;
    for b in bytes.iter_mut().skip(payload_start + 1).take(12) {
        *b = 0xFF;
    }
    let err = collect(V2Blocks::open(&bytes[..]).unwrap()).unwrap_err();
    assert!(matches!(err, LogError::Corrupt { .. }), "{err}");
}

#[test]
fn oversized_declared_payload_is_rejected_without_allocating() {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&V2_MAGIC);
    bytes.push(V2_VERSION);
    bytes.extend_from_slice(&u32::MAX.to_le_bytes()); // absurd payload_len
    bytes.extend_from_slice(&1u32.to_le_bytes());
    let err = collect(V2Blocks::open(&bytes[..]).unwrap()).unwrap_err();
    assert!(matches!(err, LogError::Corrupt { .. }), "{err}");
    assert!(err.to_string().contains("cap"), "{err}");
}

#[test]
fn record_count_mismatches_are_corrupt() {
    let records = sample_records(20);
    let bytes = encode_v2(&records).to_vec();
    // Inflate the declared record count: decoding runs off the payload.
    let mut more = bytes.clone();
    let count = u32::from_le_bytes(more[9..13].try_into().unwrap());
    more[9..13].copy_from_slice(&(count + 1).to_le_bytes());
    let err = collect(V2Blocks::open(&more[..]).unwrap()).unwrap_err();
    assert!(matches!(err, LogError::Corrupt { .. }), "{err}");
    // Deflate it: trailing bytes after the declared records.
    let mut fewer = bytes;
    fewer[9..13].copy_from_slice(&(count - 1).to_le_bytes());
    let err = collect(V2Blocks::open(&fewer[..]).unwrap()).unwrap_err();
    assert!(err.to_string().contains("trailing"), "{err}");
}

#[test]
fn corruption_is_confined_to_one_block() {
    // Two-block log; corrupt the second block's payload. The first block
    // must still stream out intact before the error surfaces.
    let records = sample_records(200);
    let mut w = literace_log::LogWriterV2::with_block_bytes(Vec::new(), 64);
    for r in &records {
        w.write_record(r).unwrap();
    }
    let mut bytes = w.finish().unwrap();
    let last = bytes.len() - 1;
    bytes[last] = 0xFF;
    let mut decoded = Vec::new();
    let mut error = None;
    for block in V2Blocks::open(&bytes[..]).unwrap() {
        match block {
            Ok(b) => decoded.extend(b),
            Err(e) => {
                error = Some(e);
                break;
            }
        }
    }
    assert!(error.is_some(), "the corrupted tail block must error");
    assert!(!decoded.is_empty(), "intact leading blocks must decode");
    assert_eq!(&records[..decoded.len()], &decoded[..]);
}
