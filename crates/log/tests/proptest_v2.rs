//! Property tests for the v2 codec and the streaming readers: arbitrary
//! records round-trip through any block size, and arbitrary corruption
//! never panics (it decodes a clean prefix or errors).

use literace_log::{
    encode_v2, read_log_auto, LogWriterV2, Record, RecordBlocks, SamplerMask, V2Blocks,
};
use literace_sim::{Addr, Pc, SyncOpKind, SyncVar, ThreadId};
use proptest::prelude::*;

fn arb_kind() -> impl Strategy<Value = SyncOpKind> {
    use SyncOpKind::*;
    prop::sample::select(vec![
        LockAcquire,
        LockRelease,
        Notify,
        WaitReturn,
        Reset,
        SemRelease,
        SemAcquire,
        BarrierArrive,
        BarrierDepart,
        Fork,
        ThreadStart,
        ThreadExit,
        Join,
        AtomicRmw,
        AllocPage,
    ])
}

fn arb_record() -> impl Strategy<Value = Record> {
    let sync = (any::<u32>(), any::<u64>(), arb_kind(), any::<u64>(), any::<u64>()).prop_map(
        |(tid, pc, kind, var, timestamp)| Record::Sync {
            tid: ThreadId::from_index(tid as usize),
            pc: Pc(pc),
            kind,
            var: SyncVar(var),
            timestamp,
        },
    );
    let mem = (any::<u32>(), any::<u64>(), any::<u64>(), any::<bool>(), any::<u32>()).prop_map(
        |(tid, pc, addr, is_write, mask)| Record::Mem {
            tid: ThreadId::from_index(tid as usize),
            pc: Pc(pc),
            addr: Addr(addr),
            is_write,
            mask: SamplerMask(mask),
        },
    );
    let begin = any::<u32>().prop_map(|tid| Record::ThreadBegin {
        tid: ThreadId::from_index(tid as usize),
    });
    let end = any::<u32>().prop_map(|tid| Record::ThreadEnd {
        tid: ThreadId::from_index(tid as usize),
    });
    prop_oneof![sync, mem, begin, end]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Encode ∘ decode is the identity on arbitrary record sequences,
    /// through the auto-detecting reader.
    #[test]
    fn round_trip(records in prop::collection::vec(arb_record(), 0..64)) {
        let bytes = encode_v2(&records);
        let log = read_log_auto(&bytes[..]).unwrap();
        prop_assert_eq!(&records[..], log.records());
    }

    /// Block size never affects the decoded stream — delta state resets at
    /// every boundary, so any partitioning into blocks is equivalent.
    #[test]
    fn round_trip_any_block_size(
        records in prop::collection::vec(arb_record(), 1..64),
        block_bytes in 1usize..256,
    ) {
        let mut w = LogWriterV2::with_block_bytes(Vec::new(), block_bytes);
        for r in &records {
            w.write_record(r).unwrap();
        }
        let bytes = w.finish().unwrap();
        let log = read_log_auto(&bytes[..]).unwrap();
        prop_assert_eq!(&records[..], log.records());
    }

    /// Arbitrary bytes behind a valid header never panic the block reader.
    #[test]
    fn decoding_garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let mut stream = encode_v2([]).to_vec(); // header only
        stream.extend_from_slice(&bytes);
        for block in V2Blocks::open(&stream[..]).unwrap() {
            if block.is_err() {
                break;
            }
        }
    }

    /// Flipping one byte of a valid stream never panics; decoding either
    /// errors cleanly or yields records.
    #[test]
    fn single_byte_corruption_is_handled(
        records in prop::collection::vec(arb_record(), 1..32),
        pos_seed: usize,
        flip: u8,
    ) {
        let mut bytes = encode_v2(&records).to_vec();
        let pos = pos_seed % bytes.len();
        bytes[pos] ^= flip | 1; // guarantee a real change
        let _ = read_log_auto(&bytes[..]);
    }

    /// A truncated stream never panics, and whatever decodes before the
    /// error is a prefix of the original records (whole blocks decode
    /// independently; the cut block errors).
    #[test]
    fn truncation_yields_a_clean_prefix(
        records in prop::collection::vec(arb_record(), 1..64),
        block_bytes in 8usize..64,
        cut_seed: usize,
    ) {
        let mut w = LogWriterV2::with_block_bytes(Vec::new(), block_bytes);
        for r in &records {
            w.write_record(r).unwrap();
        }
        let bytes = w.finish().unwrap();
        let cut = 5 + cut_seed % (bytes.len() - 4);
        let truncated = &bytes[..cut.min(bytes.len())];
        // A cut header is a typed error; otherwise whatever decodes before
        // the first block error must be a prefix.
        if let Ok(blocks) = RecordBlocks::open(truncated) {
            let mut decoded = Vec::new();
            for block in blocks {
                match block {
                    Ok(b) => decoded.extend(b),
                    Err(_) => break,
                }
            }
            prop_assert!(decoded.len() <= records.len());
            prop_assert_eq!(&records[..decoded.len()], &decoded[..]);
        }
    }
}
