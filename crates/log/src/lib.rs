//! # literace-log
//!
//! The event-log substrate of the LiteRace reproduction: record types for
//! synchronization operations and sampled memory accesses (§3.2 of the
//! paper), a compact binary codec, streaming reader/writer, and log-volume
//! statistics used by the Table 5 overhead model.
//!
//! ## Example
//!
//! ```
//! use literace_log::{EventLog, Record, SamplerMask, log_to_bytes, log_from_bytes};
//! use literace_sim::{Addr, FuncId, Pc, ThreadId};
//!
//! let mut log = EventLog::new();
//! log.push(Record::Mem {
//!     tid: ThreadId::MAIN,
//!     pc: Pc::new(FuncId::from_index(0), 3),
//!     addr: Addr::global(7),
//!     is_write: true,
//!     mask: SamplerMask::FULL,
//! });
//! let bytes = log_to_bytes(&log);
//! let back = log_from_bytes(bytes)?;
//! assert_eq!(log, back);
//! # Ok::<(), literace_log::LogError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod atomic;
mod checksum;
mod codec;
mod container;
mod dir;
mod error;
pub mod fault;
pub mod gv;
mod io;
pub mod mmap;
mod parallel;
mod pipelined;
mod record;
pub mod retry;
pub mod salvage;
mod stats;
mod stream;
mod v2;
mod varint;

pub use atomic::AtomicFile;
pub use checksum::{checksum, checksum32, Checksum};
pub use container::{read_container, ContainerSection, ContainerWriter};
pub use codec::{
    decode, decode_all, encode, encode_all, encoded_len, tag_len, MARKER_RECORD_BYTES,
    MEM_RECORD_BYTES, SYNC_RECORD_BYTES,
};
pub use dir::{read_thread_logs, write_thread_logs};
pub use error::{LogError, LogResult};
pub use fault::{FaultPlan, FaultyReader, FaultySink, SplitMix64};
pub use io::{
    log_from_bytes, log_to_bytes, ChunkedRecords, LogReader, LogWriter, DEFAULT_CHUNK_BYTES,
};
pub use bytes::Bytes;
pub use mmap::{map_or_read, mmap_supported};
pub use pipelined::{EncodeOpts, PipelinedSink, DEFAULT_BLOCK_RECORDS};
pub use record::{EventLog, Record, SamplerMask};
pub use retry::{RetryPolicy, RetryReader};
pub use salvage::{open_salvage, read_log_salvage, SalvageBlocks, SalvageHandle, SalvageReport};
pub use stats::{LogStats, ThreadLogStats};
pub use stream::{
    auto_stream_depth, read_log_auto, DecodeOpts, LogFormat, RecordBlocks, RecordStream,
    DEFAULT_STREAM_DEPTH, MAX_STREAM_DEPTH, V1_BLOCK_RECORDS,
};
pub use v2::{
    decode_block, encode_block, encode_block_rev, encode_v2, encode_v2_rev, peek_sealed_total,
    LogWriterV2, SealState, V2Blocks, DEFAULT_BLOCK_BYTES, V2_MAGIC, V2_REV_DELTA, V2_REV_GV,
    V2_VERSION,
};
pub use varint::{
    get_delta, get_delta_slice, get_varint, get_varint_slice, put_delta, put_varint, unzigzag,
    zigzag, MAX_VARINT_BYTES,
};
