//! Deterministic fault injection for I/O chaos testing.
//!
//! [`FaultyReader`] and [`FaultySink`] wrap any `Read`/`Write` and inject
//! the failure modes a log pipeline meets in the wild — short reads,
//! `Interrupted`, transient `WouldBlock` errors, truncation at byte N,
//! bit flips — all driven by a seeded [`SplitMix64`] generator so every
//! run (and every proptest shrink) replays identically from its seed.
//!
//! These live in the library (not `#[cfg(test)]`) so integration tests,
//! the chaos suite and CI smoke tests can share them; they cost nothing
//! unless constructed.

use std::io::{Error, ErrorKind, Read, Write};

/// Tiny deterministic PRNG (splitmix64): one u64 of state, passes
/// practical statistical tests, and is trivially reproducible from its
/// seed — exactly what fault schedules need.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next pseudo-random value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`0` when `bound == 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

/// A deterministic schedule of read-side faults.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Pretend the stream ends after this many bytes.
    pub truncate_at: Option<u64>,
    /// XOR `mask` into the byte at `offset` (offsets past the end are
    /// ignored).
    pub bit_flips: Vec<(u64, u8)>,
    /// Serve reads in random 1..=7-byte pieces instead of filling `buf`.
    pub short_reads: bool,
    /// Roughly one in this many reads fails with `Interrupted`
    /// (`0` = never).
    pub interrupt_one_in: u32,
    /// Roughly one in this many reads fails with `WouldBlock`
    /// (`0` = never).
    pub transient_one_in: u32,
    /// Cap on injected transient errors, so a bounded retry policy is
    /// always eventually enough to finish the stream.
    pub transient_budget: u32,
}

impl FaultPlan {
    /// A plan that only truncates at `n` bytes.
    pub fn truncated_at(n: u64) -> FaultPlan {
        FaultPlan {
            truncate_at: Some(n),
            ..FaultPlan::default()
        }
    }

    /// A plan that only flips `mask` into the byte at `offset`.
    pub fn bit_flip(offset: u64, mask: u8) -> FaultPlan {
        FaultPlan {
            bit_flips: vec![(offset, mask)],
            ..FaultPlan::default()
        }
    }
}

/// A `Read` wrapper that injects the faults of a [`FaultPlan`],
/// deterministically from `seed`.
#[derive(Debug)]
pub struct FaultyReader<R> {
    inner: R,
    plan: FaultPlan,
    rng: SplitMix64,
    pos: u64,
    transients_left: u32,
}

impl<R: Read> FaultyReader<R> {
    /// Wraps `inner` with `plan`, seeding the fault schedule with `seed`.
    pub fn new(inner: R, plan: FaultPlan, seed: u64) -> FaultyReader<R> {
        let transients_left = plan.transient_budget;
        FaultyReader {
            inner,
            plan,
            rng: SplitMix64::new(seed),
            pos: 0,
            transients_left,
        }
    }
}

impl<R: Read> Read for FaultyReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        if let Some(cut) = self.plan.truncate_at {
            if self.pos >= cut {
                return Ok(0); // injected EOF
            }
        }
        if self.plan.interrupt_one_in > 0
            && self.rng.below(u64::from(self.plan.interrupt_one_in)) == 0
        {
            return Err(Error::new(ErrorKind::Interrupted, "injected interrupt"));
        }
        if self.plan.transient_one_in > 0
            && self.transients_left > 0
            && self.rng.below(u64::from(self.plan.transient_one_in)) == 0
        {
            self.transients_left -= 1;
            return Err(Error::new(ErrorKind::WouldBlock, "injected transient error"));
        }
        let mut want = buf.len();
        if self.plan.short_reads {
            want = want.min(1 + self.rng.below(7) as usize);
        }
        if let Some(cut) = self.plan.truncate_at {
            want = want.min((cut - self.pos) as usize);
        }
        let n = self.inner.read(&mut buf[..want])?;
        for &(offset, mask) in &self.plan.bit_flips {
            if offset >= self.pos && offset < self.pos + n as u64 {
                buf[(offset - self.pos) as usize] ^= mask;
            }
        }
        self.pos += n as u64;
        Ok(n)
    }
}

/// A `Write` wrapper that fails deterministically: a hard error once
/// `fail_after` bytes have been accepted, optional short writes before
/// that. Models a device that dies mid-run (crash consistency tests).
#[derive(Debug)]
pub struct FaultySink<W> {
    inner: W,
    /// Hard-fail any write once this many bytes were accepted.
    fail_after: Option<u64>,
    short_writes: bool,
    rng: SplitMix64,
    written: u64,
}

impl<W: Write> FaultySink<W> {
    /// Wraps `inner`; `fail_after` bytes are accepted before every
    /// subsequent write fails.
    pub fn new(inner: W, fail_after: Option<u64>, short_writes: bool, seed: u64) -> FaultySink<W> {
        FaultySink {
            inner,
            fail_after,
            short_writes,
            rng: SplitMix64::new(seed),
            written: 0,
        }
    }

    /// Bytes accepted so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// The wrapped sink.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for FaultySink<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        if let Some(cap) = self.fail_after {
            if self.written >= cap {
                return Err(Error::other("injected write failure (device died)"));
            }
        }
        let mut want = buf.len();
        if self.short_writes {
            want = want.min(1 + self.rng.below(7) as usize);
        }
        if let Some(cap) = self.fail_after {
            want = want.min((cap - self.written) as usize);
        }
        let n = self.inner.write(&buf[..want])?;
        self.written += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn splitmix_is_deterministic_and_nontrivial() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), xs.len(), "collisions in 8 draws");
        assert_ne!(SplitMix64::new(43).next_u64(), xs[0]);
    }

    #[test]
    fn truncation_cuts_exactly_at_n() {
        let data: Vec<u8> = (0..=255).collect();
        let mut reader = FaultyReader::new(&data[..], FaultPlan::truncated_at(100), 1);
        let mut out = Vec::new();
        reader.read_to_end(&mut out).unwrap();
        assert_eq!(out, data[..100]);
    }

    #[test]
    fn bit_flips_hit_their_offsets_despite_short_reads() {
        let data = vec![0u8; 64];
        let plan = FaultPlan {
            bit_flips: vec![(0, 0x01), (31, 0x80), (63, 0xFF)],
            short_reads: true,
            ..FaultPlan::default()
        };
        let mut reader = FaultyReader::new(&data[..], plan, 7);
        let mut out = Vec::new();
        reader.read_to_end(&mut out).unwrap();
        let mut expected = data.clone();
        expected[0] ^= 0x01;
        expected[31] ^= 0x80;
        expected[63] ^= 0xFF;
        assert_eq!(out, expected);
    }

    #[test]
    fn same_seed_same_faults() {
        let data: Vec<u8> = (0..200u8).collect();
        let plan = FaultPlan {
            short_reads: true,
            interrupt_one_in: 5,
            transient_one_in: 7,
            transient_budget: 3,
            ..FaultPlan::default()
        };
        let run = |seed| {
            let mut reader = FaultyReader::new(&data[..], plan.clone(), seed);
            let mut events = Vec::new();
            let mut buf = [0u8; 16];
            loop {
                match reader.read(&mut buf) {
                    Ok(0) => break,
                    Ok(n) => events.push(format!("ok{n}")),
                    Err(e) => events.push(format!("err{:?}", e.kind())),
                }
            }
            events
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12));
    }

    #[test]
    fn faulty_sink_dies_after_the_cap() {
        let mut sink = FaultySink::new(Vec::new(), Some(10), true, 3);
        let payload = [7u8; 64];
        let mut total = 0usize;
        let err = loop {
            match sink.write(&payload[total..]) {
                Ok(n) => total += n,
                Err(e) => break e,
            }
        };
        assert_eq!(total, 10);
        assert_eq!(sink.written(), 10);
        assert!(err.to_string().contains("injected"));
        assert_eq!(sink.into_inner(), vec![7u8; 10]);
    }

    #[test]
    fn transient_budget_bounds_injected_would_blocks() {
        let data = vec![1u8; 1000];
        let plan = FaultPlan {
            transient_one_in: 1, // every read wants to fail...
            transient_budget: 4, // ...but only 4 get to
            ..FaultPlan::default()
        };
        let mut reader = FaultyReader::new(&data[..], plan, 5);
        let mut out = Vec::new();
        let mut transients = 0;
        let mut buf = [0u8; 64];
        loop {
            match reader.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => out.extend_from_slice(&buf[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock => transients += 1,
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert_eq!(transients, 4);
        assert_eq!(out, data);
    }

    #[test]
    fn cursor_round_trip_with_no_plan_is_transparent() {
        let data: Vec<u8> = (0..100u8).collect();
        let mut reader = FaultyReader::new(Cursor::new(data.clone()), FaultPlan::default(), 9);
        let mut out = Vec::new();
        reader.read_to_end(&mut out).unwrap();
        assert_eq!(out, data);
    }
}
