//! Bounded retry with exponential backoff for transient read errors.
//!
//! Network filesystems, pipes and pseudo-files can fail a read with
//! `WouldBlock` or `TimedOut` and succeed moments later. The streaming
//! decoder thread ([`RecordStream`](crate::RecordStream)) has nothing
//! better to do than wait, so it wraps its source in a [`RetryReader`]:
//! transient errors are retried up to a bounded number of times with
//! exponential backoff, then surfaced unchanged. `Interrupted` is retried
//! immediately and indefinitely (the POSIX convention — it carries no
//! information about the device, only about signal delivery).

use std::io::{ErrorKind, Read};
use std::time::Duration;

/// Retry budget and backoff schedule for [`RetryReader`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Transient failures tolerated per `read` call before giving up.
    pub max_retries: u32,
    /// Sleep before the first retry; doubles on each subsequent one.
    pub base_delay: Duration,
}

impl Default for RetryPolicy {
    /// Four retries starting at 200µs (≤ 3ms total sleep) — generous for
    /// scheduler hiccups, negligible against a real device failure.
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 4,
            base_delay: Duration::from_micros(200),
        }
    }
}

impl RetryPolicy {
    /// A policy that never sleeps (tests).
    pub fn immediate(max_retries: u32) -> RetryPolicy {
        RetryPolicy {
            max_retries,
            base_delay: Duration::ZERO,
        }
    }
}

/// True for error kinds worth retrying after a short wait.
fn is_transient(kind: ErrorKind) -> bool {
    matches!(kind, ErrorKind::WouldBlock | ErrorKind::TimedOut)
}

/// A `Read` adapter that absorbs transient errors per a [`RetryPolicy`].
#[derive(Debug)]
pub struct RetryReader<R> {
    inner: R,
    policy: RetryPolicy,
}

impl<R: Read> RetryReader<R> {
    /// Wraps `inner` with the given policy.
    pub fn new(inner: R, policy: RetryPolicy) -> RetryReader<R> {
        RetryReader { inner, policy }
    }

    /// The wrapped reader.
    pub fn into_inner(self) -> R {
        self.inner
    }
}

impl<R: Read> Read for RetryReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let mut retries = 0u32;
        loop {
            match self.inner.read(buf) {
                Ok(n) => return Ok(n),
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) if is_transient(e.kind()) => {
                    if retries >= self.policy.max_retries {
                        if literace_telemetry::enabled() {
                            literace_telemetry::metrics().log_retry_exhausted.add(1);
                        }
                        return Err(e);
                    }
                    if literace_telemetry::enabled() {
                        literace_telemetry::metrics().log_retry_attempts.add(1);
                    }
                    let delay = self.policy.base_delay * 2u32.saturating_pow(retries);
                    if !delay.is_zero() {
                        std::thread::sleep(delay);
                    }
                    retries += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Cursor, Error};

    /// Yields errors from a script before each successful read.
    struct Flaky {
        data: Cursor<Vec<u8>>,
        script: Vec<ErrorKind>,
    }

    impl Read for Flaky {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            match self.script.pop() {
                Some(kind) => Err(Error::new(kind, "injected")),
                None => self.data.read(buf),
            }
        }
    }

    #[test]
    fn transient_errors_within_budget_are_absorbed() {
        let flaky = Flaky {
            data: Cursor::new(vec![1, 2, 3]),
            script: vec![
                ErrorKind::WouldBlock,
                ErrorKind::TimedOut,
                ErrorKind::Interrupted,
                ErrorKind::WouldBlock,
            ],
        };
        let mut reader = RetryReader::new(flaky, RetryPolicy::immediate(3));
        let mut out = Vec::new();
        reader.read_to_end(&mut out).unwrap();
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn budget_exhaustion_surfaces_the_error() {
        let flaky = Flaky {
            data: Cursor::new(vec![1]),
            script: vec![ErrorKind::WouldBlock; 5],
        };
        let mut reader = RetryReader::new(flaky, RetryPolicy::immediate(2));
        let err = reader.read(&mut [0u8; 4]).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::WouldBlock);
    }

    #[test]
    fn interrupted_never_consumes_the_budget() {
        let flaky = Flaky {
            data: Cursor::new(vec![7]),
            script: vec![ErrorKind::Interrupted; 50],
        };
        let mut reader = RetryReader::new(flaky, RetryPolicy::immediate(0));
        let mut out = Vec::new();
        reader.read_to_end(&mut out).unwrap();
        assert_eq!(out, vec![7]);
    }

    #[test]
    fn hard_errors_pass_straight_through() {
        let flaky = Flaky {
            data: Cursor::new(vec![1]),
            script: vec![ErrorKind::UnexpectedEof],
        };
        let mut reader = RetryReader::new(flaky, RetryPolicy::immediate(9));
        let err = reader.read(&mut [0u8; 4]).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::UnexpectedEof);
    }
}
