//! Crash-consistent file creation: write to a temp file, atomically
//! rename into place on commit.
//!
//! A log written straight to its final path can be half-present after a
//! crash — bytes flushed, no footer, or nothing but a creat(2)'d husk.
//! [`AtomicFile`] narrows the outcomes to exactly two: either `commit`
//! ran (flush + fsync + rename, so the final path holds the complete,
//! finalized bytes) or it didn't (the final path is untouched; at worst a
//! `.partial` temp file is left for a crashed process, and is removed on
//! drop otherwise). Together with the v2 footer this gives the
//! crash-consistency contract: a file at the final path without a valid
//! footer can only mean pre-existing data, never a torn write of ours.

use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};

/// A file that only appears at its destination path on [`commit`]
/// (flush + fsync + atomic rename). Dropping without committing removes
/// the temp file and leaves the destination untouched.
///
/// [`commit`]: AtomicFile::commit
#[derive(Debug)]
pub struct AtomicFile {
    /// `None` after commit (guards the Drop cleanup).
    file: Option<File>,
    temp_path: PathBuf,
    final_path: PathBuf,
}

impl AtomicFile {
    /// Creates `<path>.partial` in the same directory (so the final
    /// rename cannot cross filesystems) and returns a writer for it.
    ///
    /// # Errors
    ///
    /// Any `std::io::Error` from creating the temp file.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<AtomicFile> {
        let final_path = path.as_ref().to_path_buf();
        let mut temp_os = final_path.clone().into_os_string();
        temp_os.push(".partial");
        let temp_path = PathBuf::from(temp_os);
        let file = File::create(&temp_path)?;
        Ok(AtomicFile {
            file: Some(file),
            temp_path,
            final_path,
        })
    }

    /// The destination path.
    pub fn path(&self) -> &Path {
        &self.final_path
    }

    /// Removes a stale `<path>.partial` left behind by a crashed writer
    /// (a SIGKILL skips [`Drop`], so the temp file survives the process).
    /// Returns whether one was removed. Call before starting a fresh run
    /// to the same destination; harmless when nothing is stale.
    ///
    /// # Errors
    ///
    /// Any `std::io::Error` from removing an existing temp file
    /// (a missing file is the common case, not an error).
    pub fn sweep_stale(path: impl AsRef<Path>) -> std::io::Result<bool> {
        let mut temp_os = path.as_ref().to_path_buf().into_os_string();
        temp_os.push(".partial");
        let temp_path = PathBuf::from(temp_os);
        match std::fs::remove_file(&temp_path) {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(e),
        }
    }

    /// Flushes, fsyncs and renames the temp file onto the destination.
    /// After this returns `Ok`, the destination durably holds every byte
    /// written; on any error the destination is untouched.
    ///
    /// # Errors
    ///
    /// Any `std::io::Error` from flush, fsync or rename (the temp file is
    /// cleaned up on the way out).
    pub fn commit(mut self) -> std::io::Result<()> {
        let result = (|| {
            let mut file = self.file.take().expect("file present until commit/drop");
            file.flush()?;
            file.sync_all()?;
            drop(file);
            std::fs::rename(&self.temp_path, &self.final_path)
        })();
        if result.is_err() {
            let _ = std::fs::remove_file(&self.temp_path);
        }
        // Skip Drop's cleanup: either renamed away or just removed.
        std::mem::forget(self);
        result
    }
}

impl Write for AtomicFile {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.file
            .as_mut()
            .expect("file present until commit/drop")
            .write(buf)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.file
            .as_mut()
            .expect("file present until commit/drop")
            .flush()
    }
}

impl Drop for AtomicFile {
    fn drop(&mut self) {
        if self.file.take().is_some() {
            let _ = std::fs::remove_file(&self.temp_path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "literace-atomic-{tag}-{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn committed_file_appears_with_all_bytes() {
        let dir = temp_dir("commit");
        let path = dir.join("log.bin");
        let mut f = AtomicFile::create(&path).unwrap();
        f.write_all(b"hello world").unwrap();
        f.commit().unwrap();
        let mut got = String::new();
        File::open(&path).unwrap().read_to_string(&mut got).unwrap();
        assert_eq!(got, "hello world");
        assert!(!path.with_extension("bin.partial").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn dropped_file_leaves_no_trace() {
        let dir = temp_dir("drop");
        let path = dir.join("log.bin");
        {
            let mut f = AtomicFile::create(&path).unwrap();
            f.write_all(b"torn").unwrap();
            // dropped without commit
        }
        assert!(!path.exists());
        assert!(std::fs::read_dir(&dir).unwrap().next().is_none(), "temp left behind");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sweep_removes_a_stale_partial_from_a_crashed_run() {
        let dir = temp_dir("sweep");
        let path = dir.join("log.bin");
        // Simulate a crashed run: the temp file exists, Drop never ran.
        let crashed = {
            let mut f = AtomicFile::create(&path).unwrap();
            f.write_all(b"torn").unwrap();
            let temp = f.temp_path.clone();
            std::mem::forget(f);
            temp
        };
        assert!(crashed.exists(), "stale partial must exist pre-sweep");
        assert!(AtomicFile::sweep_stale(&path).unwrap());
        assert!(!crashed.exists(), "sweep must remove the stale partial");
        // Idempotent: nothing left to sweep.
        assert!(!AtomicFile::sweep_stale(&path).unwrap());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn commit_replaces_an_existing_file_atomically() {
        let dir = temp_dir("replace");
        let path = dir.join("log.bin");
        std::fs::write(&path, b"old").unwrap();
        let mut f = AtomicFile::create(&path).unwrap();
        f.write_all(b"new contents").unwrap();
        // Before commit the destination still holds the old bytes.
        assert_eq!(std::fs::read(&path).unwrap(), b"old");
        f.commit().unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"new contents");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
