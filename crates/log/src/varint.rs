//! LEB128 varints and zigzag deltas for the v2 codec.
//!
//! The v2 format (see [`crate::v2`]) shrinks records by encoding most
//! fields as deltas against the same thread's previous record: addresses
//! walk arrays, program counters walk straight-line code, and logical
//! timestamps are near-monotonic, so the deltas are small and a varint
//! stores them in one or two bytes instead of eight. Deltas can be
//! negative (a thread revisits a lower address), hence zigzag.

use bytes::{Buf, BufMut};

use crate::error::{LogError, LogResult};

/// Maximum encoded length of a u64 varint (⌈64/7⌉ bytes).
pub const MAX_VARINT_BYTES: usize = 10;

/// Appends `v` as an LEB128 varint.
#[inline]
pub fn put_varint(buf: &mut impl BufMut, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Decodes one LEB128 varint from the front of `buf`.
///
/// # Errors
///
/// Returns [`LogError::Corrupt`] when the buffer ends mid-varint
/// ("truncated varint") or a continuation chain exceeds the 10-byte bound
/// for a u64 ("varint too long").
#[inline]
pub fn get_varint(buf: &mut impl Buf) -> LogResult<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        if !buf.has_remaining() {
            return Err(LogError::corrupt("truncated varint"));
        }
        let byte = buf.get_u8();
        if shift == 63 && byte > 1 {
            return Err(LogError::corrupt("varint too long for u64"));
        }
        v |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift as usize >= MAX_VARINT_BYTES * 7 {
            return Err(LogError::corrupt("varint too long for u64"));
        }
    }
}

/// Slice-specialized [`get_varint`]: the block decoder reads from a fully
/// materialized payload, so the 1- and 2-byte cases (the overwhelming
/// majority under the delta scheme) can be decided by direct pattern match
/// on the slice instead of per-byte `has_remaining` checks through the
/// generic `Buf` machinery.
///
/// # Errors
///
/// Same as [`get_varint`].
#[inline]
pub fn get_varint_slice(buf: &mut &[u8]) -> LogResult<u64> {
    let s = *buf;
    if let Some(&b0) = s.first() {
        if b0 & 0x80 == 0 {
            *buf = &s[1..];
            return Ok(u64::from(b0));
        }
        if let Some(&b1) = s.get(1) {
            if b1 & 0x80 == 0 {
                *buf = &s[2..];
                return Ok(u64::from(b0 & 0x7F) | (u64::from(b1) << 7));
            }
        }
    }
    // Empty or 1-byte buffers and 3+-byte varints fall through with
    // nothing consumed; the generic loop re-reads from the start.
    get_varint(buf)
}

/// Slice-specialized [`get_delta`], built on [`get_varint_slice`].
///
/// # Errors
///
/// Propagates varint decoding errors.
#[inline]
pub fn get_delta_slice(buf: &mut &[u8], last: u64) -> LogResult<u64> {
    Ok(last.wrapping_add(unzigzag(get_varint_slice(buf)?) as u64))
}

/// Maps a signed value onto an unsigned one with small absolute values
/// staying small (0, -1, 1, -2 → 0, 1, 2, 3).
#[inline]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Appends `new` encoded as a zigzag varint delta against `last`.
/// Wrapping arithmetic makes the pair lossless over the whole u64 range.
#[inline]
pub fn put_delta(buf: &mut impl BufMut, last: u64, new: u64) {
    put_varint(buf, zigzag(new.wrapping_sub(last) as i64));
}

/// Decodes a zigzag varint delta and applies it to `last`.
///
/// # Errors
///
/// Propagates varint decoding errors.
#[inline]
pub fn get_delta(buf: &mut impl Buf, last: u64) -> LogResult<u64> {
    Ok(last.wrapping_add(unzigzag(get_varint(buf)?) as u64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;

    #[test]
    fn varint_round_trips_edge_values() {
        for v in [
            0u64,
            1,
            127,
            128,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut buf = BytesMut::new();
            put_varint(&mut buf, v);
            assert!(buf.len() <= MAX_VARINT_BYTES);
            let mut slice = &buf[..];
            assert_eq!(get_varint(&mut slice).unwrap(), v);
            assert!(slice.is_empty());
        }
    }

    #[test]
    fn small_values_are_one_byte() {
        for v in 0..128u64 {
            let mut buf = BytesMut::new();
            put_varint(&mut buf, v);
            assert_eq!(buf.len(), 1);
        }
    }

    #[test]
    fn truncated_varint_is_corrupt() {
        let bytes = [0x80u8, 0x80];
        let mut slice = &bytes[..];
        let err = get_varint(&mut slice).unwrap_err();
        assert!(err.to_string().contains("truncated varint"), "{err}");
    }

    #[test]
    fn overlong_varint_is_corrupt() {
        let bytes = [0xFFu8; 11];
        let mut slice = &bytes[..];
        let err = get_varint(&mut slice).unwrap_err();
        assert!(err.to_string().contains("too long"), "{err}");
    }

    #[test]
    fn ten_byte_varint_with_bad_top_bits_is_corrupt() {
        // 9 continuation bytes then a final byte carrying more than the
        // single bit a u64 has room for.
        let mut bytes = [0x80u8; 10];
        bytes[9] = 0x03;
        let mut slice = &bytes[..];
        assert!(get_varint(&mut slice).is_err());
    }

    #[test]
    fn slice_fast_path_matches_generic_decoder() {
        for v in [
            0u64,
            1,
            127,
            128,
            255,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX,
        ] {
            let mut buf = BytesMut::new();
            put_varint(&mut buf, v);
            let mut slice = &buf[..];
            assert_eq!(get_varint_slice(&mut slice).unwrap(), v);
            assert!(slice.is_empty());
        }
        // Errors agree too: truncated and overlong inputs.
        let mut truncated: &[u8] = &[0x80, 0x80];
        assert!(get_varint_slice(&mut truncated).is_err());
        let mut empty: &[u8] = &[];
        assert!(get_varint_slice(&mut empty).is_err());
        let mut overlong: &[u8] = &[0xFF; 11];
        assert!(get_varint_slice(&mut overlong).is_err());
    }

    #[test]
    fn slice_delta_round_trips() {
        for (last, new) in [(0u64, 0u64), (0, u64::MAX), (u64::MAX, 0), (5, 3), (3, 5)] {
            let mut buf = BytesMut::new();
            put_delta(&mut buf, last, new);
            let mut slice = &buf[..];
            assert_eq!(get_delta_slice(&mut slice, last).unwrap(), new);
            assert!(slice.is_empty());
        }
    }

    #[test]
    fn zigzag_round_trips() {
        for v in [0i64, 1, -1, 2, -2, i64::MAX, i64::MIN, 12345, -98765] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn delta_round_trips_over_wrapping_boundaries() {
        for (last, new) in [
            (0u64, 0u64),
            (0, u64::MAX),
            (u64::MAX, 0),
            (5, 3),
            (3, 5),
            (u64::MAX / 2, u64::MAX / 2 + 10),
        ] {
            let mut buf = BytesMut::new();
            put_delta(&mut buf, last, new);
            let mut slice = &buf[..];
            assert_eq!(get_delta(&mut slice, last).unwrap(), new);
        }
    }
}
