//! Log volume accounting.
//!
//! Table 5 of the paper reports log generation rates in MB/s for LiteRace
//! versus full logging. [`LogStats`] computes the encoded size of a log and,
//! combined with a modeled baseline execution time, the MB/s figure.

use serde::{Deserialize, Serialize};

use crate::codec::encoded_len;
use crate::record::{EventLog, Record};

/// Size and composition statistics of a log.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogStats {
    /// Total records.
    pub records: u64,
    /// Memory-access records.
    pub mem_records: u64,
    /// Synchronization records.
    pub sync_records: u64,
    /// Thread marker records.
    pub marker_records: u64,
    /// Total encoded bytes.
    pub bytes: u64,
}

impl LogStats {
    /// Computes statistics over a log.
    pub fn of(log: &EventLog) -> LogStats {
        let mut s = LogStats::default();
        for r in log {
            s.records += 1;
            s.bytes += encoded_len(r) as u64;
            match r {
                Record::Mem { .. } => s.mem_records += 1,
                Record::Sync { .. } => s.sync_records += 1,
                Record::ThreadBegin { .. } | Record::ThreadEnd { .. } => s.marker_records += 1,
            }
        }
        s
    }

    /// Log generation rate in MB/s given an execution time in seconds.
    ///
    /// Returns 0 for a non-positive duration.
    pub fn mb_per_sec(&self, seconds: f64) -> f64 {
        if seconds <= 0.0 {
            return 0.0;
        }
        self.bytes as f64 / (1024.0 * 1024.0) / seconds
    }

    /// Per-thread record counts and sync/memory breakdown, indexed by
    /// thread id (threads that never logged get zero rows).
    pub fn per_thread(log: &EventLog) -> Vec<ThreadLogStats> {
        let mut out: Vec<ThreadLogStats> = Vec::new();
        for r in log {
            let i = r.tid().index();
            if i >= out.len() {
                out.resize(i + 1, ThreadLogStats::default());
            }
            let t = &mut out[i];
            t.records += 1;
            match r {
                Record::Mem { .. } => t.mem_records += 1,
                Record::Sync { .. } => t.sync_records += 1,
                Record::ThreadBegin { .. } | Record::ThreadEnd { .. } => t.marker_records += 1,
            }
        }
        out
    }
}

/// One thread's slice of a log's composition (see [`LogStats::per_thread`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThreadLogStats {
    /// Records logged by this thread.
    pub records: u64,
    /// Memory-access records.
    pub mem_records: u64,
    /// Synchronization records.
    pub sync_records: u64,
    /// Thread marker records.
    pub marker_records: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{MARKER_RECORD_BYTES, MEM_RECORD_BYTES, SYNC_RECORD_BYTES};
    use crate::record::SamplerMask;
    use literace_sim::{Addr, FuncId, Pc, SyncOpKind, SyncVar, ThreadId};

    #[test]
    fn stats_count_by_kind() {
        let mut log = EventLog::new();
        log.push(Record::ThreadBegin {
            tid: ThreadId::MAIN,
        });
        log.push(Record::Sync {
            tid: ThreadId::MAIN,
            pc: Pc::new(FuncId::from_index(0), 0),
            kind: SyncOpKind::Notify,
            var: SyncVar(3),
            timestamp: 1,
        });
        log.push(Record::Mem {
            tid: ThreadId::MAIN,
            pc: Pc::new(FuncId::from_index(0), 1),
            addr: Addr::global(0),
            is_write: false,
            mask: SamplerMask::FULL,
        });
        let s = LogStats::of(&log);
        assert_eq!(s.records, 3);
        assert_eq!(s.mem_records, 1);
        assert_eq!(s.sync_records, 1);
        assert_eq!(s.marker_records, 1);
        assert_eq!(
            s.bytes,
            (MARKER_RECORD_BYTES + SYNC_RECORD_BYTES + MEM_RECORD_BYTES) as u64
        );
    }

    #[test]
    fn per_thread_attributes_by_kind_and_pads_gaps() {
        let mut log = EventLog::new();
        log.push(Record::ThreadBegin {
            tid: ThreadId::MAIN,
        });
        log.push(Record::Mem {
            tid: ThreadId::from_index(2),
            pc: Pc::new(FuncId::from_index(0), 1),
            addr: Addr::global(0),
            is_write: true,
            mask: SamplerMask::FULL,
        });
        log.push(Record::Sync {
            tid: ThreadId::from_index(2),
            pc: Pc::new(FuncId::from_index(0), 0),
            kind: SyncOpKind::Notify,
            var: SyncVar(3),
            timestamp: 1,
        });
        let per = LogStats::per_thread(&log);
        assert_eq!(per.len(), 3);
        assert_eq!(per[0].marker_records, 1);
        assert_eq!(per[1], ThreadLogStats::default(), "gap thread is zeroed");
        assert_eq!(per[2].records, 2);
        assert_eq!(per[2].mem_records, 1);
        assert_eq!(per[2].sync_records, 1);
        // The per-thread rows partition the totals.
        let totals = LogStats::of(&log);
        assert_eq!(
            per.iter().map(|t| t.records).sum::<u64>(),
            totals.records
        );
    }

    #[test]
    fn mb_per_sec_guards_zero_duration() {
        let s = LogStats {
            bytes: 1024 * 1024,
            ..LogStats::default()
        };
        assert_eq!(s.mb_per_sec(0.0), 0.0);
        assert!((s.mb_per_sec(1.0) - 1.0).abs() < 1e-9);
        assert!((s.mb_per_sec(2.0) - 0.5).abs() < 1e-9);
    }
}
