//! Zero-copy file ingest for the parallel decode pool.
//!
//! [`map_or_read`] produces the [`Bytes`] buffer that
//! [`RecordStream::spawn_bytes`](crate::RecordStream::spawn_bytes) slices
//! block payloads out of without copying. With the `mmap` feature enabled
//! on x86_64 Linux the buffer is a private read-only memory map made with
//! raw `mmap`/`munmap` syscalls (the workspace vendors all dependencies,
//! so no `memmap2`); the mapping is owned by the `Bytes` via
//! [`Bytes::from_owner`] and unmapped when the last slice drops. On other
//! targets — or if the map fails — the file is read into memory instead,
//! which preserves the API but costs one copy.
//!
//! Mapping a file that another process truncates mid-read is undefined
//! behaviour on every mmap implementation (`SIGBUS`); LiteRace logs are
//! written via [`AtomicFile`](crate::AtomicFile) rename-into-place, so a
//! visible log is never mutated.

use std::fs::File;
use std::io::Read;
use std::path::Path;

use bytes::Bytes;

use crate::error::{LogError, LogResult};

/// Loads `path` as a [`Bytes`] buffer for
/// [`RecordStream::spawn_bytes`](crate::RecordStream::spawn_bytes):
/// memory-mapped when the `mmap` feature is active on a supported target,
/// read into memory otherwise.
///
/// # Errors
///
/// Returns [`LogError::Io`] when the file cannot be opened or read. A
/// failed *map* is not an error — it falls back to reading.
pub fn map_or_read(path: impl AsRef<Path>) -> LogResult<Bytes> {
    let mut file = File::open(path.as_ref()).map_err(LogError::Io)?;
    let len = file.metadata().map_err(LogError::Io)?.len();
    #[cfg(all(feature = "mmap", target_os = "linux", target_arch = "x86_64"))]
    if let Some(map) = sys::Mmap::map(&file, len) {
        return Ok(Bytes::from_owner(map));
    }
    let mut buf = Vec::with_capacity(usize::try_from(len).unwrap_or(0));
    file.read_to_end(&mut buf).map_err(LogError::Io)?;
    Ok(Bytes::from(buf))
}

/// True when [`map_or_read`] can actually map on this build and target
/// (feature enabled, x86_64 Linux).
pub fn mmap_supported() -> bool {
    cfg!(all(feature = "mmap", target_os = "linux", target_arch = "x86_64"))
}

#[cfg(all(feature = "mmap", target_os = "linux", target_arch = "x86_64"))]
mod sys {
    use std::fs::File;
    use std::os::fd::AsRawFd;

    const PROT_READ: usize = 0x1;
    const MAP_PRIVATE: usize = 0x2;
    const SYS_MMAP: usize = 9;
    const SYS_MUNMAP: usize = 11;

    /// A private read-only mapping of a whole file, unmapped on drop.
    pub(super) struct Mmap {
        ptr: *const u8,
        len: usize,
    }

    // The mapping is immutable (PROT_READ, MAP_PRIVATE) and the pointer
    // is valid for `len` bytes until drop, so shared access is safe.
    unsafe impl Send for Mmap {}
    unsafe impl Sync for Mmap {}

    impl Mmap {
        /// Maps `file` (of size `len`); `None` when the kernel refuses or
        /// the size does not fit an `usize` (fall back to reading).
        pub(super) fn map(file: &File, len: u64) -> Option<Mmap> {
            let len = usize::try_from(len).ok()?;
            if len == 0 {
                // mmap rejects zero-length maps; an empty Bytes works.
                return Some(Mmap {
                    ptr: std::ptr::NonNull::<u8>::dangling().as_ptr(),
                    len: 0,
                });
            }
            let fd = file.as_raw_fd();
            let ret: usize;
            // SAFETY: plain mmap(NULL, len, PROT_READ, MAP_PRIVATE, fd, 0)
            // syscall; rcx/r11 are clobbered by the syscall instruction.
            unsafe {
                std::arch::asm!(
                    "syscall",
                    inlateout("rax") SYS_MMAP => ret,
                    in("rdi") 0usize,
                    in("rsi") len,
                    in("rdx") PROT_READ,
                    in("r10") MAP_PRIVATE,
                    in("r8") fd as usize,
                    in("r9") 0usize,
                    out("rcx") _,
                    out("r11") _,
                    options(nostack),
                );
            }
            // Errors come back as -errno in the last page of the address
            // space, a region no real mapping can occupy.
            if ret > usize::MAX - 4095 {
                return None;
            }
            Some(Mmap {
                ptr: ret as *const u8,
                len,
            })
        }
    }

    impl AsRef<[u8]> for Mmap {
        fn as_ref(&self) -> &[u8] {
            // SAFETY: ptr is valid for len bytes for the mapping's
            // lifetime (or dangling with len == 0, a valid empty slice).
            unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
        }
    }

    impl Drop for Mmap {
        fn drop(&mut self) {
            if self.len == 0 {
                return;
            }
            // SAFETY: unmapping exactly what map() mapped. The return
            // value is ignored — there is no recovery from a failed
            // munmap, and leaking the pages is the safe direction.
            unsafe {
                let _ret: usize;
                std::arch::asm!(
                    "syscall",
                    inlateout("rax") SYS_MUNMAP => _ret,
                    in("rdi") self.ptr as usize,
                    in("rsi") self.len,
                    out("rcx") _,
                    out("r11") _,
                    options(nostack),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{Record, SamplerMask};
    use crate::v2::encode_v2;
    use literace_sim::{Addr, FuncId, Pc, ThreadId};

    fn scratch(name: &str, bytes: &[u8]) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!(
            "literace-mmap-{}-{name}.bin",
            std::process::id()
        ));
        std::fs::write(&path, bytes).unwrap();
        path
    }

    #[test]
    fn map_or_read_round_trips_a_log() {
        let records: Vec<Record> = (0..5000)
            .map(|i| Record::Mem {
                tid: ThreadId::from_index(i % 3),
                pc: Pc::new(FuncId::from_index(i % 5), i),
                addr: Addr::global((i % 7) as u64),
                is_write: i % 2 == 0,
                mask: SamplerMask::bit(0),
            })
            .collect();
        let bytes = encode_v2(&records);
        let path = scratch("roundtrip", &bytes);
        let buf = map_or_read(&path).unwrap();
        assert_eq!(&buf[..], &bytes[..]);
        let stream = crate::RecordStream::spawn_bytes(
            buf,
            crate::stream::DecodeOpts::with_threads(4),
        )
        .unwrap();
        let decoded: Vec<Record> = stream.flat_map(|b| b.unwrap()).collect();
        assert_eq!(decoded, records);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn map_or_read_handles_an_empty_file() {
        let path = scratch("empty", b"");
        let buf = map_or_read(&path).unwrap();
        assert!(buf.is_empty());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = map_or_read("/nonexistent/literace-definitely-missing").unwrap_err();
        assert!(matches!(err, LogError::Io(_)));
    }
}
