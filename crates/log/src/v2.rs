//! The v2 log format: compact, blocked, streamable.
//!
//! The paper treats log volume as a first-order cost (Table 5 reports
//! MB/s of log traffic); v1's fixed-width records pay 26–30 bytes per
//! record regardless of content. The v2 format exploits the structure the
//! stream actually has:
//!
//! * **Per-thread deltas** — a thread's consecutive accesses touch nearby
//!   addresses and program counters, and its logical timestamps are
//!   near-monotonic, so each field is a zigzag varint delta against the
//!   same thread's previous record (state keyed by thread, records still
//!   in the single global order).
//! * **Packed tags** — the record kind, sync-op kind, `is_write` flag and
//!   the two overwhelmingly common sampler masks (`bit 0`, `FULL`) all fit
//!   in one tag byte.
//! * **Length-prefixed blocks** — records are grouped into blocks with a
//!   byte-length and record-count header, and the delta state resets at
//!   each block start, so every block decodes independently: a streaming
//!   reader hands whole blocks downstream without materializing the log,
//!   and corruption is confined to one block.
//!
//! ## Wire format (revisions 3 and 4)
//!
//! ```text
//! file   := magic(4: "LRL\x02") version(1: 0x03 | 0x04) block* footer?
//! block  := payload_len(u32 LE) record_count(u32 LE) sync_count(u32 LE)
//!           head_sum(u32 LE)    payload_sum(u64 LE)  payload
//! footer := sentinel(u32 LE: 0xFFFF_FFFF) total_records(u64 LE)
//!           file_sum(u64 LE)   foot_sum(u32 LE)
//!
//! rev 3 payload := record*            (tag byte + LEB128 delta varints)
//! rev 4 payload := values_len(u32 LE) gv_values tags
//!                  gv_values : group-varint stream (see `crate::gv`) of
//!                              every numeric operand, in record order
//!                  tags      : record_count tag bytes
//! ```
//!
//! The framing (24-byte checksummed frames, footer, salvage rules) is
//! identical across revisions; only the payload coding differs. Revision
//! 4 splits tags from operands so the operand stream decodes with the
//! branch-free wide-load group-varint cursor, and the version byte
//! negotiates the revision: readers accept both, the writer emits
//! [`V2_VERSION`] unless pinned with
//! [`with_revision`](LogWriterV2::with_revision).
//!
//! Revision 3 adds the integrity fields that make salvage decoding sound
//! (see [`crate::salvage`]):
//!
//! * `head_sum` checksums the first 12 frame bytes, so a reader can trust
//!   `payload_len` (framing survives payload corruption) and `sync_count`
//!   (a corrupt block that held **no** synchronization records can be
//!   dropped without breaking happens-before edges).
//! * `payload_sum` checksums the payload, catching silent bit flips that
//!   would otherwise decode into records with corrupted addresses.
//! * The footer — its sentinel can never open a real block, because a
//!   block's `payload_len` is capped far below `0xFFFF_FFFF` — carries the
//!   record total and a whole-stream checksum, letting readers distinguish
//!   a cleanly finalized ([`SealState::Sealed`]) log from a torn one.
//!   A log without a footer still decodes ([`SealState::Unsealed`]): a
//!   dropped writer flushes its open block but only
//!   [`finish`](LogWriterV2::finish) seals.
//!
//! v1 logs start with a record tag byte in `1..=4`, never `b'L'`, so the
//! two formats are distinguishable from the first byte (see
//! [`crate::stream`] for the auto-detecting reader).

use std::io::Write;

use bytes::{BufMut, Bytes, BytesMut};

use literace_sim::{Addr, Pc, SyncOpKind, SyncVar, ThreadId};

use crate::checksum::{checksum32, Checksum};
use crate::error::{LogError, LogResult};
use crate::record::{Record, SamplerMask};
use crate::varint::{get_delta_slice, get_varint_slice, put_delta, put_varint};

/// Magic bytes opening a v2 log file.
pub const V2_MAGIC: [u8; 4] = *b"LRL\x02";

/// Revision 3: checksummed frames + footer, LEB128 delta payloads.
/// Still read; no longer written by default.
pub const V2_REV_DELTA: u8 = 3;

/// Revision 4: same framing, group-varint payloads (operand stream split
/// from tag bytes — see [`crate::gv`]).
pub const V2_REV_GV: u8 = 4;

/// Current versioned format revision, what the writer emits by default
/// (revision 2 lacked the integrity fields and is no longer read).
pub const V2_VERSION: u8 = V2_REV_GV;

/// Whether `rev` is a payload revision this reader decodes.
pub(crate) fn rev_supported(rev: u8) -> bool {
    rev == V2_REV_DELTA || rev == V2_REV_GV
}

/// Default block payload size at which the writer seals a block.
pub const DEFAULT_BLOCK_BYTES: usize = 32 * 1024;

/// Hard cap on a block's declared payload length; a corrupt header cannot
/// make the reader allocate unboundedly.
const MAX_BLOCK_PAYLOAD: u32 = 1 << 30;

/// Size of a block frame header and of the footer, in bytes.
pub(crate) const FRAME_BYTES: usize = 24;

/// `payload_len` value marking the footer frame. Unambiguous: real blocks
/// are capped at [`MAX_BLOCK_PAYLOAD`], far below this.
pub(crate) const FOOTER_SENTINEL: u32 = u32::MAX;

/// Whether a v2 log carries a verified finalization footer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SealState {
    /// The footer was read and verified: the log is complete as written.
    Sealed,
    /// The stream ended without a footer: the writer never finalized
    /// (crash, kill, or drop-without-finish). Blocks up to the end are
    /// still trustworthy — each frame carries its own checksums.
    Unsealed,
    /// Not yet known (the stream has not been read to its end), or not
    /// applicable (v1 logs have no footer).
    #[default]
    Unknown,
}

impl std::fmt::Display for SealState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SealState::Sealed => write!(f, "sealed"),
            SealState::Unsealed => write!(f, "unsealed"),
            SealState::Unknown => write!(f, "unknown"),
        }
    }
}

/// A parsed 24-byte frame: either a block header or the file footer.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Frame {
    /// A block header; the payload follows on the wire.
    Block(BlockFrame),
    /// The finalization footer; nothing may follow it.
    Footer(FooterFrame),
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct BlockFrame {
    pub payload_len: u32,
    pub record_count: u32,
    /// Synchronization records in the block. Covered by `head_sum`, so it
    /// is trustworthy even when the payload is not — the salvage reader's
    /// taint rule depends on this.
    pub sync_count: u32,
    pub payload_sum: u64,
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct FooterFrame {
    pub total_records: u64,
    pub file_sum: u64,
}

/// Parses and integrity-checks a 24-byte frame.
pub(crate) fn parse_frame(frame: &[u8; FRAME_BYTES]) -> LogResult<Frame> {
    let first = u32::from_le_bytes(frame[..4].try_into().unwrap());
    if first == FOOTER_SENTINEL {
        let foot_sum = u32::from_le_bytes(frame[20..24].try_into().unwrap());
        if foot_sum != checksum32(&frame[..20]) {
            return Err(LogError::corrupt("torn footer: bad footer checksum"));
        }
        return Ok(Frame::Footer(FooterFrame {
            total_records: u64::from_le_bytes(frame[4..12].try_into().unwrap()),
            file_sum: u64::from_le_bytes(frame[12..20].try_into().unwrap()),
        }));
    }
    let head_sum = u32::from_le_bytes(frame[12..16].try_into().unwrap());
    if head_sum != checksum32(&frame[..12]) {
        return Err(LogError::corrupt("block header checksum mismatch"));
    }
    if first > MAX_BLOCK_PAYLOAD {
        return Err(LogError::corrupt(format!(
            "block payload length {first} exceeds the {MAX_BLOCK_PAYLOAD}-byte cap"
        )));
    }
    Ok(Frame::Block(BlockFrame {
        payload_len: first,
        record_count: u32::from_le_bytes(frame[4..8].try_into().unwrap()),
        sync_count: u32::from_le_bytes(frame[8..12].try_into().unwrap()),
        payload_sum: u64::from_le_bytes(frame[16..24].try_into().unwrap()),
    }))
}

/// Reads the total record count a sealed v2 log declares in its footer,
/// without decoding anything: checks the magic and version, parses the
/// trailing 24-byte frame, and verifies the footer's whole-stream checksum
/// against the body bytes (everything between the 5-byte header and the
/// footer). Returns `None` for v1 logs, unsealed v2 logs, torn footers,
/// bodies that fail the stream checksum, or files too short to hold a
/// footer — this is a progress hint, so every failure degrades to
/// "unknown" rather than an error.
pub fn peek_sealed_total(path: &std::path::Path) -> Option<u64> {
    use std::io::{Read, Seek, SeekFrom};
    let mut f = std::fs::File::open(path).ok()?;
    let mut header = [0u8; 5];
    f.read_exact(&mut header).ok()?;
    if header[..4] != V2_MAGIC || !rev_supported(header[4]) {
        return None;
    }
    let len = f.seek(SeekFrom::End(0)).ok()?;
    // Header (magic + version) plus at least the footer frame.
    if len < (5 + FRAME_BYTES) as u64 {
        return None;
    }
    f.seek(SeekFrom::Start(len - FRAME_BYTES as u64)).ok()?;
    let mut frame = [0u8; FRAME_BYTES];
    f.read_exact(&mut frame).ok()?;
    let foot = match parse_frame(&frame) {
        Ok(Frame::Footer(foot)) => foot,
        _ => return None,
    };
    // The footer's own checksum (`foot_sum`) is validated by `parse_frame`,
    // but `total_records` is only trustworthy if the footer belongs to this
    // body: stream the bytes between header and footer through the running
    // checksum and require a `file_sum` match, exactly as the full reader
    // does. A progress heartbeat fed a stale or spliced footer would
    // otherwise report garbage percentages for the whole run.
    f.seek(SeekFrom::Start(5)).ok()?;
    let mut body_sum = Checksum::new();
    let mut remaining = len - 5 - FRAME_BYTES as u64;
    let mut buf = [0u8; 64 * 1024];
    while remaining > 0 {
        let want = buf.len().min(remaining as usize);
        f.read_exact(&mut buf[..want]).ok()?;
        body_sum.update(&buf[..want]);
        remaining -= want as u64;
    }
    if body_sum.finish() != foot.file_sum {
        return None;
    }
    Some(foot.total_records)
}

/// Builds a checksummed block frame for `payload`.
pub(crate) fn make_block_frame(
    payload: &[u8],
    record_count: u32,
    sync_count: u32,
) -> [u8; FRAME_BYTES] {
    let mut frame = [0u8; FRAME_BYTES];
    frame[..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    frame[4..8].copy_from_slice(&record_count.to_le_bytes());
    frame[8..12].copy_from_slice(&sync_count.to_le_bytes());
    let head_sum = checksum32(&frame[..12]);
    frame[12..16].copy_from_slice(&head_sum.to_le_bytes());
    frame[16..24].copy_from_slice(&crate::checksum::checksum(payload).to_le_bytes());
    frame
}

/// Builds the finalization footer.
pub(crate) fn make_footer(total_records: u64, file_sum: u64) -> [u8; FRAME_BYTES] {
    let mut frame = [0u8; FRAME_BYTES];
    frame[..4].copy_from_slice(&FOOTER_SENTINEL.to_le_bytes());
    frame[4..12].copy_from_slice(&total_records.to_le_bytes());
    frame[12..20].copy_from_slice(&file_sum.to_le_bytes());
    let foot_sum = checksum32(&frame[..20]);
    frame[20..24].copy_from_slice(&foot_sum.to_le_bytes());
    frame
}

const KIND_SYNC: u8 = 1;
const KIND_MEM: u8 = 2;
const KIND_BEGIN: u8 = 3;
const KIND_END: u8 = 4;

/// Mem tag bit: the access is a write.
const MEM_WRITE_BIT: u8 = 1 << 3;
/// Mem tag mask-mode field (bits 4–5): 0 = explicit varint follows,
/// 1 = `SamplerMask::bit(0)`, 2 = `SamplerMask::FULL`.
const MEM_MASK_SHIFT: u8 = 4;
const MEM_MASK_EXPLICIT: u8 = 0;
const MEM_MASK_BIT0: u8 = 1;
const MEM_MASK_FULL: u8 = 2;

fn sync_kind_to_u8(kind: SyncOpKind) -> u8 {
    match kind {
        SyncOpKind::LockAcquire => 0,
        SyncOpKind::LockRelease => 1,
        SyncOpKind::Notify => 2,
        SyncOpKind::WaitReturn => 3,
        SyncOpKind::Reset => 4,
        SyncOpKind::Fork => 5,
        SyncOpKind::ThreadStart => 6,
        SyncOpKind::ThreadExit => 7,
        SyncOpKind::Join => 8,
        SyncOpKind::AtomicRmw => 9,
        SyncOpKind::AllocPage => 10,
        SyncOpKind::SemRelease => 11,
        SyncOpKind::SemAcquire => 12,
        SyncOpKind::BarrierArrive => 13,
        SyncOpKind::BarrierDepart => 14,
    }
}

fn sync_kind_from_u8(v: u8) -> LogResult<SyncOpKind> {
    Ok(match v {
        0 => SyncOpKind::LockAcquire,
        1 => SyncOpKind::LockRelease,
        2 => SyncOpKind::Notify,
        3 => SyncOpKind::WaitReturn,
        4 => SyncOpKind::Reset,
        5 => SyncOpKind::Fork,
        6 => SyncOpKind::ThreadStart,
        7 => SyncOpKind::ThreadExit,
        8 => SyncOpKind::Join,
        9 => SyncOpKind::AtomicRmw,
        10 => SyncOpKind::AllocPage,
        11 => SyncOpKind::SemRelease,
        12 => SyncOpKind::SemAcquire,
        13 => SyncOpKind::BarrierArrive,
        14 => SyncOpKind::BarrierDepart,
        other => return Err(LogError::corrupt(format!("bad sync kind {other}"))),
    })
}

/// Per-thread delta context. Reset at every block boundary so blocks
/// decode independently.
#[derive(Debug, Default, Clone, Copy)]
struct ThreadDeltas {
    last_pc: u64,
    last_addr: u64,
    last_var: u64,
    last_ts: u64,
}

/// Thread ids below this index live in the dense table. Real streams use
/// small dense ids (simulator threads), so practically every lookup is one
/// bounds check and an indexed load; anything larger falls back to the map.
const DENSE_TIDS: usize = 1024;

/// Delta state for one block, encoder and decoder side alike.
///
/// Keyed by thread id. A `HashMap` here put a SipHash probe on every
/// record of the decode hot loop; the dense `Vec` front removes it.
#[derive(Debug, Default)]
pub(crate) struct BlockState {
    dense: Vec<ThreadDeltas>,
    sparse: std::collections::HashMap<u32, ThreadDeltas>,
}

impl BlockState {
    #[inline]
    fn thread(&mut self, tid: u32) -> &mut ThreadDeltas {
        let i = tid as usize;
        if i < DENSE_TIDS {
            if i >= self.dense.len() {
                self.dense.resize(i + 1, ThreadDeltas::default());
            }
            &mut self.dense[i]
        } else {
            self.sparse.entry(tid).or_default()
        }
    }

    /// Forgets the delta state (blocks decode independently) while keeping
    /// the allocated tables for the next block.
    fn reset(&mut self) {
        self.dense.clear();
        self.sparse.clear();
    }
}

/// Running count of delta fields emitted and how many spilled past one
/// varint byte — the fallback rate of the delta scheme. Accumulated
/// unconditionally (two integer adds per field) and published to telemetry
/// only at block-flush time, keyed off the runtime flag there.
#[derive(Debug, Default, Clone, Copy)]
struct DeltaCount {
    total: u64,
    multibyte: u64,
}

impl DeltaCount {
    /// `put_delta` plus fallback accounting.
    #[inline]
    fn put(&mut self, buf: &mut BytesMut, last: u64, v: u64) {
        let before = buf.len();
        put_delta(buf, last, v);
        self.total += 1;
        self.multibyte += u64::from(buf.len() - before > 1);
    }

    /// Group-varint delta emit plus the same fallback accounting
    /// ("multibyte" = the lane spilled past one stored byte).
    #[inline]
    fn put_gv(&mut self, enc: &mut crate::gv::GvEncoder, last: u64, v: u64) {
        let d = crate::varint::zigzag(v.wrapping_sub(last) as i64);
        enc.put(d);
        self.total += 1;
        self.multibyte += u64::from(d > 0xFF);
    }

    fn publish(&mut self) {
        if literace_telemetry::enabled() && self.total > 0 {
            let m = literace_telemetry::metrics();
            m.log_encode_v2_deltas.add(self.total);
            m.log_encode_v2_deltas_multibyte.add(self.multibyte);
        }
        *self = DeltaCount::default();
    }
}

/// Per-revision block payload encoder: rev 3 interleaves tag bytes and
/// LEB128 varints in one buffer; rev 4 splits the numeric operands into a
/// group-varint stream with the tag bytes trailing.
#[derive(Debug)]
pub(crate) enum BlockEnc {
    Delta {
        payload: BytesMut,
    },
    Gv {
        values: crate::gv::GvEncoder,
        tags: BytesMut,
    },
}

impl BlockEnc {
    pub(crate) fn for_rev(rev: u8) -> BlockEnc {
        debug_assert!(rev_supported(rev));
        if rev == V2_REV_GV {
            BlockEnc::Gv {
                values: crate::gv::GvEncoder::new(),
                tags: BytesMut::new(),
            }
        } else {
            BlockEnc::Delta {
                payload: BytesMut::new(),
            }
        }
    }

    /// Encodes `record`, updating the block's delta state.
    fn push(&mut self, state: &mut BlockState, record: &Record, deltas: &mut DeltaCount) {
        match self {
            BlockEnc::Delta { payload } => {
                encode_into_block(state, record, payload, deltas)
            }
            BlockEnc::Gv { values, tags } => {
                encode_into_block_gv(state, record, values, tags, deltas)
            }
        }
    }

    /// Exact payload size if the block were sealed now.
    fn payload_len(&self) -> usize {
        match self {
            BlockEnc::Delta { payload } => payload.len(),
            // 4-byte values_len prefix + padded value stream + tag bytes.
            BlockEnc::Gv { values, tags } => 4 + values.encoded_len() + tags.len(),
        }
    }

    /// Assembles and returns the payload, leaving the encoder empty.
    fn take_payload(&mut self) -> BytesMut {
        match self {
            BlockEnc::Delta { payload } => std::mem::take(payload),
            BlockEnc::Gv { values, tags } => {
                let vals = values.finish();
                let mut out = BytesMut::with_capacity(4 + vals.len() + tags.len());
                out.extend_from_slice(&(vals.len() as u32).to_le_bytes());
                out.extend_from_slice(&vals);
                out.extend_from_slice(tags);
                tags.clear();
                out
            }
        }
    }

    fn clear(&mut self) {
        match self {
            BlockEnc::Delta { payload } => payload.clear(),
            BlockEnc::Gv { values, tags } => {
                values.clear();
                tags.clear();
            }
        }
    }
}

/// Rev-4 sibling of [`encode_into_block`]: the tag byte lands in `tags`,
/// every numeric operand in the group-varint `values` stream.
fn encode_into_block_gv(
    state: &mut BlockState,
    record: &Record,
    values: &mut crate::gv::GvEncoder,
    tags: &mut BytesMut,
    deltas: &mut DeltaCount,
) {
    match *record {
        Record::Sync {
            tid,
            pc,
            kind,
            var,
            timestamp,
        } => {
            tags.put_u8(KIND_SYNC | (sync_kind_to_u8(kind) << 3));
            let tid = tid.index() as u32;
            values.put(u64::from(tid));
            let t = state.thread(tid);
            deltas.put_gv(values, t.last_pc, pc.0);
            deltas.put_gv(values, t.last_var, var.0);
            deltas.put_gv(values, t.last_ts, timestamp);
            t.last_pc = pc.0;
            t.last_var = var.0;
            t.last_ts = timestamp;
        }
        Record::Mem {
            tid,
            pc,
            addr,
            is_write,
            mask,
        } => {
            let mask_mode = if mask == SamplerMask::bit(0) {
                MEM_MASK_BIT0
            } else if mask == SamplerMask::FULL {
                MEM_MASK_FULL
            } else {
                MEM_MASK_EXPLICIT
            };
            let mut tag = KIND_MEM | (mask_mode << MEM_MASK_SHIFT);
            if is_write {
                tag |= MEM_WRITE_BIT;
            }
            tags.put_u8(tag);
            let tid = tid.index() as u32;
            values.put(u64::from(tid));
            let t = state.thread(tid);
            deltas.put_gv(values, t.last_pc, pc.0);
            deltas.put_gv(values, t.last_addr, addr.raw());
            t.last_pc = pc.0;
            t.last_addr = addr.raw();
            if mask_mode == MEM_MASK_EXPLICIT {
                values.put(u64::from(mask.0));
            }
        }
        Record::ThreadBegin { tid } => {
            tags.put_u8(KIND_BEGIN);
            values.put(tid.index() as u64);
        }
        Record::ThreadEnd { tid } => {
            tags.put_u8(KIND_END);
            values.put(tid.index() as u64);
        }
    }
}

/// Rev-4 sibling of [`decode_from_block`]: `tag` was read from the tag
/// region, operands stream out of the group-varint cursor.
#[inline]
fn decode_from_block_gv(
    state: &mut BlockState,
    tag: u8,
    values: &mut crate::gv::GvCursor<'_>,
) -> LogResult<Record> {
    let kind = tag & 0b111;
    match kind {
        KIND_SYNC => {
            if tag & 0x80 != 0 {
                return Err(LogError::corrupt(format!("bad sync tag {tag:#04x}")));
            }
            let sync_kind = sync_kind_from_u8((tag >> 3) & 0xF)?;
            let tid = gv_tid(values)?;
            let t = state.thread(tid);
            let pc = gv_delta(values, t.last_pc)?;
            let var = gv_delta(values, t.last_var)?;
            let ts = gv_delta(values, t.last_ts)?;
            t.last_pc = pc;
            t.last_var = var;
            t.last_ts = ts;
            Ok(Record::Sync {
                tid: ThreadId::from_index(tid as usize),
                pc: Pc(pc),
                kind: sync_kind,
                var: SyncVar(var),
                timestamp: ts,
            })
        }
        KIND_MEM => {
            if tag & 0xC0 != 0 {
                return Err(LogError::corrupt(format!("bad mem tag {tag:#04x}")));
            }
            let mask_mode = (tag >> MEM_MASK_SHIFT) & 0b11;
            let tid = gv_tid(values)?;
            let t = state.thread(tid);
            let pc = gv_delta(values, t.last_pc)?;
            let addr = gv_delta(values, t.last_addr)?;
            t.last_pc = pc;
            t.last_addr = addr;
            let mask = match mask_mode {
                MEM_MASK_BIT0 => SamplerMask::bit(0),
                MEM_MASK_FULL => SamplerMask::FULL,
                MEM_MASK_EXPLICIT => {
                    let raw = values.next()?;
                    let raw = u32::try_from(raw).map_err(|_| {
                        LogError::corrupt(format!("sampler mask {raw:#x} exceeds 32 bits"))
                    })?;
                    SamplerMask(raw)
                }
                other => {
                    return Err(LogError::corrupt(format!("bad mem mask mode {other}")))
                }
            };
            Ok(Record::Mem {
                tid: ThreadId::from_index(tid as usize),
                pc: Pc(pc),
                addr: Addr(addr),
                is_write: tag & MEM_WRITE_BIT != 0,
                mask,
            })
        }
        KIND_BEGIN | KIND_END => {
            if tag & !0b111 != 0 {
                return Err(LogError::corrupt(format!("bad marker tag {tag:#04x}")));
            }
            let tid = ThreadId::from_index(gv_tid(values)? as usize);
            Ok(if kind == KIND_BEGIN {
                Record::ThreadBegin { tid }
            } else {
                Record::ThreadEnd { tid }
            })
        }
        other => Err(LogError::corrupt(format!("unknown v2 record kind {other}"))),
    }
}

#[inline]
fn gv_tid(values: &mut crate::gv::GvCursor<'_>) -> LogResult<u32> {
    let raw = values.next()?;
    u32::try_from(raw)
        .map_err(|_| LogError::corrupt(format!("thread id {raw} exceeds 32 bits")))
}

#[inline]
fn gv_delta(values: &mut crate::gv::GvCursor<'_>, last: u64) -> LogResult<u64> {
    Ok(last.wrapping_add(crate::varint::unzigzag(values.next()?) as u64))
}

/// Encodes `record` into a block payload, updating the block's delta state.
fn encode_into_block(
    state: &mut BlockState,
    record: &Record,
    buf: &mut BytesMut,
    deltas: &mut DeltaCount,
) {
    match *record {
        Record::Sync {
            tid,
            pc,
            kind,
            var,
            timestamp,
        } => {
            buf.put_u8(KIND_SYNC | (sync_kind_to_u8(kind) << 3));
            let tid = tid.index() as u32;
            put_varint(buf, u64::from(tid));
            let t = state.thread(tid);
            deltas.put(buf, t.last_pc, pc.0);
            deltas.put(buf, t.last_var, var.0);
            deltas.put(buf, t.last_ts, timestamp);
            t.last_pc = pc.0;
            t.last_var = var.0;
            t.last_ts = timestamp;
        }
        Record::Mem {
            tid,
            pc,
            addr,
            is_write,
            mask,
        } => {
            let mask_mode = if mask == SamplerMask::bit(0) {
                MEM_MASK_BIT0
            } else if mask == SamplerMask::FULL {
                MEM_MASK_FULL
            } else {
                MEM_MASK_EXPLICIT
            };
            let mut tag = KIND_MEM | (mask_mode << MEM_MASK_SHIFT);
            if is_write {
                tag |= MEM_WRITE_BIT;
            }
            buf.put_u8(tag);
            let tid = tid.index() as u32;
            put_varint(buf, u64::from(tid));
            let t = state.thread(tid);
            deltas.put(buf, t.last_pc, pc.0);
            deltas.put(buf, t.last_addr, addr.raw());
            t.last_pc = pc.0;
            t.last_addr = addr.raw();
            if mask_mode == MEM_MASK_EXPLICIT {
                put_varint(buf, u64::from(mask.0));
            }
        }
        Record::ThreadBegin { tid } => {
            buf.put_u8(KIND_BEGIN);
            put_varint(buf, tid.index() as u64);
        }
        Record::ThreadEnd { tid } => {
            buf.put_u8(KIND_END);
            put_varint(buf, tid.index() as u64);
        }
    }
}

/// Decodes one record from a block payload, updating the delta state.
/// Specialized to slices: block payloads are fully materialized, and the
/// varint fast paths need direct byte access.
fn decode_from_block(state: &mut BlockState, buf: &mut &[u8]) -> LogResult<Record> {
    let Some((&tag, rest)) = buf.split_first() else {
        return Err(LogError::corrupt("truncated block: record expected"));
    };
    *buf = rest;
    let kind = tag & 0b111;
    match kind {
        KIND_SYNC => {
            if tag & 0x80 != 0 {
                return Err(LogError::corrupt(format!("bad sync tag {tag:#04x}")));
            }
            let sync_kind = sync_kind_from_u8((tag >> 3) & 0xF)?;
            let tid = get_tid(buf)?;
            let t = state.thread(tid);
            let pc = get_delta_slice(buf, t.last_pc)?;
            let var = get_delta_slice(buf, t.last_var)?;
            let ts = get_delta_slice(buf, t.last_ts)?;
            t.last_pc = pc;
            t.last_var = var;
            t.last_ts = ts;
            Ok(Record::Sync {
                tid: ThreadId::from_index(tid as usize),
                pc: Pc(pc),
                kind: sync_kind,
                var: SyncVar(var),
                timestamp: ts,
            })
        }
        KIND_MEM => {
            if tag & 0xC0 != 0 {
                return Err(LogError::corrupt(format!("bad mem tag {tag:#04x}")));
            }
            let mask_mode = (tag >> MEM_MASK_SHIFT) & 0b11;
            let tid = get_tid(buf)?;
            let t = state.thread(tid);
            let pc = get_delta_slice(buf, t.last_pc)?;
            let addr = get_delta_slice(buf, t.last_addr)?;
            t.last_pc = pc;
            t.last_addr = addr;
            let mask = match mask_mode {
                MEM_MASK_BIT0 => SamplerMask::bit(0),
                MEM_MASK_FULL => SamplerMask::FULL,
                MEM_MASK_EXPLICIT => {
                    let raw = get_varint_slice(buf)?;
                    let raw = u32::try_from(raw).map_err(|_| {
                        LogError::corrupt(format!("sampler mask {raw:#x} exceeds 32 bits"))
                    })?;
                    SamplerMask(raw)
                }
                other => {
                    return Err(LogError::corrupt(format!("bad mem mask mode {other}")))
                }
            };
            Ok(Record::Mem {
                tid: ThreadId::from_index(tid as usize),
                pc: Pc(pc),
                addr: Addr(addr),
                is_write: tag & MEM_WRITE_BIT != 0,
                mask,
            })
        }
        KIND_BEGIN | KIND_END => {
            if tag & !0b111 != 0 {
                return Err(LogError::corrupt(format!("bad marker tag {tag:#04x}")));
            }
            let tid = ThreadId::from_index(get_tid(buf)? as usize);
            Ok(if kind == KIND_BEGIN {
                Record::ThreadBegin { tid }
            } else {
                Record::ThreadEnd { tid }
            })
        }
        other => Err(LogError::corrupt(format!("unknown v2 record kind {other}"))),
    }
}

fn get_tid(buf: &mut &[u8]) -> LogResult<u32> {
    let raw = get_varint_slice(buf)?;
    u32::try_from(raw)
        .map_err(|_| LogError::corrupt(format!("thread id {raw} exceeds 32 bits")))
}

/// Encodes `records` as one self-contained block (checksummed frame +
/// payload) in the [`V2_VERSION`] payload revision.
pub fn encode_block<'a>(
    records: impl IntoIterator<Item = &'a Record>,
    out: &mut BytesMut,
) -> usize {
    encode_block_rev(records, out, V2_VERSION)
}

/// [`encode_block`] pinned to payload revision `rev` (3 or 4).
pub fn encode_block_rev<'a>(
    records: impl IntoIterator<Item = &'a Record>,
    out: &mut BytesMut,
    rev: u8,
) -> usize {
    let mut state = BlockState::default();
    let mut deltas = DeltaCount::default();
    let mut enc = BlockEnc::for_rev(rev);
    let mut count: u32 = 0;
    let mut syncs: u32 = 0;
    for r in records {
        enc.push(&mut state, r, &mut deltas);
        count += 1;
        syncs += u32::from(matches!(r, Record::Sync { .. }));
    }
    deltas.publish();
    let payload = enc.take_payload();
    if literace_telemetry::enabled() && count > 0 {
        let m = literace_telemetry::metrics();
        m.log_encode_v2_records.add(u64::from(count));
        m.log_encode_v2_bytes.add((FRAME_BYTES + payload.len()) as u64);
        m.log_encode_v2_blocks.add(1);
    }
    out.extend_from_slice(&make_block_frame(&payload, count, syncs));
    out.extend_from_slice(&payload);
    count as usize
}

/// Decodes one revision-`rev` block payload declared to hold `count`
/// records.
///
/// # Errors
///
/// Returns [`LogError::Corrupt`] when the payload truncates mid-record,
/// holds malformed varints or tags, or has trailing bytes after the
/// declared record count.
pub fn decode_block(payload: &[u8], count: u32, rev: u8) -> LogResult<Vec<Record>> {
    decode_block_with(&mut BlockState::default(), payload, count, rev)
}

/// [`decode_block`] against caller-owned delta state, so a block-at-a-time
/// reader ([`V2Blocks`]) reuses the state tables instead of reallocating
/// them per block. The state is reset on entry.
pub(crate) fn decode_block_with(
    state: &mut BlockState,
    payload: &[u8],
    count: u32,
    rev: u8,
) -> LogResult<Vec<Record>> {
    if rev == V2_REV_GV {
        return decode_block_gv(state, payload, count);
    }
    state.reset();
    let mut slice = payload;
    // Every record is at least two bytes (tag + tid varint), so a corrupt
    // count cannot force an allocation beyond half the payload.
    let mut out = Vec::with_capacity((count as usize).min(payload.len() / 2 + 1));
    for _ in 0..count {
        out.push(decode_from_block(state, &mut slice)?);
    }
    if !slice.is_empty() {
        return Err(LogError::corrupt(format!(
            "block has {} trailing bytes after {count} records",
            slice.len()
        )));
    }
    Ok(out)
}

/// Rev-4 block decode: split the payload into the operand stream and the
/// tag region, then drive the group-varint cursor one record at a time.
fn decode_block_gv(
    state: &mut BlockState,
    payload: &[u8],
    count: u32,
) -> LogResult<Vec<Record>> {
    state.reset();
    let Some(len_bytes) = payload.get(..4) else {
        return Err(LogError::corrupt("rev-4 block shorter than its length prefix"));
    };
    let values_len = u32::from_le_bytes(len_bytes.try_into().unwrap()) as usize;
    let Some(values_region) = payload.get(4..4 + values_len) else {
        return Err(LogError::corrupt(format!(
            "rev-4 block declares {values_len} operand bytes but holds {}",
            payload.len().saturating_sub(4)
        )));
    };
    let tags = &payload[4 + values_len..];
    // One tag byte per record, exactly: the tag region length *is* the
    // trailing-bytes check for revision 4.
    if tags.len() != count as usize {
        return Err(LogError::corrupt(format!(
            "rev-4 block has {} tag bytes for {count} records",
            tags.len()
        )));
    }
    let mut values = crate::gv::GvCursor::new(values_region);
    let mut out = Vec::with_capacity(count as usize);
    for &tag in tags {
        out.push(decode_from_block_gv(state, tag, &mut values)?);
    }
    if !values.exhausted_except_padding() {
        return Err(LogError::corrupt(format!(
            "rev-4 block has trailing operand bytes after {count} records"
        )));
    }
    Ok(out)
}

/// Writes records as a v2 log: header once, then size-bounded blocks.
///
/// Buffered state is flushed on [`finish`](LogWriterV2::finish) (which
/// also reports errors) or, best-effort, on drop — a dropped writer never
/// silently truncates whole blocks, but only `finish` surfaces failures.
#[derive(Debug)]
pub struct LogWriterV2<W: Write> {
    sink: Option<W>,
    /// Payload revision written into the header and used per block.
    rev: u8,
    /// Encoder for the open block's payload.
    enc: BlockEnc,
    state: BlockState,
    deltas: DeltaCount,
    block_records: u32,
    /// Sync records in the open block (written into the frame so salvage
    /// readers know whether a corrupt block can be dropped safely).
    block_syncs: u32,
    block_bytes: usize,
    records_written: u64,
    bytes_written: u64,
    header_written: bool,
    /// Running checksum over every byte after the 5-byte file header,
    /// finalized into the footer.
    file_sum: Checksum,
}

impl<W: Write> LogWriterV2<W> {
    /// Creates a v2 writer over `sink` with the default block size and
    /// the current payload revision ([`V2_VERSION`]).
    pub fn new(sink: W) -> LogWriterV2<W> {
        LogWriterV2::with_block_bytes(sink, DEFAULT_BLOCK_BYTES)
    }

    /// Creates a v2 writer pinned to payload revision `rev` (3 or 4) —
    /// for compatibility tooling; new logs should take the default.
    ///
    /// # Panics
    ///
    /// Panics when `rev` is not a writable revision.
    pub fn with_revision(sink: W, rev: u8) -> LogWriterV2<W> {
        LogWriterV2::with_revision_and_block_bytes(sink, rev, DEFAULT_BLOCK_BYTES)
    }

    /// Creates a v2 writer pinned to payload revision `rev` sealing blocks
    /// at `block_bytes` of payload (compatibility and test tooling).
    ///
    /// # Panics
    ///
    /// Panics when `rev` is not a writable revision.
    pub fn with_revision_and_block_bytes(
        sink: W,
        rev: u8,
        block_bytes: usize,
    ) -> LogWriterV2<W> {
        assert!(rev_supported(rev), "unwritable v2 revision {rev}");
        let mut w = LogWriterV2::with_block_bytes(sink, block_bytes);
        w.rev = rev;
        w.enc = BlockEnc::for_rev(rev);
        w
    }

    /// Creates a v2 writer sealing blocks at `block_bytes` of payload.
    pub fn with_block_bytes(sink: W, block_bytes: usize) -> LogWriterV2<W> {
        LogWriterV2 {
            sink: Some(sink),
            rev: V2_VERSION,
            enc: BlockEnc::for_rev(V2_VERSION),
            state: BlockState::default(),
            deltas: DeltaCount::default(),
            block_records: 0,
            block_syncs: 0,
            block_bytes: block_bytes.max(1),
            records_written: 0,
            bytes_written: 0,
            header_written: false,
            file_sum: Checksum::new(),
        }
    }

    /// Appends one record, sealing a block when the payload bound is hit.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the sink when a block flushes, and
    /// returns [`LogError::WriterFinished`] after
    /// [`finish`](LogWriterV2::finish).
    pub fn write_record(&mut self, record: &Record) -> LogResult<()> {
        if self.sink.is_none() {
            return Err(LogError::WriterFinished);
        }
        self.enc.push(&mut self.state, record, &mut self.deltas);
        self.block_records += 1;
        self.block_syncs += u32::from(matches!(record, Record::Sync { .. }));
        self.records_written += 1;
        if self.enc.payload_len() >= self.block_bytes {
            self.flush_block()?;
        }
        Ok(())
    }

    fn flush_block(&mut self) -> LogResult<()> {
        let sink = self.sink.as_mut().ok_or(LogError::WriterFinished)?;
        let mut emitted = 0u64;
        if !self.header_written {
            sink.write_all(&V2_MAGIC)?;
            sink.write_all(&[self.rev])?;
            self.bytes_written += V2_MAGIC.len() as u64 + 1;
            emitted += V2_MAGIC.len() as u64 + 1;
            self.header_written = true;
        }
        if self.block_records == 0 {
            if literace_telemetry::enabled() && emitted > 0 {
                literace_telemetry::metrics().log_encode_v2_bytes.add(emitted);
            }
            return Ok(());
        }
        let payload = self.enc.take_payload();
        let frame = make_block_frame(&payload, self.block_records, self.block_syncs);
        sink.write_all(&frame)?;
        sink.write_all(&payload)?;
        self.file_sum.update(&frame);
        self.file_sum.update(&payload);
        self.bytes_written += (FRAME_BYTES + payload.len()) as u64;
        emitted += (FRAME_BYTES + payload.len()) as u64;
        if literace_telemetry::enabled() {
            let m = literace_telemetry::metrics();
            m.log_encode_v2_records.add(u64::from(self.block_records));
            m.log_encode_v2_bytes.add(emitted);
            m.log_encode_v2_blocks.add(1);
        }
        self.deltas.publish();
        self.enc.clear();
        self.block_records = 0;
        self.block_syncs = 0;
        // Blocks decode independently, so the delta state restarts (the
        // tables keep their capacity).
        self.state.reset();
        Ok(())
    }

    /// Seals the open block, writes the finalization footer, flushes, and
    /// returns the sink. A log finished here reads back as
    /// [`SealState::Sealed`].
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the final flush, and returns
    /// [`LogError::WriterFinished`] when called twice.
    pub fn finish(&mut self) -> LogResult<W> {
        self.flush_block()?;
        let footer = make_footer(self.records_written, self.file_sum.finish());
        let sink = self.sink.as_mut().ok_or(LogError::WriterFinished)?;
        sink.write_all(&footer)?;
        self.bytes_written += FRAME_BYTES as u64;
        if literace_telemetry::enabled() {
            literace_telemetry::metrics()
                .log_encode_v2_bytes
                .add(FRAME_BYTES as u64);
        }
        let mut sink = self.sink.take().ok_or(LogError::WriterFinished)?;
        sink.flush()?;
        Ok(sink)
    }

    /// Records written so far.
    pub fn records_written(&self) -> u64 {
        self.records_written
    }

    /// Bytes the log will occupy if finished now: bytes already emitted,
    /// plus the open block's buffered payload (counted as if sealed), the
    /// header, and the footer.
    pub fn bytes_written(&self) -> u64 {
        let pending_header = if self.header_written { 0 } else { 5 };
        let pending_block = if self.block_records > 0 {
            (FRAME_BYTES + self.enc.payload_len()) as u64
        } else {
            0
        };
        let pending_footer = if self.sink.is_some() {
            FRAME_BYTES as u64
        } else {
            0
        };
        self.bytes_written + pending_header + pending_block + pending_footer
    }
}

impl<W: Write> Drop for LogWriterV2<W> {
    /// Best-effort flush so a dropped writer cannot silently lose the open
    /// block. Errors are swallowed here — call `finish` to observe them.
    fn drop(&mut self) {
        if self.sink.is_some() {
            let _ = self.flush_block();
            if let Some(sink) = self.sink.as_mut() {
                let _ = sink.flush();
            }
        }
    }
}

/// Iterator over the blocks of a v2 stream **after** the 5-byte header has
/// been consumed (the auto-detecting opener in [`crate::stream`] does
/// that). Yields decoded blocks; fuses after the first error.
#[derive(Debug)]
pub struct V2Blocks<R> {
    source: R,
    /// Payload revision from the version byte.
    rev: u8,
    done: bool,
    /// Reusable payload buffer: one allocation amortized over the stream
    /// instead of one `vec![0; payload_len]` per block.
    payload: Vec<u8>,
    /// Reusable per-block delta state (reset, not reallocated, per block).
    state: BlockState,
    /// Running checksum over every consumed frame + payload byte, checked
    /// against the footer.
    file_sum: Checksum,
    /// Records decoded so far, checked against the footer's total.
    records_seen: u64,
    seal: SealState,
}

impl<R: std::io::Read> V2Blocks<R> {
    /// Creates a block iterator over a source positioned at the first
    /// block (header already consumed), decoding payload revision `rev`.
    pub fn after_header(source: R, rev: u8) -> V2Blocks<R> {
        V2Blocks {
            source,
            rev,
            done: false,
            payload: Vec::new(),
            state: BlockState::default(),
            file_sum: Checksum::new(),
            records_seen: 0,
            seal: SealState::Unknown,
        }
    }

    /// The payload revision this iterator decodes.
    pub fn revision(&self) -> u8 {
        self.rev
    }

    /// Whether the stream carried a verified finalization footer. Remains
    /// [`SealState::Unknown`] until the iterator has been driven to its
    /// end (or to an error).
    pub fn seal_state(&self) -> SealState {
        self.seal
    }

    /// Opens a stream that must be a v2 log: reads and validates the
    /// 5-byte header before yielding blocks. Use
    /// [`RecordBlocks`](crate::RecordBlocks) to auto-detect the format
    /// instead (it falls back to v1 on a missing magic).
    ///
    /// # Errors
    ///
    /// Returns [`LogError::BadMagic`] when the stream does not start with
    /// [`V2_MAGIC`], [`LogError::UnsupportedVersion`] for an unknown
    /// version byte, and [`LogError::Io`] on read failure.
    pub fn open(mut source: R) -> LogResult<V2Blocks<R>> {
        Self::open_inner(&mut source)
            .map(|rev| V2Blocks::after_header(source, rev))
            .inspect_err(crate::error::count_error)
    }

    fn open_inner(source: &mut R) -> LogResult<u8> {
        let mut header = [0u8; 5];
        let got = read_exact_or_eof(source, &mut header)?;
        if got < 4 || header[..4] != V2_MAGIC {
            return Err(LogError::BadMagic {
                found: header[..got.min(4)].to_vec(),
            });
        }
        if got < 5 {
            return Err(LogError::corrupt("v2 header truncated before version byte"));
        }
        if !rev_supported(header[4]) {
            return Err(LogError::UnsupportedVersion {
                found: header[4],
                supported: V2_VERSION,
            });
        }
        Ok(header[4])
    }

    fn read_block(&mut self) -> LogResult<Option<Vec<Record>>> {
        let start = literace_telemetry::enabled().then(std::time::Instant::now);
        let mut frame = [0u8; FRAME_BYTES];
        match read_exact_or_eof(&mut self.source, &mut frame)? {
            0 => {
                self.seal = SealState::Unsealed;
                return Ok(None);
            }
            FRAME_BYTES => {}
            n => {
                return Err(LogError::corrupt(format!(
                    "truncated block header: {n} of {FRAME_BYTES} bytes"
                )))
            }
        }
        let head = match parse_frame(&frame)? {
            Frame::Footer(foot) => {
                if foot.total_records != self.records_seen {
                    return Err(LogError::corrupt(format!(
                        "footer record count mismatch: footer says {}, decoded {}",
                        foot.total_records, self.records_seen
                    )));
                }
                if foot.file_sum != self.file_sum.finish() {
                    return Err(LogError::corrupt("footer stream checksum mismatch"));
                }
                let mut trailing = [0u8; 1];
                if read_exact_or_eof(&mut self.source, &mut trailing)? != 0 {
                    return Err(LogError::corrupt("trailing bytes after footer"));
                }
                self.seal = SealState::Sealed;
                return Ok(None);
            }
            Frame::Block(head) => head,
        };
        self.payload.clear();
        self.payload.resize(head.payload_len as usize, 0);
        let got = read_exact_or_eof(&mut self.source, &mut self.payload)?;
        if got != self.payload.len() {
            return Err(LogError::corrupt(format!(
                "truncated block: {got} of {} payload bytes",
                head.payload_len
            )));
        }
        if crate::checksum::checksum(&self.payload) != head.payload_sum {
            return Err(LogError::corrupt("block payload checksum mismatch"));
        }
        let block =
            decode_block_with(&mut self.state, &self.payload, head.record_count, self.rev)?;
        self.file_sum.update(&frame);
        self.file_sum.update(&self.payload);
        self.records_seen += u64::from(head.record_count);
        if let Some(start) = start {
            let m = literace_telemetry::metrics();
            m.log_decode_v2_blocks.add(1);
            m.log_decode_v2_bytes
                .add((FRAME_BYTES as u32 + head.payload_len) as u64);
            m.log_decode_v2_records.add(u64::from(head.record_count));
            m.log_decode_v2_ns.add(start.elapsed().as_nanos() as u64);
        }
        Ok(Some(block))
    }
}

/// Fills `buf` as far as the source allows; returns bytes read (short only
/// at EOF). Retries on `Interrupted`.
pub(crate) fn read_exact_or_eof(
    source: &mut impl std::io::Read,
    buf: &mut [u8],
) -> LogResult<usize> {
    let mut filled = 0;
    while filled < buf.len() {
        match source.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(LogError::Io(e)),
        }
    }
    Ok(filled)
}

impl<R: std::io::Read> Iterator for V2Blocks<R> {
    type Item = LogResult<Vec<Record>>;

    fn next(&mut self) -> Option<LogResult<Vec<Record>>> {
        if self.done {
            return None;
        }
        match self.read_block() {
            Ok(Some(block)) => Some(Ok(block)),
            Ok(None) => {
                self.done = true;
                None
            }
            Err(e) => {
                self.done = true;
                crate::error::count_error(&e);
                Some(Err(e))
            }
        }
    }
}

/// Serializes records as a complete, finalized v2 byte stream
/// (header + blocks + footer) in the current payload revision.
pub fn encode_v2<'a>(records: impl IntoIterator<Item = &'a Record>) -> Bytes {
    encode_v2_rev(records, V2_VERSION)
}

/// [`encode_v2`] pinned to payload revision `rev` (3 or 4) — for
/// backward-compatibility fixtures and tooling.
pub fn encode_v2_rev<'a>(records: impl IntoIterator<Item = &'a Record>, rev: u8) -> Bytes {
    let mut w = LogWriterV2::with_revision(Vec::new(), rev);
    for r in records {
        w.write_record(r).expect("Vec sink cannot fail");
    }
    Bytes::from(w.finish().expect("Vec sink cannot fail"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::encoded_len;
    use literace_sim::FuncId;

    fn sample_records() -> Vec<Record> {
        let mut out = Vec::new();
        out.push(Record::ThreadBegin {
            tid: ThreadId::MAIN,
        });
        for i in 0..200usize {
            out.push(Record::Mem {
                tid: ThreadId::from_index(i % 3),
                pc: Pc::new(FuncId::from_index(2), i % 17),
                addr: Addr::global((i % 13) as u64 * 8),
                is_write: i % 2 == 0,
                mask: SamplerMask::bit(0),
            });
            if i % 10 == 0 {
                out.push(Record::Sync {
                    tid: ThreadId::from_index(i % 3),
                    pc: Pc::new(FuncId::from_index(1), 4),
                    kind: SyncOpKind::LockRelease,
                    var: SyncVar(7),
                    timestamp: i as u64 + 1,
                });
            }
        }
        out.push(Record::ThreadEnd {
            tid: ThreadId::from_index(2),
        });
        out
    }

    fn decode_stream(bytes: &[u8]) -> LogResult<Vec<Record>> {
        assert_eq!(&bytes[..4], &V2_MAGIC);
        assert!(rev_supported(bytes[4]), "version byte {}", bytes[4]);
        let mut out = Vec::new();
        for block in V2Blocks::after_header(&bytes[5..], bytes[4]) {
            out.extend(block?);
        }
        Ok(out)
    }

    #[test]
    fn round_trip_preserves_records() {
        let records = sample_records();
        let bytes = encode_v2(&records);
        assert_eq!(bytes[4], V2_REV_GV, "default revision is group varint");
        assert_eq!(decode_stream(&bytes).unwrap(), records);
    }

    #[test]
    fn peek_sealed_total_reads_the_footer() {
        let records = sample_records();
        let bytes = encode_v2(&records);
        let dir = std::env::temp_dir();
        let sealed = dir.join("literace_peek_sealed.lrl");
        std::fs::write(&sealed, &bytes).unwrap();
        assert_eq!(peek_sealed_total(&sealed), Some(records.len() as u64));

        // Truncating the footer leaves an unsealed log: no total.
        let torn = dir.join("literace_peek_torn.lrl");
        std::fs::write(&torn, &bytes[..bytes.len() - FRAME_BYTES]).unwrap();
        assert_eq!(peek_sealed_total(&torn), None);

        // Non-v2 bytes: no total.
        let v1 = dir.join("literace_peek_v1.lrl");
        std::fs::write(&v1, b"\x01not a v2 log, just some bytes....").unwrap();
        assert_eq!(peek_sealed_total(&v1), None);

        for p in [sealed, torn, v1] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn rev3_round_trip_preserves_records() {
        let records = sample_records();
        let bytes = encode_v2_rev(&records, V2_REV_DELTA);
        assert_eq!(bytes[4], V2_REV_DELTA);
        assert_eq!(decode_stream(&bytes).unwrap(), records);
    }

    #[test]
    fn rev3_and_rev4_decode_identically() {
        let records = sample_records();
        let delta = encode_v2_rev(&records, V2_REV_DELTA);
        let gv = encode_v2_rev(&records, V2_REV_GV);
        assert_eq!(
            decode_stream(&delta).unwrap(),
            decode_stream(&gv).unwrap()
        );
    }

    #[test]
    fn round_trip_across_tiny_blocks() {
        let records = sample_records();
        let mut w = LogWriterV2::with_block_bytes(Vec::new(), 16);
        for r in &records {
            w.write_record(r).unwrap();
        }
        let bytes = w.finish().unwrap();
        assert_eq!(decode_stream(&bytes).unwrap(), records);
    }

    #[test]
    fn empty_log_is_header_plus_footer_and_round_trips() {
        let bytes = encode_v2([]);
        assert_eq!(bytes.len(), 5 + FRAME_BYTES);
        assert_eq!(decode_stream(&bytes).unwrap(), Vec::<Record>::new());
    }

    #[test]
    fn finished_log_reads_back_sealed() {
        let bytes = encode_v2(&sample_records());
        let mut blocks = V2Blocks::after_header(&bytes[5..], bytes[4]);
        assert_eq!(blocks.seal_state(), SealState::Unknown);
        for b in blocks.by_ref() {
            b.unwrap();
        }
        assert_eq!(blocks.seal_state(), SealState::Sealed);
    }

    #[test]
    fn dropped_writer_reads_back_unsealed() {
        let records = sample_records();
        let mut sink = Vec::new();
        {
            let mut w = LogWriterV2::new(&mut sink);
            for r in &records {
                w.write_record(r).unwrap();
            }
        }
        let mut blocks = V2Blocks::after_header(&sink[5..], sink[4]);
        let mut decoded = Vec::new();
        for b in blocks.by_ref() {
            decoded.extend(b.unwrap());
        }
        assert_eq!(decoded, records);
        assert_eq!(blocks.seal_state(), SealState::Unsealed);
    }

    #[test]
    fn torn_footer_is_corrupt_not_sealed() {
        let mut bytes = encode_v2(&sample_records()).to_vec();
        // Flip a byte inside the footer's total_records field.
        let foot = bytes.len() - FRAME_BYTES;
        bytes[foot + 5] ^= 0x40;
        let mut blocks = V2Blocks::after_header(&bytes[5..], bytes[4]);
        let last = blocks.by_ref().last().unwrap();
        let err = last.unwrap_err();
        assert!(err.to_string().contains("footer"), "{err}");
        assert_eq!(blocks.seal_state(), SealState::Unknown);
    }

    #[test]
    fn write_after_finish_is_a_typed_error() {
        let records = sample_records();
        let mut w = LogWriterV2::new(Vec::new());
        w.write_record(&records[0]).unwrap();
        w.finish().unwrap();
        assert!(matches!(
            w.write_record(&records[1]),
            Err(LogError::WriterFinished)
        ));
        assert!(matches!(w.finish(), Err(LogError::WriterFinished)));
    }

    #[test]
    fn v2_is_at_least_2x_smaller_on_a_typical_stream() {
        let records = sample_records();
        let v1: usize = records.iter().map(encoded_len).sum();
        let v2 = encode_v2(&records).len();
        assert!(
            v2 * 2 <= v1,
            "v2 ({v2} bytes) must be ≥2x smaller than v1 ({v1} bytes)"
        );
    }

    #[test]
    fn every_sync_kind_round_trips() {
        use SyncOpKind::*;
        let kinds = [
            LockAcquire,
            LockRelease,
            Notify,
            WaitReturn,
            Reset,
            SemRelease,
            SemAcquire,
            BarrierArrive,
            BarrierDepart,
            Fork,
            ThreadStart,
            ThreadExit,
            Join,
            AtomicRmw,
            AllocPage,
        ];
        let records: Vec<Record> = kinds
            .iter()
            .enumerate()
            .map(|(i, &kind)| Record::Sync {
                tid: ThreadId::from_index(i),
                pc: Pc(u64::MAX - i as u64),
                kind,
                var: SyncVar(i as u64),
                timestamp: i as u64,
            })
            .collect();
        let bytes = encode_v2(&records);
        assert_eq!(decode_stream(&bytes).unwrap(), records);
    }

    #[test]
    fn explicit_and_special_masks_round_trip() {
        let masks = [
            SamplerMask::EMPTY,
            SamplerMask::bit(0),
            SamplerMask::bit(5),
            SamplerMask(0b1011),
            SamplerMask::FULL,
        ];
        let records: Vec<Record> = masks
            .iter()
            .map(|&mask| Record::Mem {
                tid: ThreadId::MAIN,
                pc: Pc(3),
                addr: Addr(40),
                is_write: false,
                mask,
            })
            .collect();
        let bytes = encode_v2(&records);
        assert_eq!(decode_stream(&bytes).unwrap(), records);
    }

    #[test]
    fn trailing_bytes_in_block_are_corrupt() {
        let records = vec![Record::ThreadBegin {
            tid: ThreadId::MAIN,
        }];
        for rev in [V2_REV_DELTA, V2_REV_GV] {
            let mut buf = BytesMut::new();
            encode_block_rev(&records, &mut buf, rev);
            let mut payload = buf[FRAME_BYTES..].to_vec(); // strip the frame
            payload.push(0x00); // extra byte after the declared record
            let err = decode_block(&payload, 1, rev).unwrap_err();
            // Rev 3 reports trailing payload bytes; rev 4 catches the same
            // corruption as a tag-region length mismatch.
            assert!(
                err.to_string().contains("trailing") || err.to_string().contains("tag bytes"),
                "rev {rev}: {err}"
            );
        }
    }

    #[test]
    fn gv_trailing_operand_bytes_are_corrupt() {
        let records = sample_records();
        let mut buf = BytesMut::new();
        encode_block_rev(&records, &mut buf, V2_REV_GV);
        let payload = &buf[FRAME_BYTES..];
        // Declare one record fewer than encoded: the tag-region check
        // fires before any operand is touched.
        let err = decode_block(payload, records.len() as u32 - 1, V2_REV_GV).unwrap_err();
        assert!(err.to_string().contains("tag bytes"), "{err}");
    }

    #[test]
    fn writer_drop_flushes_open_block() {
        let records = sample_records();
        let mut sink = Vec::new();
        {
            let mut w = LogWriterV2::new(&mut sink);
            for r in &records {
                w.write_record(r).unwrap();
            }
            // Dropped without finish(): the open block must still land.
        }
        assert_eq!(decode_stream(&sink).unwrap(), records);
    }

    #[test]
    fn bytes_written_matches_final_size() {
        let records = sample_records();
        let mut w = LogWriterV2::with_block_bytes(Vec::new(), 64);
        for r in &records {
            w.write_record(r).unwrap();
        }
        let claimed = w.bytes_written();
        let bytes = w.finish().unwrap();
        assert_eq!(claimed, bytes.len() as u64);
    }
}
