//! Compact binary encoding of log records.
//!
//! The paper reports log volume in MB/s (Table 5); this codec defines the
//! bytes-per-record figures that the overhead model uses, and provides the
//! on-disk format for offline detection. Encoding is little-endian,
//! fixed-width per record kind, with a one-byte tag.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use literace_sim::{Addr, Pc, SyncOpKind, SyncVar, ThreadId};

use crate::error::{LogError, LogResult};
use crate::record::{Record, SamplerMask};

const TAG_SYNC: u8 = 1;
const TAG_MEM: u8 = 2;
const TAG_THREAD_BEGIN: u8 = 3;
const TAG_THREAD_END: u8 = 4;

/// Encoded size in bytes of a synchronization record.
pub const SYNC_RECORD_BYTES: usize = 1 + 4 + 8 + 1 + 8 + 8;

/// Encoded size in bytes of a memory-access record.
pub const MEM_RECORD_BYTES: usize = 1 + 4 + 8 + 8 + 1 + 4;

/// Encoded size in bytes of a thread marker record.
pub const MARKER_RECORD_BYTES: usize = 1 + 4;

fn kind_to_u8(kind: SyncOpKind) -> u8 {
    match kind {
        SyncOpKind::LockAcquire => 0,
        SyncOpKind::LockRelease => 1,
        SyncOpKind::Notify => 2,
        SyncOpKind::WaitReturn => 3,
        SyncOpKind::Reset => 4,
        SyncOpKind::Fork => 5,
        SyncOpKind::ThreadStart => 6,
        SyncOpKind::ThreadExit => 7,
        SyncOpKind::Join => 8,
        SyncOpKind::AtomicRmw => 9,
        SyncOpKind::AllocPage => 10,
        SyncOpKind::SemRelease => 11,
        SyncOpKind::SemAcquire => 12,
        SyncOpKind::BarrierArrive => 13,
        SyncOpKind::BarrierDepart => 14,
    }
}

fn kind_from_u8(v: u8) -> LogResult<SyncOpKind> {
    Ok(match v {
        0 => SyncOpKind::LockAcquire,
        1 => SyncOpKind::LockRelease,
        2 => SyncOpKind::Notify,
        3 => SyncOpKind::WaitReturn,
        4 => SyncOpKind::Reset,
        5 => SyncOpKind::Fork,
        6 => SyncOpKind::ThreadStart,
        7 => SyncOpKind::ThreadExit,
        8 => SyncOpKind::Join,
        9 => SyncOpKind::AtomicRmw,
        10 => SyncOpKind::AllocPage,
        11 => SyncOpKind::SemRelease,
        12 => SyncOpKind::SemAcquire,
        13 => SyncOpKind::BarrierArrive,
        14 => SyncOpKind::BarrierDepart,
        other => return Err(LogError::corrupt(format!("bad sync kind {other}"))),
    })
}

/// Appends the encoding of `record` to `buf`.
pub fn encode(record: &Record, buf: &mut BytesMut) {
    match *record {
        Record::Sync {
            tid,
            pc,
            kind,
            var,
            timestamp,
        } => {
            buf.put_u8(TAG_SYNC);
            buf.put_u32_le(tid.index() as u32);
            buf.put_u64_le(pc.0);
            buf.put_u8(kind_to_u8(kind));
            buf.put_u64_le(var.0);
            buf.put_u64_le(timestamp);
        }
        Record::Mem {
            tid,
            pc,
            addr,
            is_write,
            mask,
        } => {
            buf.put_u8(TAG_MEM);
            buf.put_u32_le(tid.index() as u32);
            buf.put_u64_le(pc.0);
            buf.put_u64_le(addr.raw());
            buf.put_u8(is_write as u8);
            buf.put_u32_le(mask.0);
        }
        Record::ThreadBegin { tid } => {
            buf.put_u8(TAG_THREAD_BEGIN);
            buf.put_u32_le(tid.index() as u32);
        }
        Record::ThreadEnd { tid } => {
            buf.put_u8(TAG_THREAD_END);
            buf.put_u32_le(tid.index() as u32);
        }
    }
}

/// The encoded size of a record, in bytes.
pub fn encoded_len(record: &Record) -> usize {
    match record {
        Record::Sync { .. } => SYNC_RECORD_BYTES,
        Record::Mem { .. } => MEM_RECORD_BYTES,
        Record::ThreadBegin { .. } | Record::ThreadEnd { .. } => MARKER_RECORD_BYTES,
    }
}

/// The encoded size (including the tag byte) of a record starting with the
/// given tag, or `None` for an unknown tag. Lets chunked readers know how
/// many bytes to buffer before decoding.
pub fn tag_len(tag: u8) -> Option<usize> {
    match tag {
        TAG_SYNC => Some(SYNC_RECORD_BYTES),
        TAG_MEM => Some(MEM_RECORD_BYTES),
        TAG_THREAD_BEGIN | TAG_THREAD_END => Some(MARKER_RECORD_BYTES),
        _ => None,
    }
}

/// Decodes one record from the front of `buf`, consuming its bytes.
///
/// # Errors
///
/// Returns [`LogError::Corrupt`] on an unknown tag, a truncated record, or
/// an invalid field value.
pub fn decode<B: Buf>(buf: &mut B) -> LogResult<Record> {
    if buf.remaining() < 1 {
        return Err(LogError::corrupt("empty buffer"));
    }
    let tag = buf.get_u8();
    let need = match tag {
        TAG_SYNC => SYNC_RECORD_BYTES,
        TAG_MEM => MEM_RECORD_BYTES,
        TAG_THREAD_BEGIN | TAG_THREAD_END => MARKER_RECORD_BYTES,
        other => return Err(LogError::corrupt(format!("unknown record tag {other}"))),
    } - 1;
    if buf.remaining() < need {
        return Err(LogError::corrupt(format!(
            "truncated record: tag {tag} needs {need} more bytes, has {}",
            buf.remaining()
        )));
    }
    Ok(match tag {
        TAG_SYNC => {
            let tid = ThreadId::from_index(buf.get_u32_le() as usize);
            let pc = Pc(buf.get_u64_le());
            let kind = kind_from_u8(buf.get_u8())?;
            let var = SyncVar(buf.get_u64_le());
            let timestamp = buf.get_u64_le();
            Record::Sync {
                tid,
                pc,
                kind,
                var,
                timestamp,
            }
        }
        TAG_MEM => {
            let tid = ThreadId::from_index(buf.get_u32_le() as usize);
            let pc = Pc(buf.get_u64_le());
            let addr = Addr(buf.get_u64_le());
            let is_write = match buf.get_u8() {
                0 => false,
                1 => true,
                other => {
                    return Err(LogError::corrupt(format!("bad is_write flag {other}")))
                }
            };
            let mask = SamplerMask(buf.get_u32_le());
            Record::Mem {
                tid,
                pc,
                addr,
                is_write,
                mask,
            }
        }
        TAG_THREAD_BEGIN => Record::ThreadBegin {
            tid: ThreadId::from_index(buf.get_u32_le() as usize),
        },
        TAG_THREAD_END => Record::ThreadEnd {
            tid: ThreadId::from_index(buf.get_u32_le() as usize),
        },
        _ => unreachable!("tag validated above"),
    })
}

/// Encodes a whole sequence of records into one buffer.
pub fn encode_all<'a>(records: impl IntoIterator<Item = &'a Record>) -> Bytes {
    let mut buf = BytesMut::new();
    for r in records {
        encode(r, &mut buf);
    }
    buf.freeze()
}

/// Decodes an entire buffer into records.
///
/// # Errors
///
/// Returns the first decoding error encountered.
pub fn decode_all(mut buf: Bytes) -> LogResult<Vec<Record>> {
    let mut out = Vec::new();
    while buf.has_remaining() {
        out.push(decode(&mut buf)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use literace_sim::FuncId;

    fn sample_records() -> Vec<Record> {
        vec![
            Record::ThreadBegin {
                tid: ThreadId::MAIN,
            },
            Record::Sync {
                tid: ThreadId::from_index(2),
                pc: Pc::new(FuncId::from_index(4), 17),
                kind: SyncOpKind::LockRelease,
                var: SyncVar(0x2000_0040),
                timestamp: 99,
            },
            Record::Mem {
                tid: ThreadId::from_index(1),
                pc: Pc::new(FuncId::from_index(3), 2),
                addr: Addr::global(5),
                is_write: true,
                mask: SamplerMask(0b1010),
            },
            Record::ThreadEnd {
                tid: ThreadId::from_index(2),
            },
        ]
    }

    #[test]
    fn round_trip_preserves_records() {
        let records = sample_records();
        let bytes = encode_all(&records);
        let decoded = decode_all(bytes).unwrap();
        assert_eq!(records, decoded);
    }

    #[test]
    fn encoded_len_matches_actual_encoding() {
        for r in sample_records() {
            let mut buf = BytesMut::new();
            encode(&r, &mut buf);
            assert_eq!(buf.len(), encoded_len(&r), "{r:?}");
        }
    }

    #[test]
    fn every_sync_kind_round_trips() {
        use SyncOpKind::*;
        for kind in [
            LockAcquire,
            LockRelease,
            Notify,
            WaitReturn,
            Reset,
            SemRelease,
            SemAcquire,
            BarrierArrive,
            BarrierDepart,
            Fork,
            ThreadStart,
            ThreadExit,
            Join,
            AtomicRmw,
            AllocPage,
        ] {
            assert_eq!(kind_from_u8(kind_to_u8(kind)).unwrap(), kind);
        }
    }

    #[test]
    fn unknown_tag_is_corrupt() {
        let buf = Bytes::from_static(&[0xFF]);
        let err = decode_all(buf).unwrap_err();
        assert!(err.to_string().contains("unknown record tag"), "{err}");
    }

    #[test]
    fn truncated_record_is_corrupt() {
        let records = sample_records();
        let bytes = encode_all(&records);
        let truncated = bytes.slice(0..bytes.len() - 1);
        let err = decode_all(truncated).unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");
    }

    #[test]
    fn bad_bool_is_corrupt() {
        let mut buf = BytesMut::new();
        encode(
            &Record::Mem {
                tid: ThreadId::MAIN,
                pc: Pc::new(FuncId::from_index(0), 0),
                addr: Addr::global(0),
                is_write: false,
                mask: SamplerMask::EMPTY,
            },
            &mut buf,
        );
        // Corrupt the is_write byte (offset: tag1+tid4+pc8+addr8 = 21).
        buf[21] = 7;
        let err = decode_all(buf.freeze()).unwrap_err();
        assert!(err.to_string().contains("is_write"), "{err}");
    }
}
