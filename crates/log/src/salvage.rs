//! Best-effort ("salvage") log decoding that can never manufacture a
//! false race.
//!
//! The normal readers abort at the first corrupt byte, discarding every
//! intact block after it. Salvage decode keeps going — but only where
//! that is provably safe for the detector downstream:
//!
//! * **Dropping memory accesses is always safe.** The happens-before
//!   detector can only *miss* races when accesses disappear (that is what
//!   sampling does on purpose, §4 of the paper); it cannot invent one.
//! * **Dropping synchronization records is never safe.** A lost sync op
//!   can remove a happens-before edge between two surviving accesses —
//!   in either direction, or transitively through other threads — and
//!   turn an ordered pair into a reported "race". No per-thread repair
//!   can bound that: an edge is between *two* threads, and transitivity
//!   spreads the damage to all of them.
//!
//! So the rule is: a corrupt v2 block whose (integrity-checked) header
//! says it holds **no sync records** is skipped and decoding resyncs at
//! the next block frame; any corruption that loses sync records — or
//! loses framing, so nothing after it can be trusted — drops the entire
//! rest of the stream. The v2 frame makes this decidable: `sync_count`
//! sits in the block header under its own checksum (`head_sum`), so it
//! is trustworthy even when the payload is not. For v1 logs (no framing
//! at all) salvage degrades to clean-prefix recovery, which is a global
//! prefix and therefore sound by the same argument.
//!
//! Everything dropped is tallied in a [`SalvageReport`], shared through a
//! [`SalvageHandle`] so streaming consumers can read it after the fact.

use std::io::Read;
use std::sync::{Arc, Mutex};

use crate::checksum::Checksum;
use crate::error::LogError;
use crate::io::{LogReader, DEFAULT_CHUNK_BYTES};
use crate::record::{EventLog, Record};
use crate::stream::{sniff_format, LogFormat, Replayed, V1_BLOCK_RECORDS};
use crate::v2::{
    decode_block_with, parse_frame, read_exact_or_eof, BlockState, Frame, SealState, FRAME_BYTES,
};

/// What salvage decoding recovered and what it had to give up.
#[derive(Debug, Clone, Default)]
pub struct SalvageReport {
    /// The detected on-disk format (`None` when even the header sniff
    /// failed).
    pub format: Option<LogFormat>,
    /// v2 blocks (or re-batched v1 blocks) decoded intact.
    pub blocks_decoded: u64,
    /// Corrupt v2 blocks skipped behind an intact frame.
    pub blocks_skipped: u64,
    /// Records recovered and yielded downstream.
    pub records_salvaged: u64,
    /// Records known lost, from the trusted headers of skipped blocks.
    /// Suffix drops lose an *unknown* number on top of this.
    pub records_dropped_known: u64,
    /// Bytes discarded: skipped block bytes plus any dropped suffix.
    pub bytes_dropped: u64,
    /// True when everything from some point to the end of the stream was
    /// discarded (framing loss, sync-bearing corruption, I/O failure, or
    /// a v1 decode error).
    pub suffix_dropped: bool,
    /// True when the dropped data may have contained synchronization
    /// records — the reason the suffix (not just one block) was dropped.
    pub sync_tainted: bool,
    /// Footer state of a v2 stream ([`SealState::Unknown`] for v1).
    pub seal: SealState,
    /// The first corruption encountered, as a human-readable message.
    pub first_error: Option<String>,
}

impl SalvageReport {
    /// True when nothing was skipped or dropped: the salvaged log is the
    /// whole log.
    pub fn clean(&self) -> bool {
        self.first_error.is_none()
            && self.blocks_skipped == 0
            && self.records_dropped_known == 0
            && self.bytes_dropped == 0
            && !self.suffix_dropped
            && !self.sync_tainted
    }

    pub(crate) fn note_error(&mut self, message: impl Into<String>) {
        if self.first_error.is_none() {
            self.first_error = Some(message.into());
        }
    }
}

impl std::fmt::Display for SalvageReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.clean() {
            return write!(
                f,
                "clean: {} records in {} blocks, seal {}",
                self.records_salvaged, self.blocks_decoded, self.seal
            );
        }
        write!(
            f,
            "salvaged {} records in {} blocks; skipped {} blocks, dropped {} known records \
             and {} bytes{}{}, seal {}",
            self.records_salvaged,
            self.blocks_decoded,
            self.blocks_skipped,
            self.records_dropped_known,
            self.bytes_dropped,
            if self.suffix_dropped {
                " (suffix dropped)"
            } else {
                ""
            },
            if self.sync_tainted {
                " (sync records lost)"
            } else {
                ""
            },
            self.seal
        )?;
        if let Some(e) = &self.first_error {
            write!(f, "; first error: {e}")?;
        }
        Ok(())
    }
}

/// Shared view of a [`SalvageReport`] being filled in by a
/// [`SalvageBlocks`] iterator (possibly on a decoder thread). The report
/// is final once the iterator is exhausted.
#[derive(Debug, Clone)]
pub struct SalvageHandle(Arc<Mutex<SalvageReport>>);

impl SalvageHandle {
    /// Wraps an externally shared report (the parallel decode pool fills
    /// one in from its in-order consumer).
    pub(crate) fn from_shared(report: Arc<Mutex<SalvageReport>>) -> SalvageHandle {
        SalvageHandle(report)
    }

    /// A snapshot of the report so far.
    pub fn report(&self) -> SalvageReport {
        self.0.lock().expect("salvage report poisoned").clone()
    }
}

struct V2Salvage<R> {
    source: R,
    payload: Vec<u8>,
    state: BlockState,
    file_sum: Checksum,
    records_seen: u64,
    rev: u8,
    done: bool,
}

enum Inner<R: Read> {
    V2(V2Salvage<R>),
    V1 {
        records: crate::io::ChunkedRecords<Replayed<R>>,
        done: bool,
    },
    /// Header sniff failed outright; nothing to salvage.
    Dead,
}

/// Best-effort block iterator: yields only `Ok` blocks, recording every
/// skip and drop in the shared [`SalvageReport`]. See the module docs for
/// the soundness rule.
///
/// The item type stays `LogResult<Vec<Record>>` so salvage plugs into the
/// same consumers as [`RecordBlocks`](crate::RecordBlocks) — but it never
/// yields `Err`.
pub struct SalvageBlocks<R: Read> {
    inner: Inner<R>,
    format: LogFormat,
    report: Arc<Mutex<SalvageReport>>,
}

impl<R: Read> std::fmt::Debug for SalvageBlocks<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SalvageBlocks")
            .field("format", &self.format)
            .finish_non_exhaustive()
    }
}

/// Opens a salvage iterator over `source`, auto-detecting the format.
/// Infallible: even an unreadable header just produces an empty iterator
/// with the failure recorded in the report.
pub fn open_salvage<R: Read>(mut source: R) -> (SalvageBlocks<R>, SalvageHandle) {
    if literace_telemetry::enabled() {
        literace_telemetry::metrics().log_salvage_runs.add(1);
    }
    let report = Arc::new(Mutex::new(SalvageReport::default()));
    let (inner, format) = match sniff_format(&mut source) {
        Ok((LogFormat::V2, _, rev)) => (
            Inner::V2(V2Salvage {
                source,
                payload: Vec::new(),
                state: BlockState::default(),
                file_sum: Checksum::new(),
                records_seen: 0,
                rev,
                done: false,
            }),
            LogFormat::V2,
        ),
        Ok((LogFormat::V1, replay, _)) => (
            Inner::V1 {
                records: LogReader::new(std::io::Cursor::new(replay).chain(source))
                    .records(DEFAULT_CHUNK_BYTES),
                done: false,
            },
            LogFormat::V1,
        ),
        Err(e) => {
            let format = match &e {
                LogError::UnsupportedVersion { .. } => LogFormat::V2,
                _ => LogFormat::V1,
            };
            let mut r = report.lock().expect("salvage report poisoned");
            r.note_error(e.to_string());
            r.suffix_dropped = true;
            drop(r);
            (Inner::Dead, format)
        }
    };
    {
        let mut r = report.lock().expect("salvage report poisoned");
        r.format = Some(format);
    }
    let handle = SalvageHandle(report.clone());
    (
        SalvageBlocks {
            inner,
            format,
            report,
        },
        handle,
    )
}

impl<R: Read> SalvageBlocks<R> {
    /// The detected on-disk format (best guess when the header was
    /// unreadable).
    pub fn format(&self) -> LogFormat {
        self.format
    }

    /// A handle to the shared report.
    pub fn handle(&self) -> SalvageHandle {
        SalvageHandle(self.report.clone())
    }
}

/// Consumes the rest of `source`, counting bytes; I/O errors just end the
/// count (there is nothing downstream to salvage from them).
pub(crate) fn drain_bytes(source: &mut impl Read) -> u64 {
    let mut buf = [0u8; 8192];
    let mut total = 0u64;
    loop {
        match source.read(&mut buf) {
            Ok(0) => return total,
            Ok(n) => total += n as u64,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return total,
        }
    }
}

pub(crate) fn tally_skip(blocks: u64, records: u64, bytes: u64) {
    if literace_telemetry::enabled() {
        let m = literace_telemetry::metrics();
        m.log_salvage_blocks_skipped.add(blocks);
        m.log_salvage_records_dropped.add(records);
        m.log_salvage_bytes_dropped.add(bytes);
    }
}

impl<R: Read> V2Salvage<R> {
    fn next_block(&mut self, report: &Mutex<SalvageReport>) -> Option<Vec<Record>> {
        loop {
            if self.done {
                return None;
            }
            let mut frame = [0u8; FRAME_BYTES];
            let got = match read_exact_or_eof(&mut self.source, &mut frame) {
                Ok(n) => n,
                Err(e) => {
                    // The source itself failed: whatever follows is
                    // unreachable, and it may have held sync records.
                    let mut r = report.lock().expect("salvage report poisoned");
                    r.note_error(e.to_string());
                    r.suffix_dropped = true;
                    r.sync_tainted = true;
                    self.done = true;
                    return None;
                }
            };
            if got == 0 {
                // Clean EOF without a footer: the writer never finalized,
                // but every decoded block was intact.
                let mut r = report.lock().expect("salvage report poisoned");
                if r.seal == SealState::Unknown {
                    r.seal = SealState::Unsealed;
                }
                self.done = true;
                return None;
            }
            if got < FRAME_BYTES {
                // Torn trailing frame: fewer than FRAME_BYTES bytes at
                // EOF cannot hold a complete record, so nothing decodable
                // (and no sync record) is lost.
                let mut r = report.lock().expect("salvage report poisoned");
                r.bytes_dropped += got as u64;
                r.note_error(format!(
                    "truncated block header: {got} of {FRAME_BYTES} bytes"
                ));
                r.seal = SealState::Unsealed;
                drop(r);
                tally_skip(0, 0, got as u64);
                self.done = true;
                return None;
            }
            match parse_frame(&frame) {
                Err(e) => {
                    // Framing lost: the block boundaries after this point
                    // cannot be found, so the whole suffix goes.
                    let rest = drain_bytes(&mut self.source);
                    let dropped = FRAME_BYTES as u64 + rest;
                    let mut r = report.lock().expect("salvage report poisoned");
                    r.bytes_dropped += dropped;
                    r.suffix_dropped = true;
                    r.sync_tainted = true;
                    r.note_error(e.to_string());
                    drop(r);
                    tally_skip(0, 0, dropped);
                    self.done = true;
                    return None;
                }
                Ok(Frame::Footer(foot)) => {
                    let trailing = drain_bytes(&mut self.source);
                    let mut r = report.lock().expect("salvage report poisoned");
                    // foot_sum verified in parse_frame: the writer did
                    // finalize this log, whatever happened to its middle.
                    r.seal = SealState::Sealed;
                    if trailing > 0 {
                        r.bytes_dropped += trailing;
                        r.note_error(format!("{trailing} trailing bytes after footer"));
                    }
                    let totals_match = foot.total_records == self.records_seen
                        && foot.file_sum == self.file_sum.finish();
                    // A mismatch is expected when blocks were skipped; on
                    // an otherwise-clean read it means damage the block
                    // checks missed.
                    if !totals_match && r.first_error.is_none() {
                        r.note_error(format!(
                            "footer totals mismatch: footer says {} records, decoded {}",
                            foot.total_records, self.records_seen
                        ));
                    }
                    drop(r);
                    if trailing > 0 {
                        tally_skip(0, 0, trailing);
                    }
                    self.done = true;
                    return None;
                }
                Ok(Frame::Block(head)) => {
                    self.payload.clear();
                    self.payload.resize(head.payload_len as usize, 0);
                    let got = match read_exact_or_eof(&mut self.source, &mut self.payload) {
                        Ok(n) => n,
                        Err(e) => {
                            let mut r = report.lock().expect("salvage report poisoned");
                            r.note_error(e.to_string());
                            r.suffix_dropped = true;
                            r.sync_tainted = true;
                            self.done = true;
                            return None;
                        }
                    };
                    if got < self.payload.len() {
                        // Torn final block (EOF mid-payload). Its records
                        // are gone; the trusted header says how many, and
                        // whether sync edges went with them.
                        let dropped = (FRAME_BYTES + got) as u64;
                        let mut r = report.lock().expect("salvage report poisoned");
                        r.blocks_skipped += 1;
                        r.records_dropped_known += u64::from(head.record_count);
                        r.bytes_dropped += dropped;
                        r.seal = SealState::Unsealed;
                        if head.sync_count > 0 {
                            r.sync_tainted = true;
                        }
                        r.note_error(format!(
                            "truncated block: {got} of {} payload bytes",
                            head.payload_len
                        ));
                        drop(r);
                        tally_skip(1, u64::from(head.record_count), dropped);
                        self.done = true;
                        return None;
                    }
                    let payload_ok =
                        crate::checksum::checksum(&self.payload) == head.payload_sum;
                    let decoded = if payload_ok {
                        decode_block_with(
                            &mut self.state,
                            &self.payload,
                            head.record_count,
                            self.rev,
                        )
                    } else {
                        Err(LogError::corrupt("block payload checksum mismatch"))
                    };
                    match decoded {
                        Ok(block) => {
                            self.file_sum.update(&frame);
                            self.file_sum.update(&self.payload);
                            self.records_seen += u64::from(head.record_count);
                            let mut r = report.lock().expect("salvage report poisoned");
                            r.blocks_decoded += 1;
                            r.records_salvaged += block.len() as u64;
                            return Some(block);
                        }
                        Err(e) => {
                            let dropped = (FRAME_BYTES + self.payload.len()) as u64;
                            let mut r = report.lock().expect("salvage report poisoned");
                            r.blocks_skipped += 1;
                            r.records_dropped_known += u64::from(head.record_count);
                            r.bytes_dropped += dropped;
                            r.note_error(e.to_string());
                            if head.sync_count > 0 {
                                // Sync records lost: a happens-before
                                // edge between surviving accesses may be
                                // gone. Nothing after this block can be
                                // trusted not to race falsely — drop the
                                // suffix.
                                r.sync_tainted = true;
                                r.suffix_dropped = true;
                                drop(r);
                                let rest = drain_bytes(&mut self.source);
                                report
                                    .lock()
                                    .expect("salvage report poisoned")
                                    .bytes_dropped += rest;
                                tally_skip(1, u64::from(head.record_count), dropped + rest);
                                self.done = true;
                                return None;
                            }
                            // Memory-only block: dropping it can only
                            // hide races, never invent them. Resync at
                            // the next frame.
                            drop(r);
                            tally_skip(1, u64::from(head.record_count), dropped);
                        }
                    }
                }
            }
        }
    }
}

impl<R: Read> Iterator for SalvageBlocks<R> {
    type Item = crate::error::LogResult<Vec<Record>>;

    fn next(&mut self) -> Option<Self::Item> {
        match &mut self.inner {
            Inner::Dead => None,
            Inner::V2(v2) => v2.next_block(&self.report).map(Ok),
            Inner::V1 { records, done } => {
                if *done {
                    return None;
                }
                let mut block = Vec::with_capacity(V1_BLOCK_RECORDS);
                loop {
                    match records.next() {
                        Some(Ok(r)) => {
                            block.push(r);
                            if block.len() >= V1_BLOCK_RECORDS {
                                break;
                            }
                        }
                        Some(Err(e)) => {
                            // v1 has no framing to resync on: keep the
                            // clean prefix (a global prefix is always
                            // sound), drop the rest.
                            *done = true;
                            let mut r = self.report.lock().expect("salvage report poisoned");
                            r.note_error(e.to_string());
                            r.suffix_dropped = true;
                            r.sync_tainted = true;
                            break;
                        }
                        None => {
                            *done = true;
                            break;
                        }
                    }
                }
                if block.is_empty() {
                    return None;
                }
                let mut r = self.report.lock().expect("salvage report poisoned");
                r.blocks_decoded += 1;
                r.records_salvaged += block.len() as u64;
                drop(r);
                Some(Ok(block))
            }
        }
    }
}

/// Reads as much of a log as salvage allows into an [`EventLog`], with
/// the final damage report. Never fails.
pub fn read_log_salvage(source: impl Read) -> (EventLog, SalvageReport) {
    let (blocks, handle) = open_salvage(source);
    let mut log = EventLog::new();
    for block in blocks.flatten() {
        log.extend(block);
    }
    (log, handle.report())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::encode_all;
    use crate::record::SamplerMask;
    use crate::v2::encode_v2;
    use literace_sim::{Addr, FuncId, Pc, ThreadId};

    fn mem(i: usize) -> Record {
        Record::Mem {
            tid: ThreadId::from_index(i % 3),
            pc: Pc::new(FuncId::from_index(i % 5), i),
            addr: Addr::global((i % 7) as u64),
            is_write: i.is_multiple_of(2),
            mask: SamplerMask::bit(0),
        }
    }

    fn sync(i: usize) -> Record {
        Record::Sync {
            tid: ThreadId::from_index(i % 3),
            pc: Pc::new(FuncId::from_index(i % 5), i),
            kind: literace_sim::SyncOpKind::LockAcquire,
            var: literace_sim::SyncVar(i as u64 % 4),
            timestamp: i as u64,
        }
    }

    /// Encodes each slice of records as its own v2 block, returning the
    /// bytes and the byte range of each block (frame + payload).
    fn encode_blocks(groups: &[Vec<Record>]) -> (Vec<u8>, Vec<std::ops::Range<usize>>) {
        let mut out = Vec::new();
        let mut ranges = Vec::new();
        out.extend_from_slice(&crate::v2::V2_MAGIC);
        out.push(crate::v2::V2_VERSION);
        for group in groups {
            // Each group is far below DEFAULT_BLOCK_BYTES, so encode_v2
            // emits exactly one block: strip its 5-byte header and
            // 24-byte footer and splice the block in.
            let bytes = encode_v2(group);
            let start = out.len();
            out.extend_from_slice(&bytes[5..bytes.len() - FRAME_BYTES]);
            ranges.push(start..out.len());
        }
        (out, ranges)
    }

    #[test]
    fn clean_v2_log_salvages_completely() {
        let records: Vec<Record> = (0..5000).map(mem).collect();
        let bytes = encode_v2(&records);
        let (log, report) = read_log_salvage(&bytes[..]);
        assert_eq!(log.records(), &records[..]);
        assert!(report.clean(), "{report}");
        assert_eq!(report.seal, SealState::Sealed);
        assert_eq!(report.records_salvaged, 5000);
    }

    #[test]
    fn corrupt_mem_block_is_skipped_and_decoding_resyncs() {
        let groups: Vec<Vec<Record>> = (0..3).map(|g| (0..100).map(|i| mem(g * 100 + i)).collect()).collect();
        let (mut bytes, ranges) = encode_blocks(&groups);
        // Flip a payload byte in the middle block (past its 24-byte frame).
        let mid = ranges[1].start + FRAME_BYTES + 10;
        bytes[mid] ^= 0x40;
        let (log, report) = read_log_salvage(&bytes[..]);
        let expected: Vec<Record> = groups[0].iter().chain(groups[2].iter()).cloned().collect();
        assert_eq!(log.records(), &expected[..]);
        assert_eq!(report.blocks_skipped, 1);
        assert_eq!(report.records_dropped_known, 100);
        assert!(!report.sync_tainted, "{report}");
        assert!(!report.suffix_dropped, "{report}");
        assert!(report.first_error.is_some());
    }

    #[test]
    fn corrupt_sync_block_drops_the_suffix() {
        let groups: Vec<Vec<Record>> = vec![
            (0..100).map(mem).collect(),
            (0..100).map(|i| if i % 10 == 0 { sync(i) } else { mem(i) }).collect(),
            (0..100).map(mem).collect(),
        ];
        let (mut bytes, ranges) = encode_blocks(&groups);
        let mid = ranges[1].start + FRAME_BYTES + 10;
        bytes[mid] ^= 0x40;
        let (log, report) = read_log_salvage(&bytes[..]);
        // Only the first group survives: the corrupt block held sync
        // records, so everything after it is dropped.
        assert_eq!(log.records(), &groups[0][..]);
        assert!(report.sync_tainted, "{report}");
        assert!(report.suffix_dropped, "{report}");
        assert_eq!(report.records_salvaged, 100);
    }

    #[test]
    fn corrupt_frame_drops_the_suffix() {
        let groups: Vec<Vec<Record>> = (0..3).map(|g| (0..100).map(|i| mem(g * 100 + i)).collect()).collect();
        let (mut bytes, ranges) = encode_blocks(&groups);
        // Corrupt the *frame* of the middle block: framing is lost.
        let mid = ranges[1].start + 2;
        bytes[mid] ^= 0xFF;
        let (log, report) = read_log_salvage(&bytes[..]);
        assert_eq!(log.records(), &groups[0][..]);
        assert!(report.suffix_dropped, "{report}");
        assert!(report.sync_tainted, "{report}");
    }

    #[test]
    fn truncation_yields_the_clean_prefix() {
        let records: Vec<Record> = (0..5000).map(mem).collect();
        let bytes = encode_v2(&records);
        for cut in [6, 20, 100, bytes.len() / 2, bytes.len() - 1] {
            let (log, report) = read_log_salvage(&bytes[..cut]);
            assert!(log.records().iter().eq(records.iter().take(log.len())));
            assert_ne!(report.seal, SealState::Sealed, "cut={cut}: {report}");
            assert!(!report.clean(), "cut={cut}");
        }
    }

    #[test]
    fn v1_salvage_keeps_the_clean_prefix() {
        let records: Vec<Record> = (0..100).map(mem).collect();
        let mut bytes = encode_all(&records).to_vec();
        let cut = bytes.len() - 3;
        bytes.truncate(cut);
        bytes.push(0xFF); // invalid tag after the truncated record
        let (log, report) = read_log_salvage(&bytes[..]);
        assert!(!log.is_empty());
        assert!(log.records().iter().eq(records.iter().take(log.len())));
        assert_eq!(report.format, Some(LogFormat::V1));
        assert!(report.suffix_dropped, "{report}");
        assert!(report.first_error.is_some());
    }

    #[test]
    fn empty_input_is_a_clean_empty_v1_log() {
        let (log, report) = read_log_salvage(std::io::empty());
        assert!(log.is_empty());
        assert!(report.clean(), "{report}");
        assert_eq!(report.format, Some(LogFormat::V1));
    }

    #[test]
    fn unsupported_version_is_reported_not_panicked() {
        let records: Vec<Record> = (0..10).map(mem).collect();
        let mut bytes = encode_v2(&records).to_vec();
        bytes[4] = 9;
        let (log, report) = read_log_salvage(&bytes[..]);
        assert!(log.is_empty());
        assert_eq!(report.format, Some(LogFormat::V2));
        assert!(report.suffix_dropped);
        assert!(report.first_error.unwrap().contains("unsupported"));
    }

    #[test]
    fn sealed_log_with_skipped_block_reports_footer_present() {
        let groups: Vec<Vec<Record>> = (0..2).map(|g| (0..50).map(|i| mem(g * 50 + i)).collect()).collect();
        let (mut bytes, ranges) = encode_blocks(&groups);
        // Append a footer matching the *undamaged* stream, then corrupt a
        // mem block: salvage should still classify the log as sealed.
        let mut file_sum = Checksum::new();
        file_sum.update(&bytes[5..]);
        let footer = crate::v2::make_footer(100, file_sum.finish());
        bytes.extend_from_slice(&footer);
        let mid = ranges[0].start + FRAME_BYTES + 3;
        bytes[mid] ^= 0x04;
        let (log, report) = read_log_salvage(&bytes[..]);
        assert_eq!(log.records(), &groups[1][..]);
        assert_eq!(report.seal, SealState::Sealed);
        assert_eq!(report.blocks_skipped, 1);
    }
}
