//! Streaming integrity checksum for the v2 block frames and file footer.
//!
//! Not cryptographic — the threat model is torn writes, truncation and
//! random bit flips, not an adversary. The mixer consumes 8-byte chunks
//! with a multiply/xor-shift round (the golden-ratio constant spreads
//! every input bit across the state), buffers stragglers so arbitrary
//! `update` chunking produces identical sums, and folds the total length
//! into the final value so swapped or dropped zero runs still change it.

/// Incremental 64-bit checksum over a byte stream.
///
/// `update` may be called with arbitrarily-sized chunks; the sum depends
/// only on the concatenated bytes. [`finish`](Checksum::finish) does not
/// consume the state, so a running sum can be probed mid-stream.
#[derive(Debug, Clone)]
pub struct Checksum {
    state: u64,
    /// Bytes not yet forming a full 8-byte chunk.
    pending: [u8; 8],
    pending_len: usize,
    total_len: u64,
}

const SEED: u64 = 0x5143_5253_4C52_4C02; // "QCRSLRL\x02", arbitrary non-zero
const MULT: u64 = 0x9E37_79B9_7F4A_7C15;

#[inline]
fn mix(state: u64, chunk: u64) -> u64 {
    let mut x = (state ^ chunk).wrapping_mul(MULT);
    x ^= x >> 32;
    x = x.wrapping_mul(MULT);
    x ^ (x >> 29)
}

impl Checksum {
    /// A fresh checksum state.
    pub fn new() -> Checksum {
        Checksum {
            state: SEED,
            pending: [0; 8],
            pending_len: 0,
            total_len: 0,
        }
    }

    /// Feeds `bytes` into the sum.
    pub fn update(&mut self, bytes: &[u8]) {
        self.total_len += bytes.len() as u64;
        let mut rest = bytes;
        if self.pending_len > 0 {
            let take = rest.len().min(8 - self.pending_len);
            self.pending[self.pending_len..self.pending_len + take]
                .copy_from_slice(&rest[..take]);
            self.pending_len += take;
            rest = &rest[take..];
            if self.pending_len < 8 {
                return;
            }
            self.state = mix(self.state, u64::from_le_bytes(self.pending));
            self.pending_len = 0;
        }
        let mut chunks = rest.chunks_exact(8);
        for chunk in &mut chunks {
            self.state = mix(self.state, u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let tail = chunks.remainder();
        self.pending[..tail.len()].copy_from_slice(tail);
        self.pending_len = tail.len();
    }

    /// The checksum of everything fed so far. Does not consume the state.
    pub fn finish(&self) -> u64 {
        let mut state = self.state;
        if self.pending_len > 0 {
            // Zero-pad the straggler chunk; the length fold below keeps
            // "short chunk" distinct from "chunk with trailing zeros".
            let mut last = [0u8; 8];
            last[..self.pending_len].copy_from_slice(&self.pending[..self.pending_len]);
            state = mix(state, u64::from_le_bytes(last));
        }
        mix(state, self.total_len)
    }

    /// Bytes fed so far.
    pub fn len(&self) -> u64 {
        self.total_len
    }

    /// True when no bytes have been fed.
    pub fn is_empty(&self) -> bool {
        self.total_len == 0
    }
}

impl Default for Checksum {
    fn default() -> Checksum {
        Checksum::new()
    }
}

/// One-shot checksum of `bytes`.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut c = Checksum::new();
    c.update(bytes);
    c.finish()
}

/// One-shot checksum truncated to 32 bits (block/footer header fields).
pub fn checksum32(bytes: &[u8]) -> u32 {
    checksum(bytes) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunking_does_not_affect_the_sum() {
        let data: Vec<u8> = (0..257u32).map(|i| (i * 7 + 3) as u8).collect();
        let whole = checksum(&data);
        for split in [1, 3, 7, 8, 9, 64, 255] {
            let mut c = Checksum::new();
            for chunk in data.chunks(split) {
                c.update(chunk);
            }
            assert_eq!(c.finish(), whole, "split={split}");
        }
    }

    #[test]
    fn length_is_folded_in() {
        // A stream and the same stream plus trailing zeros must differ,
        // even when the zeros pad out the same 8-byte chunk.
        let a = checksum(&[1, 2, 3]);
        let b = checksum(&[1, 2, 3, 0]);
        let c = checksum(&[1, 2, 3, 0, 0, 0, 0, 0]);
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_ne!(a, c);
    }

    #[test]
    fn single_bit_flips_change_the_sum() {
        let data: Vec<u8> = (0..64u8).collect();
        let clean = checksum(&data);
        for pos in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[pos] ^= 1 << bit;
                assert_ne!(checksum(&flipped), clean, "pos={pos} bit={bit}");
            }
        }
    }

    #[test]
    fn finish_is_idempotent_and_resumable() {
        let mut c = Checksum::new();
        c.update(b"hello");
        let mid = c.finish();
        assert_eq!(c.finish(), mid);
        c.update(b" world");
        assert_eq!(c.finish(), checksum(b"hello world"));
        assert_eq!(c.len(), 11);
        assert!(!c.is_empty());
    }

    #[test]
    fn empty_stream_has_a_stable_sum() {
        assert_eq!(Checksum::new().finish(), checksum(&[]));
        assert!(Checksum::new().is_empty());
    }
}
