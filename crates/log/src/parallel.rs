//! Parallel out-of-order v2 block decode.
//!
//! v2 blocks are independently decodable by design: each 24-byte frame
//! carries its own header checksum, record/sync counts and payload
//! checksum, and the per-thread delta state resets at every block start.
//! This module exploits that:
//!
//! ```text
//! scanner ──jobs──▶ worker pool ──done──▶ consumer ──▶ RecordStream
//!  (seq)            (N threads,           (reorders by
//!  frame scan,       out-of-order         sequence index,
//!  payload read      payload decode)      owns stream checksum,
//!  only)                                  footer + salvage rules)
//! ```
//!
//! * The **scanner** walks the stream sequentially — frame headers are
//!   cheap fixed 24-byte reads — validates each frame, reads the raw
//!   payload, and hands `(sequence, frame, payload)` jobs to the pool.
//! * **Workers** verify the payload checksum and decode records. Blocks
//!   finish in whatever order the scheduler likes.
//! * The **consumer** restores sequence order with a reorder buffer and
//!   replays the *exact* sequential reader semantics over the in-order
//!   results: the running stream checksum, footer validation, strict
//!   error ordering, and — in salvage mode — the skip/taint rules of
//!   [`crate::salvage`], byte for byte. Workers echo the frame and
//!   payload back precisely so the consumer can do this.
//!
//! Delivery downstream is therefore byte-identical to the sequential
//! decoder; only the payload decode work itself runs out of order. All
//! threads are joined by the consumer thread, which [`RecordStream`]
//! already joins on drop — no pool thread outlives the stream.

use std::collections::BTreeMap;
use std::io::Read;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Mutex};

use bytes::Bytes;

use crate::checksum::Checksum;
use crate::error::{count_error, LogError, LogResult};
use crate::record::Record;
use crate::salvage::{drain_bytes, tally_skip, SalvageHandle, SalvageReport};
use crate::stream::{panic_message, push_output, DecodeOpts, LogFormat, RecordStream};
use crate::v2::{
    decode_block_with, parse_frame, read_exact_or_eof, BlockFrame, BlockState, FooterFrame, Frame,
    SealState, FRAME_BYTES,
};

/// A block payload in flight: owned bytes from a reader source, or a
/// zero-copy refcounted slice of a mapped/materialized log.
pub(crate) enum PayloadBuf {
    /// Copied out of a `Read` source.
    Owned(Vec<u8>),
    /// Shared slice of the whole-file buffer (mmap/Bytes sources).
    Shared(Bytes),
}

impl std::ops::Deref for PayloadBuf {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        match self {
            PayloadBuf::Owned(v) => v,
            PayloadBuf::Shared(b) => b,
        }
    }
}

/// What the scanner needs from a source: exact frame reads, payload
/// reads, a byte-counting drain, and a one-byte trailing probe.
pub(crate) trait ScanSource {
    /// Fills `buf` as far as the source allows; short only at EOF.
    fn read_frame(&mut self, buf: &mut [u8; FRAME_BYTES]) -> LogResult<usize>;
    /// Reads up to `len` payload bytes; the returned count is short only
    /// at EOF (a torn final block).
    fn read_payload(&mut self, len: usize) -> LogResult<(PayloadBuf, usize)>;
    /// Consumes the rest of the source, counting bytes (errors just end
    /// the count — matches sequential salvage's drain).
    fn drain(&mut self) -> u64;
    /// Reads at most one byte (the strict footer-trailing probe).
    fn probe_byte(&mut self) -> LogResult<u64>;
}

/// [`ScanSource`] over any `Read` — payloads are copied once into owned
/// buffers that travel through the pool.
pub(crate) struct ReaderSource<R>(R);

impl<R: Read> ReaderSource<R> {
    pub(crate) fn new(source: R) -> ReaderSource<R> {
        ReaderSource(source)
    }
}

impl<R: Read> ScanSource for ReaderSource<R> {
    fn read_frame(&mut self, buf: &mut [u8; FRAME_BYTES]) -> LogResult<usize> {
        read_exact_or_eof(&mut self.0, buf)
    }

    fn read_payload(&mut self, len: usize) -> LogResult<(PayloadBuf, usize)> {
        let mut payload = vec![0u8; len];
        let got = read_exact_or_eof(&mut self.0, &mut payload)?;
        payload.truncate(got);
        Ok((PayloadBuf::Owned(payload), got))
    }

    fn drain(&mut self) -> u64 {
        drain_bytes(&mut self.0)
    }

    fn probe_byte(&mut self) -> LogResult<u64> {
        let mut probe = [0u8; 1];
        Ok(read_exact_or_eof(&mut self.0, &mut probe)? as u64)
    }
}

/// [`ScanSource`] over a fully materialized log: payloads are zero-copy
/// refcounted slices — the pool never copies block bytes.
pub(crate) struct BytesSource {
    buf: Bytes,
    pos: usize,
}

impl BytesSource {
    /// A source over `buf`, which must start at the first block frame
    /// (the 5-byte file header already stripped).
    pub(crate) fn new(buf: Bytes) -> BytesSource {
        BytesSource { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

impl ScanSource for BytesSource {
    fn read_frame(&mut self, buf: &mut [u8; FRAME_BYTES]) -> LogResult<usize> {
        let n = FRAME_BYTES.min(self.remaining());
        buf[..n].copy_from_slice(&self.buf[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }

    fn read_payload(&mut self, len: usize) -> LogResult<(PayloadBuf, usize)> {
        let n = len.min(self.remaining());
        let slice = self.buf.slice(self.pos..self.pos + n);
        self.pos += n;
        Ok((PayloadBuf::Shared(slice), n))
    }

    fn drain(&mut self) -> u64 {
        let n = self.remaining() as u64;
        self.pos = self.buf.len();
        n
    }

    fn probe_byte(&mut self) -> LogResult<u64> {
        let n = 1.min(self.remaining());
        self.pos += n;
        Ok(n as u64)
    }
}

/// One scanned block heading into the pool, tagged with its sequence
/// index in the stream.
struct Job {
    seq: u64,
    frame: [u8; FRAME_BYTES],
    head: BlockFrame,
    payload: PayloadBuf,
}

/// A worker's result: the decode outcome plus the frame and payload
/// echoed back so the consumer can maintain the running stream checksum
/// (and salvage byte accounting) with sequential semantics.
struct Done {
    seq: u64,
    frame: [u8; FRAME_BYTES],
    head: BlockFrame,
    payload: PayloadBuf,
    result: LogResult<Vec<Record>>,
}

/// How the scanner's sequential walk ended. Sent once, after the last
/// issued job, with the total number of jobs issued.
enum Terminal {
    /// Clean EOF without a footer (an unsealed log).
    Eof,
    /// A verified footer frame; `trailing` is what followed it (strict
    /// mode probes one byte, salvage drains and counts).
    Footer {
        foot: FooterFrame,
        trailing: LogResult<u64>,
    },
    /// EOF inside a frame header: `got` of 24 bytes.
    TornHeader { got: usize },
    /// An unparseable frame: block boundaries are lost. `rest` is the
    /// byte count salvage drained after it (0 in strict mode).
    BadFrame { error: LogError, rest: u64 },
    /// EOF inside a block payload: `got` of the declared bytes.
    TornPayload { head: BlockFrame, got: usize },
    /// The source itself failed.
    Io(LogError),
    /// The consumer aborted the scan (error delivered or stream dropped);
    /// `drained` counts bytes salvage consumed past the abort point.
    Aborted { drained: u64 },
    /// The scanner (or pool plumbing) panicked.
    Panicked { message: String },
}

impl Terminal {
    /// Raw bytes the scanner consumed for this terminal event — what a
    /// sequential salvage drain would have counted had a sync-tainted
    /// block already dropped the suffix.
    fn raw_bytes(&self) -> u64 {
        match self {
            Terminal::Eof | Terminal::Io(_) | Terminal::Panicked { .. } => 0,
            Terminal::Footer { trailing, .. } => {
                FRAME_BYTES as u64 + trailing.as_ref().copied().unwrap_or(0)
            }
            Terminal::TornHeader { got } => *got as u64,
            Terminal::BadFrame { rest, .. } => FRAME_BYTES as u64 + rest,
            Terminal::TornPayload { got, .. } => (FRAME_BYTES + got) as u64,
            Terminal::Aborted { drained } => *drained,
        }
    }
}

/// Sequential frame scan: validates frames, reads payloads, and feeds the
/// worker pool. Never decodes a payload.
fn scan<S: ScanSource>(
    src: &mut S,
    jobs: &SyncSender<Job>,
    terminal: &std::sync::mpsc::Sender<(u64, Terminal)>,
    abort: &AtomicBool,
    salvage: bool,
    issued: &AtomicU64,
    inflight: &AtomicU64,
) {
    let mut seq = 0u64;
    let finish = |seq: u64, t: Terminal| {
        literace_telemetry::trace_end("scan");
        let _ = terminal.send((seq, t));
    };
    literace_telemetry::trace_begin("scan");
    loop {
        if abort.load(Ordering::Acquire) {
            let drained = if salvage { src.drain() } else { 0 };
            return finish(seq, Terminal::Aborted { drained });
        }
        let mut frame = [0u8; FRAME_BYTES];
        let got = match src.read_frame(&mut frame) {
            Ok(n) => n,
            Err(e) => return finish(seq, Terminal::Io(e)),
        };
        if got == 0 {
            return finish(seq, Terminal::Eof);
        }
        if got < FRAME_BYTES {
            return finish(seq, Terminal::TornHeader { got });
        }
        let head = match parse_frame(&frame) {
            Err(error) => {
                let rest = if salvage { src.drain() } else { 0 };
                return finish(seq, Terminal::BadFrame { error, rest });
            }
            Ok(Frame::Footer(foot)) => {
                let trailing = if salvage {
                    Ok(src.drain())
                } else {
                    src.probe_byte()
                };
                return finish(seq, Terminal::Footer { foot, trailing });
            }
            Ok(Frame::Block(head)) => head,
        };
        let (payload, got) = match src.read_payload(head.payload_len as usize) {
            Ok(p) => p,
            Err(e) => return finish(seq, Terminal::Io(e)),
        };
        if got < head.payload_len as usize {
            return finish(seq, Terminal::TornPayload { head, got });
        }
        let in_flight = inflight.fetch_add(1, Ordering::AcqRel) + 1;
        if literace_telemetry::enabled() {
            literace_telemetry::metrics()
                .log_decode_blocks_inflight_hwm
                .record(in_flight);
        }
        literace_telemetry::trace_counter("decode.blocks_inflight", in_flight);
        if jobs
            .send(Job {
                seq,
                frame,
                head,
                payload,
            })
            .is_err()
        {
            // Every worker is gone (pool panic); the consumer's
            // missing-block check surfaces this.
            return finish(
                seq,
                Terminal::Panicked {
                    message: "decode worker pool disconnected".to_owned(),
                },
            );
        }
        seq += 1;
        issued.store(seq, Ordering::Release);
    }
}

/// One decode worker: pulls scanned blocks, verifies the payload
/// checksum, decodes, echoes everything back. Decode panics are contained
/// per block.
fn worker(
    jobs: &Mutex<Receiver<Job>>,
    out: &SyncSender<Done>,
    abort: &AtomicBool,
    rev: u8,
    strict: bool,
) {
    let mut state = BlockState::default();
    loop {
        let idle_start = literace_telemetry::enabled().then(std::time::Instant::now);
        let job = {
            let guard = jobs.lock().expect("decode job queue poisoned");
            match guard.recv() {
                Ok(job) => job,
                Err(_) => return,
            }
        };
        if let Some(t0) = idle_start {
            literace_telemetry::metrics()
                .log_decode_worker_idle_ns
                .add(t0.elapsed().as_nanos() as u64);
        }
        let busy_start = literace_telemetry::enabled().then(std::time::Instant::now);
        literace_telemetry::trace_begin("decode.block");
        let result = if abort.load(Ordering::Acquire) {
            // The consumer only needs the head for byte accounting now;
            // skip the decode work.
            Ok(Vec::new())
        } else {
            decode_job(&mut state, &job, rev)
        };
        literace_telemetry::trace_end("decode.block");
        if let Some(t0) = busy_start {
            let m = literace_telemetry::metrics();
            let ns = t0.elapsed().as_nanos() as u64;
            m.log_decode_worker_busy_ns.add(ns);
            // The sequential reader's per-block decode counters, strict
            // mode only (sequential salvage does not publish them).
            if strict && result.is_ok() {
                m.log_decode_v2_blocks.add(1);
                m.log_decode_v2_bytes
                    .add((FRAME_BYTES as u32 + job.head.payload_len) as u64);
                m.log_decode_v2_records.add(u64::from(job.head.record_count));
                m.log_decode_v2_ns.add(ns);
            }
        }
        let done = Done {
            seq: job.seq,
            frame: job.frame,
            head: job.head,
            payload: job.payload,
            result,
        };
        if out.send(done).is_err() {
            return;
        }
    }
}

fn decode_job(state: &mut BlockState, job: &Job, rev: u8) -> LogResult<Vec<Record>> {
    std::panic::catch_unwind(AssertUnwindSafe(|| {
        if crate::checksum::checksum(&job.payload) != job.head.payload_sum {
            return Err(LogError::corrupt("block payload checksum mismatch"));
        }
        decode_block_with(state, &job.payload, job.head.record_count, rev)
    }))
    .unwrap_or_else(|payload| {
        Err(LogError::DecoderPanicked {
            message: panic_message(payload.as_ref()),
        })
    })
}

/// Byte accounting for a sync-tainted suffix drop in flight: everything
/// after the tainted block is counted, then tallied once at the end with
/// sequential semantics.
struct Taint {
    records: u64,
    block_bytes: u64,
    rest: u64,
}

enum Mode {
    Strict,
    Salvage(Arc<Mutex<SalvageReport>>),
}

/// The in-order consumer: restores sequence order and replays sequential
/// reader semantics over the results.
struct Consumer {
    out: SyncSender<LogResult<Vec<Record>>>,
    abort: Arc<AtomicBool>,
    inflight: Arc<AtomicU64>,
    mode: Mode,
    file_sum: Checksum,
    records_seen: u64,
    /// Output closed: error delivered (strict) or downstream dropped.
    stopped: bool,
    taint: Option<Taint>,
    /// Footer state shared with the [`RecordStream`] handle.
    seal: Arc<Mutex<SealState>>,
}

impl Consumer {
    fn run(
        mut self,
        results: Receiver<Done>,
        terminal: Receiver<(u64, Terminal)>,
    ) {
        let mut pending: BTreeMap<u64, Done> = BTreeMap::new();
        let mut next = 0u64;
        while let Ok(done) = results.recv() {
            if done.seq != next {
                if literace_telemetry::enabled() {
                    literace_telemetry::metrics()
                        .log_decode_ooo_reorder_depth
                        .record(pending.len() as u64 + 1);
                }
                literace_telemetry::trace_instant("consume.reorder");
            }
            pending.insert(done.seq, done);
            while let Some(done) = pending.remove(&next) {
                next += 1;
                self.inflight.fetch_sub(1, Ordering::AcqRel);
                literace_telemetry::trace_begin("consume.block");
                self.handle(done);
                literace_telemetry::trace_end("consume.block");
            }
        }
        // Workers have all exited, so the scanner is finished too and its
        // terminal is waiting (or it died before sending one).
        let (issued, term) = terminal.recv().unwrap_or((
            next,
            Terminal::Panicked {
                message: "decode scanner exited without a terminal event".to_owned(),
            },
        ));
        if next < issued || !pending.is_empty() {
            // A worker died without echoing its block back.
            self.handle_terminal(Terminal::Panicked {
                message: "decode worker dropped a block".to_owned(),
            });
            return;
        }
        self.handle_terminal(term);
    }

    fn stop(&mut self) {
        self.stopped = true;
        self.abort.store(true, Ordering::Release);
    }

    /// Delivers a terminal error downstream (strict mode).
    fn fail(&mut self, e: LogError) {
        count_error(&e);
        let _ = push_output(&self.out, Err(e));
        self.stop();
    }

    fn handle(&mut self, done: Done) {
        if let Some(t) = &mut self.taint {
            // Suffix already dropped: only the byte count matters.
            t.rest += FRAME_BYTES as u64 + u64::from(done.head.payload_len);
            return;
        }
        if self.stopped {
            return;
        }
        match &self.mode {
            Mode::Strict => match done.result {
                Ok(block) => {
                    self.file_sum.update(&done.frame);
                    self.file_sum.update(&done.payload);
                    self.records_seen += u64::from(done.head.record_count);
                    if !push_output(&self.out, Ok(block)) {
                        self.stop();
                    }
                }
                Err(e) => self.fail(e),
            },
            Mode::Salvage(report) => match done.result {
                Ok(block) => {
                    self.file_sum.update(&done.frame);
                    self.file_sum.update(&done.payload);
                    self.records_seen += u64::from(done.head.record_count);
                    {
                        let mut r = report.lock().expect("salvage report poisoned");
                        r.blocks_decoded += 1;
                        r.records_salvaged += block.len() as u64;
                    }
                    if !push_output(&self.out, Ok(block)) {
                        self.stop();
                    }
                }
                Err(e) => {
                    let dropped = FRAME_BYTES as u64 + done.payload.len() as u64;
                    let records = u64::from(done.head.record_count);
                    let mut r = report.lock().expect("salvage report poisoned");
                    r.blocks_skipped += 1;
                    r.records_dropped_known += records;
                    r.bytes_dropped += dropped;
                    r.note_error(e.to_string());
                    if done.head.sync_count > 0 {
                        // Sync records lost: drop the suffix (see
                        // `crate::salvage`). The tally waits until the
                        // drained byte count is known.
                        r.sync_tainted = true;
                        r.suffix_dropped = true;
                        drop(r);
                        self.taint = Some(Taint {
                            records,
                            block_bytes: dropped,
                            rest: 0,
                        });
                        self.abort.store(true, Ordering::Release);
                    } else {
                        drop(r);
                        tally_skip(1, records, dropped);
                    }
                }
            },
        }
    }

    fn handle_terminal(self, term: Terminal) {
        match self.mode {
            Mode::Strict => self.finish_strict(term),
            Mode::Salvage(_) => self.finish_salvage(term),
        }
    }

    fn set_seal(&self, seal: SealState) {
        *self.seal.lock().expect("seal state poisoned") = seal;
    }

    fn finish_strict(mut self, term: Terminal) {
        if self.stopped {
            return;
        }
        match term {
            Terminal::Aborted { .. } => {}
            Terminal::Eof => self.set_seal(SealState::Unsealed),
            Terminal::Footer { foot, trailing } => {
                if foot.total_records != self.records_seen {
                    return self.fail(LogError::corrupt(format!(
                        "footer record count mismatch: footer says {}, decoded {}",
                        foot.total_records, self.records_seen
                    )));
                }
                if foot.file_sum != self.file_sum.finish() {
                    return self.fail(LogError::corrupt("footer stream checksum mismatch"));
                }
                match trailing {
                    Err(e) => self.fail(e),
                    Ok(0) => self.set_seal(SealState::Sealed),
                    Ok(_) => self.fail(LogError::corrupt("trailing bytes after footer")),
                }
            }
            Terminal::TornHeader { got } => self.fail(LogError::corrupt(format!(
                "truncated block header: {got} of {FRAME_BYTES} bytes"
            ))),
            Terminal::BadFrame { error, .. } => self.fail(error),
            Terminal::TornPayload { head, got } => self.fail(LogError::corrupt(format!(
                "truncated block: {got} of {} payload bytes",
                head.payload_len
            ))),
            Terminal::Io(e) => self.fail(e),
            Terminal::Panicked { message } => {
                self.fail(LogError::DecoderPanicked { message })
            }
        }
    }

    fn finish_salvage(self, term: Terminal) {
        let Mode::Salvage(report) = &self.mode else {
            unreachable!("salvage finish in strict mode");
        };
        if let Some(t) = &self.taint {
            // The drained byte count is now complete; tally once, exactly
            // like the sequential path's post-drain accounting.
            let rest = t.rest + term.raw_bytes();
            report
                .lock()
                .expect("salvage report poisoned")
                .bytes_dropped += rest;
            tally_skip(1, t.records, t.block_bytes + rest);
            // Seal stays Unknown: the sequential path never reaches the
            // footer once a tainted block drops the suffix.
            return;
        }
        let mut r = report.lock().expect("salvage report poisoned");
        match term {
            // An abandoned stream (consumer dropped) never reaches a
            // verdict — like a sequential iterator left undriven.
            Terminal::Aborted { .. } => drop(r),
            Terminal::Eof => {
                if r.seal == SealState::Unknown {
                    r.seal = SealState::Unsealed;
                }
                drop(r);
            }
            Terminal::Footer { foot, trailing } => {
                let trailing = trailing.unwrap_or(0);
                r.seal = SealState::Sealed;
                if trailing > 0 {
                    r.bytes_dropped += trailing;
                    r.note_error(format!("{trailing} trailing bytes after footer"));
                }
                let totals_match = foot.total_records == self.records_seen
                    && foot.file_sum == self.file_sum.finish();
                if !totals_match && r.first_error.is_none() {
                    r.note_error(format!(
                        "footer totals mismatch: footer says {} records, decoded {}",
                        foot.total_records, self.records_seen
                    ));
                }
                drop(r);
                if trailing > 0 {
                    tally_skip(0, 0, trailing);
                }
            }
            Terminal::TornHeader { got } => {
                r.bytes_dropped += got as u64;
                r.note_error(format!(
                    "truncated block header: {got} of {FRAME_BYTES} bytes"
                ));
                r.seal = SealState::Unsealed;
                drop(r);
                tally_skip(0, 0, got as u64);
            }
            Terminal::BadFrame { error, rest } => {
                let dropped = FRAME_BYTES as u64 + rest;
                r.bytes_dropped += dropped;
                r.suffix_dropped = true;
                r.sync_tainted = true;
                r.note_error(error.to_string());
                drop(r);
                tally_skip(0, 0, dropped);
            }
            Terminal::TornPayload { head, got } => {
                let dropped = (FRAME_BYTES + got) as u64;
                r.blocks_skipped += 1;
                r.records_dropped_known += u64::from(head.record_count);
                r.bytes_dropped += dropped;
                r.seal = SealState::Unsealed;
                if head.sync_count > 0 {
                    r.sync_tainted = true;
                }
                r.note_error(format!(
                    "truncated block: {got} of {} payload bytes",
                    head.payload_len
                ));
                drop(r);
                tally_skip(1, u64::from(head.record_count), dropped);
            }
            Terminal::Io(e) => {
                r.note_error(e.to_string());
                r.suffix_dropped = true;
                r.sync_tainted = true;
                drop(r);
            }
            Terminal::Panicked { message } => {
                r.note_error(message);
                r.suffix_dropped = true;
                r.sync_tainted = true;
                drop(r);
            }
        }
        let seal = report.lock().expect("salvage report poisoned").seal;
        self.set_seal(seal);
    }
}

/// Spawns the full pool over a v2 source (header already consumed) and
/// returns the stream fed by its in-order consumer.
fn spawn_pool<S: ScanSource + Send + 'static>(
    mut src: S,
    rev: u8,
    opts: DecodeOpts,
    mode: Mode,
) -> LogResult<RecordStream> {
    let threads = opts.threads.max(2);
    let depth = opts.depth.max(1);
    let salvage = matches!(mode, Mode::Salvage(_));

    let (out_tx, out_rx) = sync_channel(depth);
    let (job_tx, job_rx) = sync_channel::<Job>(depth);
    let job_rx = Arc::new(Mutex::new(job_rx));
    let (res_tx, res_rx) = sync_channel::<Done>(depth.max(threads));
    let (term_tx, term_rx) = std::sync::mpsc::channel::<(u64, Terminal)>();
    let abort = Arc::new(AtomicBool::new(false));
    let inflight = Arc::new(AtomicU64::new(0));
    let issued = Arc::new(AtomicU64::new(0));

    let scanner = {
        let abort = abort.clone();
        let inflight = inflight.clone();
        let issued = issued.clone();
        std::thread::Builder::new()
            .name("literace-decode-scan".to_owned())
            .spawn(move || {
                let issued_before_panic = issued.clone();
                let term_on_panic = term_tx.clone();
                let outcome = std::panic::catch_unwind(AssertUnwindSafe(move || {
                    scan(&mut src, &job_tx, &term_tx, &abort, salvage, &issued, &inflight);
                }));
                if let Err(payload) = outcome {
                    let _ = term_on_panic.send((
                        issued_before_panic.load(Ordering::Acquire),
                        Terminal::Panicked {
                            message: panic_message(payload.as_ref()),
                        },
                    ));
                }
            })
            .map_err(LogError::Io)?
    };

    let workers: Vec<_> = (0..threads)
        .map(|i| {
            let job_rx = job_rx.clone();
            let res_tx = res_tx.clone();
            let abort = abort.clone();
            std::thread::Builder::new()
                .name(format!("literace-decode-{i}"))
                .spawn(move || worker(&job_rx, &res_tx, &abort, rev, !salvage))
                .map_err(LogError::Io)
        })
        .collect::<LogResult<_>>()?;
    // The consumer's results loop must end when the workers do.
    drop(res_tx);

    let seal = Arc::new(Mutex::new(SealState::Unknown));
    let consumer = Consumer {
        out: out_tx.clone(),
        abort: abort.clone(),
        inflight,
        mode,
        file_sum: Checksum::new(),
        records_seen: 0,
        stopped: false,
        taint: None,
        seal: seal.clone(),
    };
    let handle = std::thread::Builder::new()
        .name("literace-log-decode".to_owned())
        .spawn(move || {
            let outcome = std::panic::catch_unwind(AssertUnwindSafe(move || {
                consumer.run(res_rx, term_rx);
            }));
            if let Err(payload) = outcome {
                abort.store(true, Ordering::Release);
                let e = LogError::DecoderPanicked {
                    message: panic_message(payload.as_ref()),
                };
                count_error(&e);
                let _ = out_tx.send(Err(e));
            }
            let _ = scanner.join();
            for w in workers {
                let _ = w.join();
            }
        })
        .map_err(LogError::Io)?;
    Ok(RecordStream::from_parts(
        out_rx,
        handle,
        LogFormat::V2,
        Some(seal),
    ))
}

/// Parallel strict decode: errors surface as stream items exactly where
/// the sequential reader would put them.
pub(crate) fn spawn_strict<S: ScanSource + Send + 'static>(
    src: S,
    rev: u8,
    opts: DecodeOpts,
) -> LogResult<RecordStream> {
    spawn_pool(src, rev, opts, Mode::Strict)
}

/// Parallel salvage decode: the stream never yields `Err`; the shared
/// report fills in with the sequential salvage rules applied in sequence
/// order.
pub(crate) fn spawn_salvage<S: ScanSource + Send + 'static>(
    src: S,
    rev: u8,
    opts: DecodeOpts,
) -> LogResult<(RecordStream, SalvageHandle)> {
    if literace_telemetry::enabled() {
        literace_telemetry::metrics().log_salvage_runs.add(1);
    }
    let report = Arc::new(Mutex::new(SalvageReport {
        format: Some(LogFormat::V2),
        ..SalvageReport::default()
    }));
    let handle = SalvageHandle::from_shared(report.clone());
    let stream = spawn_pool(src, rev, opts, Mode::Salvage(report))?;
    Ok((stream, handle))
}

/// Salvage over an unreadable header: an empty stream with the failure
/// recorded — mirrors `open_salvage`'s dead path.
pub(crate) fn spawn_salvage_dead(
    error: LogError,
    opts: DecodeOpts,
) -> LogResult<(RecordStream, SalvageHandle)> {
    if literace_telemetry::enabled() {
        literace_telemetry::metrics().log_salvage_runs.add(1);
    }
    let format = match &error {
        LogError::UnsupportedVersion { .. } => LogFormat::V2,
        _ => LogFormat::V1,
    };
    let mut report = SalvageReport {
        format: Some(format),
        suffix_dropped: true,
        ..SalvageReport::default()
    };
    report.note_error(error.to_string());
    let report = Arc::new(Mutex::new(report));
    let handle = SalvageHandle::from_shared(report);
    let stream = crate::stream::spawn_empty(format, opts.depth)?;
    Ok((stream, handle))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::SamplerMask;
    use crate::salvage::read_log_salvage;
    use crate::v2::{encode_v2, encode_v2_rev, V2_REV_DELTA};
    use literace_sim::{Addr, FuncId, Pc, SyncOpKind, SyncVar, ThreadId};

    fn mixed_records(n: usize) -> Vec<Record> {
        (0..n)
            .map(|i| {
                if i % 7 == 0 {
                    Record::Sync {
                        tid: ThreadId::from_index(i % 4),
                        pc: Pc::new(FuncId::from_index(1), i),
                        kind: SyncOpKind::LockAcquire,
                        var: SyncVar(i as u64 % 3),
                        timestamp: i as u64,
                    }
                } else {
                    Record::Mem {
                        tid: ThreadId::from_index(i % 4),
                        pc: Pc::new(FuncId::from_index(i % 5), i),
                        addr: Addr::global((i % 13) as u64 * 8),
                        is_write: i % 2 == 0,
                        mask: SamplerMask::bit(0),
                    }
                }
            })
            .collect()
    }

    fn multi_block(records: &[Record], rev: u8) -> Vec<u8> {
        let mut w =
            crate::v2::LogWriterV2::with_revision_and_block_bytes(Vec::new(), rev, 256);
        for r in records {
            w.write_record(r).unwrap();
        }
        w.finish().unwrap()
    }

    fn collect_parallel(bytes: Vec<u8>, threads: usize) -> LogResult<Vec<Record>> {
        let stream = RecordStream::spawn_with(
            std::io::Cursor::new(bytes),
            DecodeOpts::with_threads(threads),
        )?;
        let mut out = Vec::new();
        for block in stream {
            out.extend(block?);
        }
        Ok(out)
    }

    #[test]
    fn parallel_round_trips_both_revisions() {
        let records = mixed_records(5000);
        for rev in [V2_REV_DELTA, crate::v2::V2_REV_GV] {
            let bytes = multi_block(&records, rev);
            for threads in [2, 4] {
                let decoded = collect_parallel(bytes.clone(), threads).unwrap();
                assert_eq!(decoded, records, "rev {rev} threads {threads}");
            }
        }
    }

    #[test]
    fn parallel_bytes_source_round_trips() {
        let records = mixed_records(5000);
        let bytes: Vec<u8> = multi_block(&records, crate::v2::V2_REV_GV);
        let stream =
            RecordStream::spawn_bytes(Bytes::from(bytes), DecodeOpts::with_threads(4))
                .unwrap();
        let decoded: Vec<Record> = stream.flat_map(|b| b.unwrap()).collect();
        assert_eq!(decoded, records);
    }

    #[test]
    fn parallel_strict_errors_match_sequential() {
        let records = mixed_records(3000);
        let clean = multi_block(&records, crate::v2::V2_REV_GV);
        // Corruptions: truncated header, truncated payload, flipped payload
        // byte, flipped frame byte, trailing garbage after the footer.
        let mut torn_header = clean.clone();
        torn_header.truncate(5 + 7);
        let mut torn_payload = clean.clone();
        torn_payload.truncate(5 + FRAME_BYTES + 10);
        let mut bad_payload = clean.clone();
        bad_payload[5 + FRAME_BYTES + 3] ^= 0x40;
        let mut bad_frame = clean.clone();
        bad_frame[5 + 2] ^= 0xFF;
        let mut trailing = clean.clone();
        trailing.push(0xAB);
        for bytes in [torn_header, torn_payload, bad_payload, bad_frame, trailing] {
            let seq: Vec<_> = crate::RecordBlocks::open(&bytes[..]).unwrap().collect();
            let par_stream = RecordStream::spawn_with(
                std::io::Cursor::new(bytes),
                DecodeOpts::with_threads(4),
            )
            .unwrap();
            let par: Vec<_> = par_stream.collect();
            assert_eq!(seq.len(), par.len());
            for (s, p) in seq.iter().zip(par.iter()) {
                match (s, p) {
                    (Ok(a), Ok(b)) => assert_eq!(a, b),
                    (Err(a), Err(b)) => assert_eq!(a.to_string(), b.to_string()),
                    _ => panic!("sequential {s:?} vs parallel {p:?}"),
                }
            }
        }
    }

    fn salvage_parallel(bytes: Vec<u8>, threads: usize) -> (Vec<Record>, SalvageReport) {
        let (stream, handle) = RecordStream::spawn_salvage_with(
            std::io::Cursor::new(bytes),
            DecodeOpts::with_threads(threads),
        )
        .unwrap();
        let mut out = Vec::new();
        for block in stream {
            out.extend(block.expect("salvage streams never yield Err"));
        }
        (out, handle.report())
    }

    #[track_caller]
    fn assert_reports_match(seq: &SalvageReport, par: &SalvageReport) {
        assert_eq!(seq.format, par.format);
        assert_eq!(seq.blocks_decoded, par.blocks_decoded);
        assert_eq!(seq.blocks_skipped, par.blocks_skipped);
        assert_eq!(seq.records_salvaged, par.records_salvaged);
        assert_eq!(seq.records_dropped_known, par.records_dropped_known);
        assert_eq!(seq.bytes_dropped, par.bytes_dropped);
        assert_eq!(seq.suffix_dropped, par.suffix_dropped);
        assert_eq!(seq.sync_tainted, par.sync_tainted);
        assert_eq!(seq.seal, par.seal);
        assert_eq!(seq.first_error, par.first_error);
    }

    #[test]
    fn parallel_salvage_matches_sequential() {
        let records = mixed_records(3000);
        let clean = multi_block(&records, crate::v2::V2_REV_GV);
        // Mem-only records so a flipped payload is a skippable block.
        let mem_only: Vec<Record> = mixed_records(3000)
            .into_iter()
            .filter(|r| matches!(r, Record::Mem { .. }))
            .collect();
        let mem_bytes = multi_block(&mem_only, crate::v2::V2_REV_GV);
        let mut cases = vec![clean.clone()];
        let mut torn = clean.clone();
        torn.truncate(clean.len() / 2);
        cases.push(torn);
        let mut sync_taint = clean.clone();
        sync_taint[5 + FRAME_BYTES + 3] ^= 0x40;
        cases.push(sync_taint);
        let mut mem_skip = mem_bytes.clone();
        mem_skip[5 + FRAME_BYTES + 3] ^= 0x40;
        cases.push(mem_skip);
        let mut bad_frame = clean.clone();
        bad_frame[5 + 2] ^= 0xFF;
        cases.push(bad_frame);
        let mut trailing = clean;
        trailing.extend_from_slice(&[1, 2, 3]);
        cases.push(trailing);
        for (i, bytes) in cases.into_iter().enumerate() {
            let (seq_log, seq_report) = read_log_salvage(&bytes[..]);
            for threads in [2, 4] {
                let (par, par_report) = salvage_parallel(bytes.clone(), threads);
                assert_eq!(seq_log.records(), &par[..], "case {i} threads {threads}");
                assert_reports_match(&seq_report, &par_report);
            }
        }
    }

    #[test]
    fn parallel_salvage_dead_header_matches_sequential() {
        let mut bytes = encode_v2(&mixed_records(10)).to_vec();
        bytes[4] = 9; // unsupported revision
        let (_, seq_report) = read_log_salvage(&bytes[..]);
        let (par, par_report) = salvage_parallel(bytes, 4);
        assert!(par.is_empty());
        assert_reports_match(&seq_report, &par_report);
    }

    #[test]
    fn dropping_parallel_stream_midway_does_not_hang() {
        let records = mixed_records(50_000);
        let bytes = multi_block(&records, crate::v2::V2_REV_GV);
        let mut stream = RecordStream::spawn_with(
            std::io::Cursor::new(bytes),
            DecodeOpts::with_threads(4).depth(1),
        )
        .unwrap();
        let first = stream.next().unwrap().unwrap();
        assert!(!first.is_empty());
        drop(stream); // must stop the scanner, workers and consumer
    }

    #[test]
    fn seal_state_tracks_the_footer() {
        let records = mixed_records(2000);
        let sealed = multi_block(&records, crate::v2::V2_REV_GV);
        let mut torn = sealed.clone();
        torn.truncate(sealed.len() - FRAME_BYTES - 3); // cut footer + tail
        for (bytes, expect_err, expect_seal) in [
            (sealed, false, SealState::Sealed),
            (torn, true, SealState::Unknown), // strict error: no verdict
        ] {
            let mut stream = RecordStream::spawn_with(
                std::io::Cursor::new(bytes),
                DecodeOpts::with_threads(4),
            )
            .unwrap();
            assert_eq!(stream.seal_state(), SealState::Unknown);
            let saw_err = stream.by_ref().any(|b| b.is_err());
            assert_eq!(saw_err, expect_err);
            assert!(stream.next().is_none());
            assert_eq!(stream.seal_state(), expect_seal);
        }
    }

    #[test]
    fn old_revision_decodes_through_the_pool() {
        let records = mixed_records(2000);
        let bytes = encode_v2_rev(&records, V2_REV_DELTA).to_vec();
        let decoded = collect_parallel(bytes, 4).unwrap();
        assert_eq!(decoded, records);
    }
}
