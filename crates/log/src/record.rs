//! Log record types.
//!
//! A LiteRace run produces a stream of records (§3.2 of the paper):
//!
//! * **synchronization records** for *every* synchronization operation —
//!   sampling these would cause false positives (Figure 2), so they are
//!   unconditional — carrying the `SyncVar` and a logical timestamp, and
//! * **memory-access records** for the *sampled* subset of data accesses.
//!
//! In the multi-sampler evaluation mode (§5.3) every memory access is logged
//! and annotated with a bitmask saying which of the concurrently simulated
//! samplers would have logged it; detection is then run on per-sampler
//! subsets of one identical execution.

use serde::{Deserialize, Serialize};

use literace_sim::{Addr, Pc, SyncOpKind, SyncVar, ThreadId};

/// Bitmask of samplers that would have logged a memory access.
///
/// Bit *i* corresponds to sampler *i* in the evaluation's sampler list. A
/// single-sampler run uses [`SamplerMask::FULL`] semantics with bit 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct SamplerMask(pub u32);

impl SamplerMask {
    /// No sampler logged the access.
    pub const EMPTY: SamplerMask = SamplerMask(0);
    /// Every sampler slot set — used for ground-truth (full) logs.
    pub const FULL: SamplerMask = SamplerMask(u32::MAX);

    /// Mask with only bit `i` set.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 32`.
    pub fn bit(i: usize) -> SamplerMask {
        assert!(i < 32, "sampler index {i} out of mask range");
        SamplerMask(1 << i)
    }

    /// Whether sampler `i`'s bit is set.
    pub fn contains(self, i: usize) -> bool {
        i < 32 && self.0 & (1 << i) != 0
    }

    /// Union of two masks.
    pub fn union(self, other: SamplerMask) -> SamplerMask {
        SamplerMask(self.0 | other.0)
    }

    /// Bits set in `self` but not in `other`.
    pub fn minus(self, other: SamplerMask) -> SamplerMask {
        SamplerMask(self.0 & !other.0)
    }

    /// Whether no bits are set.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }
}

/// One record of the event log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Record {
    /// A synchronization operation (always logged).
    Sync {
        /// Executing thread.
        tid: ThreadId,
        /// Static site.
        pc: Pc,
        /// Operation kind (happens-before role).
        kind: SyncOpKind,
        /// The synchronization variable (Table 1).
        var: SyncVar,
        /// Logical timestamp from the hashed counter bank (§4.2): orders
        /// operations on the same `var`.
        timestamp: u64,
    },
    /// A data memory access (logged when sampled).
    Mem {
        /// Executing thread.
        tid: ThreadId,
        /// Static site — the "program counter value" the paper logs.
        pc: Pc,
        /// Target address.
        addr: Addr,
        /// Whether the access is a write.
        is_write: bool,
        /// Which evaluated samplers would have logged this access.
        mask: SamplerMask,
    },
    /// Start-of-thread marker (orders a thread's records after its fork).
    ThreadBegin {
        /// The thread that began.
        tid: ThreadId,
    },
    /// End-of-thread marker.
    ThreadEnd {
        /// The thread that ended.
        tid: ThreadId,
    },
}

impl Record {
    /// The thread this record belongs to.
    pub fn tid(&self) -> ThreadId {
        match *self {
            Record::Sync { tid, .. }
            | Record::Mem { tid, .. }
            | Record::ThreadBegin { tid }
            | Record::ThreadEnd { tid } => tid,
        }
    }

    /// Whether this is a memory-access record.
    pub fn is_mem(&self) -> bool {
        matches!(self, Record::Mem { .. })
    }

    /// Whether this is a synchronization record.
    pub fn is_sync(&self) -> bool {
        matches!(self, Record::Sync { .. })
    }
}

/// An in-memory event log: the unit the offline detector consumes.
///
/// Records appear in the global linearization order of the run (which embeds
/// each thread's program order).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EventLog {
    records: Vec<Record>,
}

impl EventLog {
    /// Creates an empty log.
    pub fn new() -> EventLog {
        EventLog::default()
    }

    /// Appends a record.
    pub fn push(&mut self, record: Record) {
        self.records.push(record);
    }

    /// The records in order.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterates over records.
    pub fn iter(&self) -> std::slice::Iter<'_, Record> {
        self.records.iter()
    }

    /// Number of memory-access records.
    pub fn mem_count(&self) -> usize {
        self.records.iter().filter(|r| r.is_mem()).count()
    }

    /// Number of synchronization records.
    pub fn sync_count(&self) -> usize {
        self.records.iter().filter(|r| r.is_sync()).count()
    }

    /// Splits this log into per-thread logs, preserving each thread's
    /// order — the shape the paper's instrumentation actually writes (one
    /// buffer per thread, §4.1). Reassemble a global order with the
    /// timestamp-directed merge in the detector crate.
    pub fn split_by_thread(&self) -> Vec<(literace_sim::ThreadId, EventLog)> {
        let mut map: std::collections::HashMap<literace_sim::ThreadId, EventLog> =
            std::collections::HashMap::new();
        let mut order: Vec<literace_sim::ThreadId> = Vec::new();
        for r in &self.records {
            let tid = r.tid();
            if !map.contains_key(&tid) {
                order.push(tid);
            }
            map.entry(tid).or_default().push(*r);
        }
        order
            .into_iter()
            .map(|tid| {
                let l = map.remove(&tid).expect("tid recorded in order");
                (tid, l)
            })
            .collect()
    }

    /// A copy of this log keeping only memory accesses whose mask contains
    /// sampler `i` (synchronization and marker records are always kept) —
    /// the per-sampler subset detection of §5.3.
    pub fn sampler_subset(&self, i: usize) -> EventLog {
        let records = self
            .records
            .iter()
            .filter(|r| match r {
                Record::Mem { mask, .. } => mask.contains(i),
                _ => true,
            })
            .copied()
            .collect();
        EventLog { records }
    }
}

impl FromIterator<Record> for EventLog {
    fn from_iter<I: IntoIterator<Item = Record>>(iter: I) -> EventLog {
        EventLog {
            records: iter.into_iter().collect(),
        }
    }
}

impl Extend<Record> for EventLog {
    fn extend<I: IntoIterator<Item = Record>>(&mut self, iter: I) {
        self.records.extend(iter);
    }
}

impl<'a> IntoIterator for &'a EventLog {
    type Item = &'a Record;
    type IntoIter = std::slice::Iter<'a, Record>;
    fn into_iter(self) -> Self::IntoIter {
        self.records.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use literace_sim::FuncId;

    fn mem(i: usize, mask: SamplerMask) -> Record {
        Record::Mem {
            tid: ThreadId::MAIN,
            pc: Pc::new(FuncId::from_index(0), i),
            addr: Addr::global(i as u64),
            is_write: true,
            mask,
        }
    }

    #[test]
    fn mask_bits() {
        let m = SamplerMask::bit(3).union(SamplerMask::bit(5));
        assert!(m.contains(3));
        assert!(m.contains(5));
        assert!(!m.contains(4));
        assert!(!SamplerMask::EMPTY.contains(0));
        assert!(SamplerMask::FULL.contains(31));
    }

    #[test]
    #[should_panic(expected = "out of mask range")]
    fn mask_bit_bounds() {
        let _ = SamplerMask::bit(32);
    }

    #[test]
    fn sampler_subset_filters_only_mem_records() {
        let mut log = EventLog::new();
        log.push(Record::ThreadBegin {
            tid: ThreadId::MAIN,
        });
        log.push(mem(0, SamplerMask::bit(0)));
        log.push(mem(1, SamplerMask::bit(1)));
        log.push(Record::Sync {
            tid: ThreadId::MAIN,
            pc: Pc::new(FuncId::from_index(0), 9),
            kind: SyncOpKind::LockAcquire,
            var: SyncVar(1),
            timestamp: 1,
        });
        let s0 = log.sampler_subset(0);
        assert_eq!(s0.len(), 3);
        assert_eq!(s0.mem_count(), 1);
        assert_eq!(s0.sync_count(), 1);
        let s1 = log.sampler_subset(1);
        assert_eq!(s1.mem_count(), 1);
        // Different subsets kept different accesses.
        assert_ne!(s0.records()[1], s1.records()[1]);
    }

    #[test]
    fn collect_and_extend() {
        let log: EventLog = (0..4).map(|i| mem(i, SamplerMask::FULL)).collect();
        assert_eq!(log.len(), 4);
        let mut log2 = EventLog::new();
        log2.extend(log.iter().copied());
        assert_eq!(log, log2);
    }
}
