//! Error type for log encoding, decoding and I/O.

use std::error::Error;
use std::fmt;
use std::io;

/// Result alias for log operations.
pub type LogResult<T> = Result<T, LogError>;

/// Errors produced while reading or writing event logs.
#[derive(Debug)]
#[non_exhaustive]
pub enum LogError {
    /// The byte stream is not a valid log.
    Corrupt {
        /// Description of the malformation.
        reason: String,
    },
    /// The stream claims to be a versioned log but the magic bytes are
    /// wrong (e.g. a truncated header or an unrelated file).
    BadMagic {
        /// The bytes found where the magic was expected.
        found: Vec<u8>,
    },
    /// The stream is a versioned log of a version this build cannot read.
    UnsupportedVersion {
        /// The version byte found in the header.
        found: u8,
        /// The highest version this reader supports.
        supported: u8,
    },
    /// An underlying I/O failure.
    Io(io::Error),
    /// A write or finish was attempted on a writer that has already been
    /// finished (its sink was taken by a previous `finish`).
    WriterFinished,
    /// The background decoder thread panicked; the panic was contained and
    /// surfaced as a stream item instead of a hung channel.
    DecoderPanicked {
        /// The panic payload, when it was a string.
        message: String,
    },
}

impl LogError {
    pub(crate) fn corrupt(reason: impl Into<String>) -> LogError {
        LogError::Corrupt {
            reason: reason.into(),
        }
    }

    /// Stable lowercase name of this error's variant — the key used for
    /// the `log.errors.*` telemetry counters.
    pub fn kind_name(&self) -> &'static str {
        match self {
            LogError::Corrupt { .. } => "corrupt",
            LogError::BadMagic { .. } => "bad_magic",
            LogError::UnsupportedVersion { .. } => "unsupported_version",
            LogError::Io(_) => "io",
            LogError::WriterFinished => "writer_finished",
            LogError::DecoderPanicked { .. } => "decoder_panicked",
        }
    }
}

/// Bumps the telemetry counter keyed by `e`'s variant. Called at the
/// points where a read error surfaces to a consumer (iterator items and
/// stream openers), never on internal propagation, so each failure counts
/// once.
pub(crate) fn count_error(e: &LogError) {
    if literace_telemetry::enabled() {
        let m = literace_telemetry::metrics();
        match e {
            LogError::Corrupt { .. } => m.log_errors_corrupt.add(1),
            LogError::BadMagic { .. } => m.log_errors_bad_magic.add(1),
            LogError::UnsupportedVersion { .. } => m.log_errors_unsupported_version.add(1),
            LogError::Io(_) => m.log_errors_io.add(1),
            LogError::WriterFinished => m.log_errors_writer_finished.add(1),
            LogError::DecoderPanicked { .. } => m.log_errors_decoder_panicked.add(1),
        }
    }
}

impl fmt::Display for LogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogError::Corrupt { reason } => write!(f, "corrupt log: {reason}"),
            LogError::BadMagic { found } => {
                write!(f, "bad log magic: expected a log header, found {found:02X?}")
            }
            LogError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported log version {found} (this reader supports up to v{supported})"
            ),
            LogError::Io(e) => write!(f, "log i/o error: {e}"),
            LogError::WriterFinished => {
                write!(f, "log writer already finished (sink was taken)")
            }
            LogError::DecoderPanicked { message } => {
                write!(f, "log decoder thread panicked: {message}")
            }
        }
    }
}

impl Error for LogError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LogError::Io(e) => Some(e),
            LogError::Corrupt { .. }
            | LogError::BadMagic { .. }
            | LogError::UnsupportedVersion { .. }
            | LogError::WriterFinished
            | LogError::DecoderPanicked { .. } => None,
        }
    }
}

impl From<io::Error> for LogError {
    fn from(e: io::Error) -> LogError {
        LogError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_reason() {
        let e = LogError::corrupt("bad tag");
        assert_eq!(e.to_string(), "corrupt log: bad tag");
    }

    #[test]
    fn io_errors_convert() {
        let e: LogError = io::Error::other("boom").into();
        assert!(e.to_string().contains("boom"));
        assert!(e.source().is_some());
    }

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(LogError::corrupt("x").kind_name(), "corrupt");
        assert_eq!(LogError::BadMagic { found: vec![] }.kind_name(), "bad_magic");
        assert_eq!(
            LogError::UnsupportedVersion {
                found: 9,
                supported: 2
            }
            .kind_name(),
            "unsupported_version"
        );
        assert_eq!(
            LogError::Io(io::Error::other("x")).kind_name(),
            "io"
        );
        assert_eq!(LogError::WriterFinished.kind_name(), "writer_finished");
        assert_eq!(
            LogError::DecoderPanicked {
                message: "x".into()
            }
            .kind_name(),
            "decoder_panicked"
        );
    }
}
