//! Directory layout for per-thread log files.
//!
//! The paper's instrumentation writes one buffer per thread and the offline
//! detector consumes the set (§4.1, §4.4). These helpers define the on-disk
//! convention — `thread<N>.lrlog` inside a run directory — and the reader
//! that reconstructs the `(ThreadId, EventLog)` pairs the detector's merge
//! expects.

use std::fs::File;
use std::path::{Path, PathBuf};

use literace_sim::ThreadId;

use crate::error::{LogError, LogResult};
use crate::io::{LogReader, LogWriter};
use crate::record::EventLog;

/// File name for one thread's log.
fn thread_file_name(tid: ThreadId) -> String {
    format!("thread{}.lrlog", tid.index())
}

/// Writes per-thread logs into `dir` (created if missing), one
/// `thread<N>.lrlog` per entry. Returns the paths written.
///
/// # Errors
///
/// Propagates I/O errors; previously existing thread files in the directory
/// are overwritten.
pub fn write_thread_logs(
    dir: &Path,
    logs: &[(ThreadId, EventLog)],
) -> LogResult<Vec<PathBuf>> {
    std::fs::create_dir_all(dir).map_err(LogError::Io)?;
    let mut paths = Vec::with_capacity(logs.len());
    for (tid, log) in logs {
        let path = dir.join(thread_file_name(*tid));
        let mut w = LogWriter::new(File::create(&path).map_err(LogError::Io)?);
        for r in log {
            w.write_record(r)?;
        }
        w.finish()?;
        paths.push(path);
    }
    Ok(paths)
}

/// Reads every `thread<N>.lrlog` in `dir`, returning `(tid, log)` pairs
/// sorted by thread id.
///
/// # Errors
///
/// Returns [`LogError::Io`] on filesystem problems and
/// [`LogError::Corrupt`] for malformed files or file names.
pub fn read_thread_logs(dir: &Path) -> LogResult<Vec<(ThreadId, EventLog)>> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir).map_err(LogError::Io)? {
        let entry = entry.map_err(LogError::Io)?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(stem) = name.strip_prefix("thread").and_then(|s| s.strip_suffix(".lrlog"))
        else {
            continue;
        };
        let index: usize = stem.parse().map_err(|_| {
            LogError::Corrupt {
                reason: format!("bad thread log file name `{name}`"),
            }
        })?;
        let log = LogReader::new(File::open(entry.path()).map_err(LogError::Io)?).read_all()?;
        out.push((ThreadId::from_index(index), log));
    }
    out.sort_by_key(|(tid, _)| *tid);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{Record, SamplerMask};
    use literace_sim::{Addr, FuncId, Pc};

    fn sample_logs() -> Vec<(ThreadId, EventLog)> {
        (0..3usize)
            .map(|t| {
                let tid = ThreadId::from_index(t);
                let log: EventLog = (0..(t + 1) * 4)
                    .map(|i| Record::Mem {
                        tid,
                        pc: Pc::new(FuncId::from_index(0), i),
                        addr: Addr::global(i as u64),
                        is_write: true,
                        mask: SamplerMask::FULL,
                    })
                    .collect();
                (tid, log)
            })
            .collect()
    }

    #[test]
    fn write_then_read_round_trips() {
        let dir = std::env::temp_dir().join("literace_log_dir_test");
        let _ = std::fs::remove_dir_all(&dir);
        let logs = sample_logs();
        let paths = write_thread_logs(&dir, &logs).unwrap();
        assert_eq!(paths.len(), 3);
        let back = read_thread_logs(&dir).unwrap();
        assert_eq!(back, logs);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unrelated_files_are_ignored() {
        let dir = std::env::temp_dir().join("literace_log_dir_test2");
        let _ = std::fs::remove_dir_all(&dir);
        let logs = sample_logs();
        write_thread_logs(&dir, &logs).unwrap();
        std::fs::write(dir.join("notes.txt"), b"not a log").unwrap();
        let back = read_thread_logs(&dir).unwrap();
        assert_eq!(back.len(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_directory_is_an_io_error() {
        let err = read_thread_logs(Path::new("/nonexistent/literace")).unwrap_err();
        assert!(matches!(err, LogError::Io(_)));
    }
}
