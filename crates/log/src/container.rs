//! Sealed section containers: the v2 framing discipline applied to
//! non-log payloads.
//!
//! Detector checkpoints (and any future sidecar artifact) need exactly
//! the integrity guarantees the v2 log format already provides — framed,
//! checksummed sections; a sealing footer whose absence is detectable; a
//! whole-file running checksum so a spliced or bit-flipped body can never
//! masquerade as sealed — but with a different payload grammar. This
//! module reuses the v2 frame machinery ([`make_block_frame`],
//! [`make_footer`], [`parse_frame`]) under a caller-supplied magic:
//!
//! ```text
//! file    := magic(4) version(1) section* footer
//! section := payload_len(u32 LE) item_count(u32 LE) section_id(u32 LE)
//!            head_sum(u32 LE)    payload_sum(u64 LE) payload
//! footer  := sentinel(u32 LE: 0xFFFF_FFFF) total_sections(u64 LE)
//!            file_sum(u64 LE)   foot_sum(u32 LE)
//! ```
//!
//! The only layout difference from a v2 log is semantic: the third frame
//! field carries a section id instead of a sync count (still covered by
//! `head_sum`), and the footer total counts sections, not records.
//!
//! Unlike log reading, container reading is **strict**: containers are
//! written through [`AtomicFile`](crate::AtomicFile), so a reader should
//! never see a torn one under normal operation — an unsealed, truncated,
//! or checksum-failing container is always a typed [`LogError`], never a
//! best-effort partial decode.

use std::io::Write;

use crate::checksum::Checksum;
use crate::error::{LogError, LogResult};
use crate::v2::{make_block_frame, make_footer, parse_frame, Frame, FRAME_BYTES};

/// Writes a sealed section container to any [`Write`] sink.
///
/// Sections are appended with [`section`](ContainerWriter::section) and
/// the file is sealed by [`finish`](ContainerWriter::finish); a container
/// whose writer never reached `finish` has no footer and is rejected by
/// [`read_container`] as unsealed.
#[derive(Debug)]
pub struct ContainerWriter<W: Write> {
    sink: W,
    sections: u64,
    /// Running checksum over every byte after the 5-byte file header;
    /// finalized into the footer (which is itself excluded).
    file_sum: Checksum,
}

impl<W: Write> ContainerWriter<W> {
    /// Opens a container, writing the 5-byte `magic + version` header.
    pub fn new(mut sink: W, magic: [u8; 4], version: u8) -> LogResult<ContainerWriter<W>> {
        sink.write_all(&magic)?;
        sink.write_all(&[version])?;
        Ok(ContainerWriter {
            sink,
            sections: 0,
            file_sum: Checksum::new(),
        })
    }

    /// Appends one framed, checksummed section.
    pub fn section(&mut self, id: u32, item_count: u32, payload: &[u8]) -> LogResult<()> {
        let frame = make_block_frame(payload, item_count, id);
        self.sink.write_all(&frame)?;
        self.sink.write_all(payload)?;
        self.file_sum.update(&frame);
        self.file_sum.update(payload);
        self.sections += 1;
        Ok(())
    }

    /// Seals the container with the footer and returns the sink.
    pub fn finish(mut self) -> LogResult<W> {
        let footer = make_footer(self.sections, self.file_sum.finish());
        self.sink.write_all(&footer)?;
        self.sink.flush()?;
        Ok(self.sink)
    }
}

/// One decoded container section, borrowing its payload from the input.
#[derive(Debug, Clone, Copy)]
pub struct ContainerSection<'a> {
    /// Caller-defined section id (the third frame field).
    pub id: u32,
    /// Caller-defined item count (the second frame field).
    pub item_count: u32,
    /// The section payload, checksum-verified.
    pub payload: &'a [u8],
}

/// Parses and fully verifies a sealed container: magic, version, every
/// section frame and payload checksum, the mandatory footer, the section
/// total, the whole-file running checksum, and the absence of trailing
/// bytes. Any failure is a typed error — a container is either perfectly
/// intact or rejected.
pub fn read_container(
    bytes: &[u8],
    magic: [u8; 4],
    version: u8,
) -> LogResult<Vec<ContainerSection<'_>>> {
    if bytes.len() < 5 {
        return Err(LogError::BadMagic {
            found: bytes.to_vec(),
        });
    }
    if bytes[..4] != magic {
        return Err(LogError::BadMagic {
            found: bytes[..4].to_vec(),
        });
    }
    if bytes[4] != version {
        return Err(LogError::UnsupportedVersion {
            found: bytes[4],
            supported: version,
        });
    }
    let mut sections = Vec::new();
    let mut file_sum = Checksum::new();
    let mut at = 5usize;
    loop {
        if bytes.len() - at < FRAME_BYTES {
            return Err(LogError::corrupt(
                "unsealed container: input ends without a footer",
            ));
        }
        let frame: &[u8; FRAME_BYTES] = bytes[at..at + FRAME_BYTES].try_into().unwrap();
        match parse_frame(frame)? {
            Frame::Footer(foot) => {
                at += FRAME_BYTES;
                if at != bytes.len() {
                    return Err(LogError::corrupt("trailing bytes after container footer"));
                }
                if foot.total_records != sections.len() as u64 {
                    return Err(LogError::corrupt(format!(
                        "container footer declares {} sections, found {}",
                        foot.total_records,
                        sections.len()
                    )));
                }
                if foot.file_sum != file_sum.finish() {
                    return Err(LogError::corrupt("container stream checksum mismatch"));
                }
                return Ok(sections);
            }
            Frame::Block(head) => {
                let body_at = at + FRAME_BYTES;
                let len = head.payload_len as usize;
                if bytes.len() - body_at < len {
                    return Err(LogError::corrupt(
                        "container section payload extends past end of input",
                    ));
                }
                let payload = &bytes[body_at..body_at + len];
                if crate::checksum::checksum(payload) != head.payload_sum {
                    return Err(LogError::corrupt("container section checksum mismatch"));
                }
                file_sum.update(frame);
                file_sum.update(payload);
                sections.push(ContainerSection {
                    id: head.sync_count,
                    item_count: head.record_count,
                    payload,
                });
                at = body_at + len;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAGIC: [u8; 4] = *b"LRT\x01";
    const VERSION: u8 = 1;

    fn sealed(sections: &[(u32, u32, &[u8])]) -> Vec<u8> {
        let mut w = ContainerWriter::new(Vec::new(), MAGIC, VERSION).unwrap();
        for &(id, items, payload) in sections {
            w.section(id, items, payload).unwrap();
        }
        w.finish().unwrap()
    }

    #[test]
    fn round_trips_sections_in_order() {
        let bytes = sealed(&[(7, 3, b"alpha"), (9, 0, b""), (7, 1, b"beta")]);
        let sections = read_container(&bytes, MAGIC, VERSION).unwrap();
        assert_eq!(sections.len(), 3);
        assert_eq!(
            sections
                .iter()
                .map(|s| (s.id, s.item_count, s.payload))
                .collect::<Vec<_>>(),
            vec![
                (7, 3, b"alpha".as_slice()),
                (9, 0, b"".as_slice()),
                (7, 1, b"beta".as_slice())
            ]
        );
    }

    #[test]
    fn empty_container_is_valid() {
        let bytes = sealed(&[]);
        assert!(read_container(&bytes, MAGIC, VERSION).unwrap().is_empty());
    }

    #[test]
    fn wrong_magic_and_version_are_typed() {
        let bytes = sealed(&[(1, 1, b"x")]);
        assert!(matches!(
            read_container(&bytes, *b"ZZZZ", VERSION),
            Err(LogError::BadMagic { .. })
        ));
        assert!(matches!(
            read_container(&bytes, MAGIC, VERSION + 1),
            Err(LogError::UnsupportedVersion { .. })
        ));
    }

    #[test]
    fn missing_footer_is_unsealed() {
        let mut w = ContainerWriter::new(Vec::new(), MAGIC, VERSION).unwrap();
        w.section(1, 1, b"payload").unwrap();
        let bytes = w.sink; // drop without finish: no footer
        let err = read_container(&bytes, MAGIC, VERSION).unwrap_err();
        assert!(err.to_string().contains("unsealed"), "{err}");
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let bytes = sealed(&[(1, 2, b"hello world"), (2, 1, b"tail")]);
        for cut in 0..bytes.len() {
            let err = read_container(&bytes[..cut], MAGIC, VERSION).unwrap_err();
            let _ = err.to_string();
        }
    }

    #[test]
    fn every_single_bit_flip_is_rejected() {
        let bytes = sealed(&[(1, 2, b"hello world"), (2, 1, b"tail")]);
        for off in 0..bytes.len() {
            for bit in [0x01u8, 0x80] {
                let mut bad = bytes.clone();
                bad[off] ^= bit;
                assert!(
                    read_container(&bad, MAGIC, VERSION).is_err(),
                    "flip at {off} mask {bit:#x} must not verify"
                );
            }
        }
    }

    #[test]
    fn trailing_bytes_after_footer_are_rejected() {
        let mut bytes = sealed(&[(1, 1, b"x")]);
        bytes.push(0);
        let err = read_container(&bytes, MAGIC, VERSION).unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
    }
}
