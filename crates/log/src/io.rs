//! Streaming log writer and reader over `std::io`.
//!
//! The paper writes its event stream to disk and detects offline (§4.4).
//! [`LogWriter`] and [`LogReader`] provide the same capability for our logs;
//! they also work over in-memory buffers, which is what the test suite uses.

use std::io::{Read, Write};

use bytes::{Bytes, BytesMut};

use crate::codec::{decode, encode};
use crate::error::{LogError, LogResult};
use crate::record::{EventLog, Record};

/// Writes records to an underlying byte sink.
///
/// Pass a `&mut` reference if you need the writer back (readers and writers
/// are taken by value per the standard-library convention).
#[derive(Debug)]
pub struct LogWriter<W> {
    sink: W,
    buf: BytesMut,
    records_written: u64,
    bytes_written: u64,
}

impl<W: Write> LogWriter<W> {
    /// Creates a writer over `sink`.
    pub fn new(sink: W) -> LogWriter<W> {
        LogWriter {
            sink,
            buf: BytesMut::with_capacity(64 * 1024),
            records_written: 0,
            bytes_written: 0,
        }
    }

    /// Appends one record.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the sink when the internal buffer flushes.
    pub fn write_record(&mut self, record: &Record) -> LogResult<()> {
        encode(record, &mut self.buf);
        self.records_written += 1;
        if self.buf.len() >= 48 * 1024 {
            self.flush_buf()?;
        }
        Ok(())
    }

    fn flush_buf(&mut self) -> LogResult<()> {
        self.bytes_written += self.buf.len() as u64;
        self.sink.write_all(&self.buf)?;
        self.buf.clear();
        Ok(())
    }

    /// Flushes buffered bytes and returns the sink.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the final flush.
    pub fn finish(mut self) -> LogResult<W> {
        self.flush_buf()?;
        self.sink.flush()?;
        Ok(self.sink)
    }

    /// Records written so far.
    pub fn records_written(&self) -> u64 {
        self.records_written
    }

    /// Bytes written so far, including still-buffered bytes.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written + self.buf.len() as u64
    }
}

/// Reads records from an underlying byte source.
#[derive(Debug)]
pub struct LogReader<R> {
    source: R,
}

impl<R: Read> LogReader<R> {
    /// Creates a reader over `source`.
    pub fn new(source: R) -> LogReader<R> {
        LogReader { source }
    }

    /// Reads the entire source into an [`EventLog`].
    ///
    /// # Errors
    ///
    /// Returns [`LogError::Io`] on read failure or [`LogError::Corrupt`] on
    /// malformed bytes.
    pub fn read_all(mut self) -> LogResult<EventLog> {
        let mut raw = Vec::new();
        self.source.read_to_end(&mut raw).map_err(LogError::Io)?;
        let mut bytes = Bytes::from(raw);
        let mut log = EventLog::new();
        while !bytes.is_empty() {
            log.push(decode(&mut bytes)?);
        }
        Ok(log)
    }
}

/// Serializes a whole [`EventLog`] to bytes.
pub fn log_to_bytes(log: &EventLog) -> Bytes {
    crate::codec::encode_all(log.records())
}

/// Deserializes an [`EventLog`] from bytes.
///
/// # Errors
///
/// Returns [`LogError::Corrupt`] on malformed input.
pub fn log_from_bytes(bytes: Bytes) -> LogResult<EventLog> {
    Ok(crate::codec::decode_all(bytes)?.into_iter().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use literace_sim::{Addr, FuncId, Pc, ThreadId};

    use crate::record::SamplerMask;

    fn some_records(n: usize) -> Vec<Record> {
        (0..n)
            .map(|i| Record::Mem {
                tid: ThreadId::from_index(i % 3),
                pc: Pc::new(FuncId::from_index(i % 5), i),
                addr: Addr::global((i % 7) as u64),
                is_write: i % 2 == 0,
                mask: SamplerMask((i % 16) as u32),
            })
            .collect()
    }

    #[test]
    fn writer_reader_round_trip() {
        let records = some_records(10_000);
        let mut w = LogWriter::new(Vec::new());
        for r in &records {
            w.write_record(r).unwrap();
        }
        assert_eq!(w.records_written(), 10_000);
        let bytes = w.finish().unwrap();
        let log = LogReader::new(&bytes[..]).read_all().unwrap();
        assert_eq!(log.records(), &records[..]);
    }

    #[test]
    fn bytes_written_counts_buffered_bytes() {
        let mut w = LogWriter::new(Vec::new());
        let r = some_records(1);
        w.write_record(&r[0]).unwrap();
        assert_eq!(w.bytes_written(), crate::codec::MEM_RECORD_BYTES as u64);
    }

    #[test]
    fn event_log_byte_round_trip() {
        let log: EventLog = some_records(100).into_iter().collect();
        let bytes = log_to_bytes(&log);
        let back = log_from_bytes(bytes).unwrap();
        assert_eq!(log, back);
    }
}
