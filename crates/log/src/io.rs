//! Streaming log writer and reader over `std::io`.
//!
//! The paper writes its event stream to disk and detects offline (§4.4).
//! [`LogWriter`] and [`LogReader`] provide the same capability for our logs;
//! they also work over in-memory buffers, which is what the test suite uses.

use std::io::{Read, Write};

use bytes::{Bytes, BytesMut};

use crate::codec::{decode, encode, tag_len};
use crate::error::{LogError, LogResult};
use crate::record::{EventLog, Record};

/// Default chunk size for [`LogReader::read_chunked`] and
/// [`LogReader::records`].
pub const DEFAULT_CHUNK_BYTES: usize = 256 * 1024;

/// Writes records to an underlying byte sink.
///
/// Pass a `&mut` reference if you need the writer back (readers and writers
/// are taken by value per the standard-library convention).
///
/// Buffered bytes are flushed by [`finish`](LogWriter::finish) — which is
/// the only place flush *errors* are observable — or, best-effort, on
/// drop, so a writer that goes out of scope early cannot silently truncate
/// the log.
#[derive(Debug)]
pub struct LogWriter<W: Write> {
    sink: Option<W>,
    buf: BytesMut,
    records_written: u64,
    bytes_written: u64,
    /// Records already reported to telemetry (counted per flush, so the
    /// per-record path stays untouched).
    records_reported: u64,
}

impl<W: Write> LogWriter<W> {
    /// Creates a writer over `sink`.
    pub fn new(sink: W) -> LogWriter<W> {
        LogWriter {
            sink: Some(sink),
            buf: BytesMut::with_capacity(64 * 1024),
            records_written: 0,
            bytes_written: 0,
            records_reported: 0,
        }
    }

    /// Appends one record.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the sink when the internal buffer
    /// flushes; [`LogError::WriterFinished`] after [`finish`].
    ///
    /// [`finish`]: LogWriter::finish
    pub fn write_record(&mut self, record: &Record) -> LogResult<()> {
        if self.sink.is_none() {
            let e = LogError::WriterFinished;
            crate::error::count_error(&e);
            return Err(e);
        }
        encode(record, &mut self.buf);
        self.records_written += 1;
        if self.buf.len() >= 48 * 1024 {
            self.flush_buf()?;
        }
        Ok(())
    }

    fn flush_buf(&mut self) -> LogResult<()> {
        let sink = self.sink.as_mut().ok_or(LogError::WriterFinished)?;
        sink.write_all(&self.buf)?;
        self.bytes_written += self.buf.len() as u64;
        if literace_telemetry::enabled() {
            let m = literace_telemetry::metrics();
            m.log_encode_v1_bytes.add(self.buf.len() as u64);
            m.log_encode_v1_records
                .add(self.records_written - self.records_reported);
            self.records_reported = self.records_written;
        }
        self.buf.clear();
        Ok(())
    }

    /// Flushes buffered bytes and returns the sink. The writer is inert
    /// afterwards: further writes or a second `finish` return
    /// [`LogError::WriterFinished`] instead of panicking.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the final flush;
    /// [`LogError::WriterFinished`] when already finished.
    pub fn finish(&mut self) -> LogResult<W> {
        self.flush_buf()?;
        let mut sink = self.sink.take().ok_or(LogError::WriterFinished)?;
        sink.flush()?;
        Ok(sink)
    }

    /// Records written so far.
    pub fn records_written(&self) -> u64 {
        self.records_written
    }

    /// Bytes written so far, including still-buffered bytes.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written + self.buf.len() as u64
    }
}

impl<W: Write> Drop for LogWriter<W> {
    /// Best-effort flush of buffered bytes. Errors are swallowed here —
    /// call [`finish`](LogWriter::finish) to observe them.
    fn drop(&mut self) {
        if let Some(sink) = self.sink.as_mut() {
            if !self.buf.is_empty() {
                let _ = sink.write_all(&self.buf);
                self.buf.clear();
            }
            let _ = sink.flush();
        }
    }
}

/// Reads records from an underlying byte source.
#[derive(Debug)]
pub struct LogReader<R> {
    source: R,
}

impl<R: Read> LogReader<R> {
    /// Creates a reader over `source`.
    pub fn new(source: R) -> LogReader<R> {
        LogReader { source }
    }

    /// Reads the entire source into an [`EventLog`].
    ///
    /// Decodes in fixed-size chunks (see [`read_chunked`]); peak memory is
    /// the decoded log plus one chunk, never the whole encoded stream.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::Io`] on read failure or [`LogError::Corrupt`] on
    /// malformed bytes.
    ///
    /// [`read_chunked`]: LogReader::read_chunked
    pub fn read_all(self) -> LogResult<EventLog> {
        self.read_chunked(DEFAULT_CHUNK_BYTES)
    }

    /// Reads the source into an [`EventLog`] using `chunk_bytes`-sized reads.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::Io`] on read failure or [`LogError::Corrupt`] on
    /// malformed bytes.
    pub fn read_chunked(self, chunk_bytes: usize) -> LogResult<EventLog> {
        let mut log = EventLog::new();
        for record in self.records(chunk_bytes) {
            log.push(record?);
        }
        Ok(log)
    }

    /// Returns a streaming record iterator over the source.
    ///
    /// Records are decoded out of a reusable `chunk_bytes`-sized buffer;
    /// a record spanning a chunk boundary is carried over to the next fill.
    pub fn records(self, chunk_bytes: usize) -> ChunkedRecords<R> {
        ChunkedRecords {
            source: self.source,
            buf: Vec::with_capacity(chunk_bytes.max(1)),
            pos: 0,
            chunk_bytes: chunk_bytes.max(1),
            eof: false,
            done: false,
        }
    }
}

/// Streaming record iterator produced by [`LogReader::records`].
///
/// Yields `LogResult<Record>`; iteration fuses after the first error.
#[derive(Debug)]
pub struct ChunkedRecords<R> {
    source: R,
    /// Undecoded bytes: `buf[pos..]` is pending input, `buf[..pos]` is
    /// already consumed and reclaimed on the next refill.
    buf: Vec<u8>,
    pos: usize,
    chunk_bytes: usize,
    eof: bool,
    done: bool,
}

impl<R: Read> ChunkedRecords<R> {
    /// Pulls one more chunk from the source, compacting consumed bytes
    /// first so a partial record at the tail survives the refill.
    fn refill(&mut self) -> LogResult<()> {
        self.buf.drain(..self.pos);
        self.pos = 0;
        let old = self.buf.len();
        self.buf.resize(old + self.chunk_bytes, 0);
        let mut filled = old;
        while filled < self.buf.len() {
            match self.source.read(&mut self.buf[filled..]) {
                Ok(0) => {
                    self.eof = true;
                    break;
                }
                Ok(n) => filled += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => {
                    self.buf.truncate(filled);
                    return Err(LogError::Io(e));
                }
            }
        }
        self.buf.truncate(filled);
        Ok(())
    }
}

impl<R: Read> Iterator for ChunkedRecords<R> {
    type Item = LogResult<Record>;

    fn next(&mut self) -> Option<LogResult<Record>> {
        if self.done {
            return None;
        }
        loop {
            let avail = self.buf.len() - self.pos;
            // How many buffered bytes the next record needs: at least the
            // tag, then the tag's fixed record length. Unknown tags fall
            // through to decode, which reports them as corrupt.
            let need = match self.buf.get(self.pos).copied().map(tag_len) {
                None => 1,
                Some(Some(len)) => len,
                Some(None) => {
                    self.done = true;
                    let mut slice = &self.buf[self.pos..];
                    let record = decode(&mut slice);
                    if let Err(e) = &record {
                        crate::error::count_error(e);
                    }
                    return Some(record);
                }
            };
            if avail < need {
                if self.eof {
                    self.done = true;
                    if avail == 0 {
                        return None;
                    }
                    let mut slice = &self.buf[self.pos..];
                    let record = decode(&mut slice);
                    if let Err(e) = &record {
                        crate::error::count_error(e);
                    }
                    return Some(record);
                }
                if let Err(e) = self.refill() {
                    self.done = true;
                    crate::error::count_error(&e);
                    return Some(Err(e));
                }
                continue;
            }
            let mut slice = &self.buf[self.pos..self.pos + need];
            let record = decode(&mut slice);
            self.pos += need;
            if let Err(e) = &record {
                self.done = true;
                crate::error::count_error(e);
            }
            return Some(record);
        }
    }
}

/// Serializes a whole [`EventLog`] to bytes.
pub fn log_to_bytes(log: &EventLog) -> Bytes {
    crate::codec::encode_all(log.records())
}

/// Deserializes an [`EventLog`] from bytes.
///
/// # Errors
///
/// Returns [`LogError::Corrupt`] on malformed input.
pub fn log_from_bytes(bytes: Bytes) -> LogResult<EventLog> {
    Ok(crate::codec::decode_all(bytes)?.into_iter().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use literace_sim::{Addr, FuncId, Pc, ThreadId};

    use crate::record::SamplerMask;

    fn some_records(n: usize) -> Vec<Record> {
        (0..n)
            .map(|i| Record::Mem {
                tid: ThreadId::from_index(i % 3),
                pc: Pc::new(FuncId::from_index(i % 5), i),
                addr: Addr::global((i % 7) as u64),
                is_write: i % 2 == 0,
                mask: SamplerMask((i % 16) as u32),
            })
            .collect()
    }

    #[test]
    fn writer_reader_round_trip() {
        let records = some_records(10_000);
        let mut w = LogWriter::new(Vec::new());
        for r in &records {
            w.write_record(r).unwrap();
        }
        assert_eq!(w.records_written(), 10_000);
        let bytes = w.finish().unwrap();
        let log = LogReader::new(&bytes[..]).read_all().unwrap();
        assert_eq!(log.records(), &records[..]);
    }

    #[test]
    fn bytes_written_counts_buffered_bytes() {
        let mut w = LogWriter::new(Vec::new());
        let r = some_records(1);
        w.write_record(&r[0]).unwrap();
        assert_eq!(w.bytes_written(), crate::codec::MEM_RECORD_BYTES as u64);
    }

    #[test]
    fn writer_drop_flushes_buffered_records() {
        use std::io::Write;
        use std::sync::{Arc, Mutex};

        /// A sink whose bytes outlive the writer that owns it.
        #[derive(Clone)]
        struct SharedSink(Arc<Mutex<Vec<u8>>>);
        impl Write for SharedSink {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let records = some_records(100);
        let sink = SharedSink(Arc::new(Mutex::new(Vec::new())));
        {
            let mut w = LogWriter::new(sink.clone());
            for r in &records {
                w.write_record(r).unwrap();
            }
            // Dropped without finish(): 100 records fit well inside the
            // 48 KiB buffer, so nothing has reached the sink yet.
        }
        let bytes = sink.0.lock().unwrap().clone();
        let log = LogReader::new(&bytes[..]).read_all().unwrap();
        assert_eq!(log.records(), &records[..]);
    }

    #[test]
    fn write_after_finish_is_a_typed_error() {
        let records = some_records(3);
        let mut w = LogWriter::new(Vec::new());
        for r in &records {
            w.write_record(r).unwrap();
        }
        let bytes = w.finish().unwrap();
        assert!(!bytes.is_empty());
        // Write after finish: typed error, no panic.
        let err = w.write_record(&records[0]).unwrap_err();
        assert!(matches!(err, LogError::WriterFinished), "{err}");
        // Double finish: same.
        let err = w.finish().unwrap_err();
        assert!(matches!(err, LogError::WriterFinished), "{err}");
    }

    #[test]
    fn event_log_byte_round_trip() {
        let log: EventLog = some_records(100).into_iter().collect();
        let bytes = log_to_bytes(&log);
        let back = log_from_bytes(bytes).unwrap();
        assert_eq!(log, back);
    }

    #[test]
    fn chunked_read_splits_records_across_chunk_boundaries() {
        let records = some_records(1_000);
        let mut w = LogWriter::new(Vec::new());
        for r in &records {
            w.write_record(r).unwrap();
        }
        let bytes = w.finish().unwrap();
        // Chunk sizes that never align with the 26-byte Mem record force a
        // carried-over partial record on almost every refill.
        for chunk in [1, 7, 25, 26, 27, 1024] {
            let log = LogReader::new(&bytes[..]).read_chunked(chunk).unwrap();
            assert_eq!(log.records(), &records[..], "chunk={chunk}");
        }
    }

    /// A reader that returns at most one byte per `read` call, exercising
    /// short reads inside a single refill.
    struct TrickleReader<'a>(&'a [u8]);
    impl std::io::Read for TrickleReader<'_> {
        fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
            if self.0.is_empty() || out.is_empty() {
                return Ok(0);
            }
            out[0] = self.0[0];
            self.0 = &self.0[1..];
            Ok(1)
        }
    }

    #[test]
    fn chunked_read_tolerates_short_reads() {
        let records = some_records(50);
        let bytes = log_to_bytes(&records.iter().cloned().collect::<EventLog>());
        let log = LogReader::new(TrickleReader(&bytes))
            .read_chunked(64)
            .unwrap();
        assert_eq!(log.records(), &records[..]);
    }

    #[test]
    fn chunked_iterator_reports_truncation_and_fuses() {
        let records = some_records(4);
        let bytes = log_to_bytes(&records.iter().cloned().collect::<EventLog>());
        let cut = &bytes[..bytes.len() - 3];
        let mut it = LogReader::new(cut).records(16);
        for expected in &records[..3] {
            assert_eq!(&it.next().unwrap().unwrap(), expected);
        }
        let err = it.next().unwrap().unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");
        assert!(it.next().is_none(), "iterator must fuse after an error");
    }

    #[test]
    fn chunked_iterator_reports_unknown_tag() {
        let mut bytes = log_to_bytes(&some_records(2).into_iter().collect::<EventLog>())
            .as_slice()
            .to_vec();
        bytes.push(0xFF);
        let errs: Vec<_> = LogReader::new(&bytes[..])
            .records(8)
            .filter_map(Result::err)
            .collect();
        assert_eq!(errs.len(), 1);
        assert!(errs[0].to_string().contains("unknown record tag"), "{}", errs[0]);
    }
}
