//! Pipelined v2 log writing: raw block builders, a background encode
//! pool, and an in-order committer.
//!
//! The inline writer ([`LogWriterV2`](crate::LogWriterV2)) delta-encodes,
//! checksums and frames every record on the producing thread — exactly
//! the work the paper says must stay off the monitored program's hot
//! path. This module splits the write path into stages, the mirror image
//! of the out-of-order decode pool in [`crate::parallel`]:
//!
//! ```text
//! producer ──raw──▶ encode pool ──sealed──▶ committer ──▶ sink (Write)
//!  (append,          (N threads,            (reorders by
//!  seal every         delta + group-         sequence index,
//!  block_records      varint encode,         owns the running
//!  records)           head/payload sums,     file checksum,
//!                     frame assembly,        header + footer)
//!                     out of order)
//! ```
//!
//! * The **producer** — whoever calls [`PipelinedSink::push`] — only
//!   appends the record to a raw `Vec<Record>` block builder. At every
//!   `block_records` boundary the builder is sealed and handed over a
//!   bounded channel; nothing on the push path encodes, checksums or
//!   touches the sink. `push(&mut self)` is single-producer, so the
//!   builder is per-producer-thread by construction — the per-thread
//!   buffers of the paper's design collapse to one builder per sink
//!   under the simulator's single event stream, whose global order is
//!   load-bearing for happens-before detection.
//! * **Encode workers** pull sealed raw blocks in any order and run the
//!   full v2 block encode ([`encode_block_rev`](crate::encode_block_rev)):
//!   per-thread delta state (which resets at block boundaries, so blocks
//!   encode as independently as they decode), `head_sum`/`payload_sum`
//!   checksums, and 24-byte frame assembly.
//! * The **committer** restores sequence order with a reorder buffer and
//!   owns everything that is inherently sequential: the 5-byte file
//!   header, the running whole-file checksum, and the sealing footer —
//!   written only when [`finish`](PipelinedSink::finish) was called, so
//!   a dropped sink leaves a classifiably
//!   [`Unsealed`](crate::SealState::Unsealed) log exactly like the
//!   inline writer.
//!
//! The emitted stream is rev-conformant v2 — decodable by the strict,
//! salvage and pooled readers alike. Block *boundaries* differ from the
//! inline writer (records per block here, payload bytes there), so the
//! equivalence contract is record-level: the log decodes to an identical
//! [`EventLog`](crate::EventLog), and detection reports over it are
//! byte-identical (pinned by `tests/pipelined_equivalence.rs`).

use std::io::Write;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use bytes::BytesMut;

use crate::checksum::Checksum;
use crate::error::{LogError, LogResult};
use crate::record::Record;
use crate::stream::{auto_stream_depth, panic_message, DEFAULT_STREAM_DEPTH};
use crate::v2::{encode_block_rev, make_footer, rev_supported, FRAME_BYTES, V2_MAGIC, V2_VERSION};

/// Default records per sealed block. Large enough that encode work (and,
/// on a saturated host, the context switch each handoff costs) amortizes
/// to well under 10% of the block's encode time, small enough that a
/// sealed block stays a bounded memory unit (~90 KB encoded, ~640 KB
/// raw). 4096 measurably lost ~12% single-worker throughput to handoff
/// on a 1-CPU host; 16384 keeps the tax under the bench gate's 10%.
pub const DEFAULT_BLOCK_RECORDS: usize = 16_384;

/// Tuning for a [`PipelinedSink`]: how many encode workers to run, how
/// many records a raw block holds before sealing, and how deep the
/// bounded handoff channels are.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncodeOpts {
    /// Encode worker threads (min 1; the committer is always its own
    /// thread, so even `threads: 1` takes encoding off the producer).
    pub threads: usize,
    /// Records per sealed block.
    pub block_records: usize,
    /// Bound, in blocks, of each handoff channel.
    pub depth: usize,
}

impl EncodeOpts {
    /// One encode worker, default block size and depth.
    pub fn sequential() -> EncodeOpts {
        EncodeOpts {
            threads: 1,
            block_records: DEFAULT_BLOCK_RECORDS,
            depth: DEFAULT_STREAM_DEPTH,
        }
    }

    /// `threads` encode workers with an
    /// [`auto_stream_depth`](crate::auto_stream_depth)-sized channel.
    pub fn with_threads(threads: usize) -> EncodeOpts {
        let threads = threads.max(1);
        EncodeOpts {
            threads,
            block_records: DEFAULT_BLOCK_RECORDS,
            depth: auto_stream_depth(threads, 0),
        }
    }

    /// Sizes the pool to the host's available parallelism.
    pub fn auto() -> EncodeOpts {
        EncodeOpts::with_threads(std::thread::available_parallelism().map_or(1, |n| n.get()))
    }

    /// Overrides the records-per-block seal point (clamped to at least 1).
    pub fn block_records(self, block_records: usize) -> EncodeOpts {
        EncodeOpts {
            block_records: block_records.max(1),
            ..self
        }
    }

    /// Overrides the channel depth (clamped to at least 1).
    pub fn depth(self, depth: usize) -> EncodeOpts {
        EncodeOpts {
            depth: depth.max(1),
            ..self
        }
    }
}

impl Default for EncodeOpts {
    fn default() -> EncodeOpts {
        EncodeOpts::sequential()
    }
}

/// A sealed raw block heading into the encode pool, tagged with its
/// sequence index in the stream.
struct RawBlock {
    seq: u64,
    records: Vec<Record>,
}

/// A worker's result: the encoded frame + payload (contiguous — the
/// checksum is chunking-agnostic, so the committer feeds the whole slice
/// to the running file sum), or a contained encode panic.
struct Sealed {
    seq: u64,
    records: u64,
    result: Result<BytesMut, String>,
}

/// One encode worker: pulls sealed raw blocks, runs the full block
/// encode (delta state, checksums, frame assembly). Panics are contained
/// per block.
fn encode_worker(
    jobs: &Mutex<Receiver<RawBlock>>,
    out: &SyncSender<Sealed>,
    recycle: &SyncSender<Vec<Record>>,
    rev: u8,
    queued: &AtomicU64,
) {
    loop {
        let idle_start = literace_telemetry::enabled().then(std::time::Instant::now);
        let job = {
            let guard = jobs.lock().expect("encode job queue poisoned");
            match guard.recv() {
                Ok(job) => job,
                Err(_) => return,
            }
        };
        queued.fetch_sub(1, Ordering::AcqRel);
        if let Some(t0) = idle_start {
            literace_telemetry::metrics()
                .log_encode_worker_idle_ns
                .add(t0.elapsed().as_nanos() as u64);
        }
        let busy_start = literace_telemetry::enabled().then(std::time::Instant::now);
        literace_telemetry::trace_begin("encode.block");
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let mut bytes = BytesMut::new();
            encode_block_rev(&job.records, &mut bytes, rev);
            bytes
        }))
        .map_err(|payload| panic_message(payload.as_ref()));
        literace_telemetry::trace_end("encode.block");
        if let Some(t0) = busy_start {
            literace_telemetry::metrics()
                .log_encode_worker_busy_ns
                .add(t0.elapsed().as_nanos() as u64);
        }
        let done = Sealed {
            seq: job.seq,
            records: job.records.len() as u64,
            result,
        };
        // Hand the spent raw buffer back to the producer so steady-state
        // sealing reuses warm pages instead of faulting in a fresh
        // allocation per block. Best-effort: a full return lane just
        // drops the buffer.
        let mut spent = job.records;
        spent.clear();
        let _ = recycle.try_send(spent);
        if out.send(done).is_err() {
            return;
        }
    }
}

/// The in-order committer: owns the sink, the file header, the running
/// file checksum and the footer. Returns the sink (or the first error)
/// to [`PipelinedSink::finish`] through its join handle.
struct Committer<W> {
    sink: W,
    rev: u8,
    inflight: Arc<AtomicU64>,
    /// Total blocks the producer sealed — final once the results channel
    /// closes (the job sender is dropped before the workers can exit).
    issued: Arc<AtomicU64>,
    /// Set by `finish`; without it a closed channel means the producer
    /// was dropped, and the footer must not be written.
    finish_requested: Arc<AtomicBool>,
}

impl<W: Write> Committer<W> {
    fn run(mut self, results: Receiver<Sealed>) -> LogResult<W> {
        let mut error: Option<LogError> = None;
        let mut file_sum = Checksum::new();
        let mut total_records = 0u64;
        let mut header_written = false;
        let mut pending: std::collections::BTreeMap<u64, Sealed> = std::collections::BTreeMap::new();
        let mut next = 0u64;
        while let Ok(sealed) = results.recv() {
            pending.insert(sealed.seq, sealed);
            while let Some(sealed) = pending.remove(&next) {
                next += 1;
                self.inflight.fetch_sub(1, Ordering::AcqRel);
                if error.is_some() {
                    continue; // drain without writing; first error wins
                }
                let bytes = match sealed.result {
                    Ok(bytes) => bytes,
                    Err(message) => {
                        error = Some(LogError::corrupt(format!(
                            "encode worker panicked: {message}"
                        )));
                        continue;
                    }
                };
                literace_telemetry::trace_begin("commit.block");
                let rev = self.rev;
                let commit = (|| -> LogResult<()> {
                    if !header_written {
                        self.sink.write_all(&V2_MAGIC)?;
                        self.sink.write_all(&[rev])?;
                        header_written = true;
                        if literace_telemetry::enabled() {
                            literace_telemetry::metrics()
                                .log_encode_v2_bytes
                                .add(V2_MAGIC.len() as u64 + 1);
                        }
                    }
                    self.sink.write_all(&bytes)?;
                    Ok(())
                })();
                match commit {
                    Ok(()) => {
                        file_sum.update(&bytes);
                        total_records += sealed.records;
                    }
                    Err(e) => error = Some(e),
                }
                literace_telemetry::trace_end("commit.block");
            }
        }
        if let Some(e) = error {
            return Err(e);
        }
        if next < self.issued.load(Ordering::Acquire) || !pending.is_empty() {
            return Err(LogError::corrupt("encode worker dropped a block"));
        }
        if !self.finish_requested.load(Ordering::Acquire) {
            // Producer dropped without finish: blocks are flushed (the
            // log reads back Unsealed), the footer is withheld — the
            // inline writer's Drop semantics.
            self.sink.flush()?;
            return Ok(self.sink);
        }
        if !header_written {
            self.sink.write_all(&V2_MAGIC)?;
            self.sink.write_all(&[self.rev])?;
            if literace_telemetry::enabled() {
                literace_telemetry::metrics()
                    .log_encode_v2_bytes
                    .add(V2_MAGIC.len() as u64 + 1);
            }
        }
        self.sink
            .write_all(&make_footer(total_records, file_sum.finish()))?;
        if literace_telemetry::enabled() {
            literace_telemetry::metrics()
                .log_encode_v2_bytes
                .add(FRAME_BYTES as u64);
        }
        self.sink.flush()?;
        Ok(self.sink)
    }
}

/// Streams records into a v2 log through the pipelined write path: the
/// caller's `push` is a raw append; encoding, checksumming and framing
/// run on background workers; an in-order committer seals the file.
///
/// Like the inline sinks, write and encode errors cannot interrupt the
/// producer — they are stashed and surface from
/// [`finish`](PipelinedSink::finish).
#[derive(Debug)]
pub struct PipelinedSink<W: Write + Send + 'static> {
    builder: Vec<Record>,
    block_records: usize,
    seq: u64,
    records: u64,
    /// Spent raw buffers coming back from the encode workers for reuse.
    recycle_rx: Receiver<Vec<Record>>,
    job_tx: Option<SyncSender<RawBlock>>,
    committer: Option<JoinHandle<LogResult<W>>>,
    workers: Vec<JoinHandle<()>>,
    queued: Arc<AtomicU64>,
    inflight: Arc<AtomicU64>,
    issued: Arc<AtomicU64>,
    finish_requested: Arc<AtomicBool>,
}

impl<W: Write + Send + 'static> PipelinedSink<W> {
    /// Creates a pipelined sink writing a v2 log to `sink` with default
    /// options (one encode worker).
    ///
    /// # Errors
    ///
    /// Surfaces thread-spawn failures.
    pub fn new(sink: W) -> LogResult<PipelinedSink<W>> {
        PipelinedSink::with_opts(sink, EncodeOpts::default())
    }

    /// Creates a pipelined sink with explicit [`EncodeOpts`].
    ///
    /// # Errors
    ///
    /// Surfaces thread-spawn failures.
    pub fn with_opts(sink: W, opts: EncodeOpts) -> LogResult<PipelinedSink<W>> {
        PipelinedSink::with_revision_and_opts(sink, V2_VERSION, opts)
    }

    /// [`with_opts`](PipelinedSink::with_opts) pinned to payload revision
    /// `rev` (3 or 4) — compatibility and test tooling.
    ///
    /// # Errors
    ///
    /// Surfaces thread-spawn failures.
    ///
    /// # Panics
    ///
    /// Panics when `rev` is not a writable revision.
    pub fn with_revision_and_opts(
        sink: W,
        rev: u8,
        opts: EncodeOpts,
    ) -> LogResult<PipelinedSink<W>> {
        assert!(rev_supported(rev), "unwritable v2 revision {rev}");
        assert!(
            rev == V2_VERSION,
            "pipelined sink only writes the current revision ({V2_VERSION}); \
             use LogWriterV2::with_revision for compatibility output"
        );
        let threads = opts.threads.max(1);
        let depth = opts.depth.max(1);
        let (job_tx, job_rx) = sync_channel::<RawBlock>(depth);
        let job_rx = Arc::new(Mutex::new(job_rx));
        let (res_tx, res_rx) = sync_channel::<Sealed>(depth.max(threads));
        let (recycle_tx, recycle_rx) =
            sync_channel::<Vec<Record>>(depth.max(threads) + 1);
        let queued = Arc::new(AtomicU64::new(0));
        let inflight = Arc::new(AtomicU64::new(0));
        let issued = Arc::new(AtomicU64::new(0));
        let finish_requested = Arc::new(AtomicBool::new(false));

        let workers: Vec<_> = (0..threads)
            .map(|i| {
                let job_rx = job_rx.clone();
                let res_tx = res_tx.clone();
                let recycle_tx = recycle_tx.clone();
                let queued = queued.clone();
                std::thread::Builder::new()
                    .name(format!("literace-encode-{i}"))
                    .spawn(move || {
                        encode_worker(&job_rx, &res_tx, &recycle_tx, rev, &queued)
                    })
                    .map_err(LogError::Io)
            })
            .collect::<LogResult<_>>()?;
        // The committer's results loop must end when the workers do.
        drop(res_tx);
        drop(recycle_tx);

        let committer = Committer {
            sink,
            rev,
            inflight: inflight.clone(),
            issued: issued.clone(),
            finish_requested: finish_requested.clone(),
        };
        let handle = std::thread::Builder::new()
            .name("literace-log-commit".to_owned())
            .spawn(move || committer.run(res_rx))
            .map_err(LogError::Io)?;

        Ok(PipelinedSink {
            builder: Vec::with_capacity(opts.block_records.max(1)),
            block_records: opts.block_records.max(1),
            recycle_rx,
            seq: 0,
            records: 0,
            job_tx: Some(job_tx),
            committer: Some(handle),
            workers,
            queued,
            inflight,
            issued,
            finish_requested,
        })
    }

    /// Appends one record to the raw block builder — the entire hot
    /// path. Seals and hands the block to the encode pool at every
    /// `block_records` boundary.
    pub fn push(&mut self, record: Record) {
        self.records += 1;
        self.builder.push(record);
        if self.builder.len() >= self.block_records {
            self.seal();
        }
    }

    /// Seals the open builder (if non-empty) into the encode pool.
    fn seal(&mut self) {
        if self.builder.is_empty() {
            return;
        }
        let fresh = self
            .recycle_rx
            .try_recv()
            .unwrap_or_else(|_| Vec::with_capacity(self.block_records));
        let records = std::mem::replace(&mut self.builder, fresh);
        let seq = self.seq;
        self.seq += 1;
        self.issued.store(self.seq, Ordering::Release);
        let queued = self.queued.fetch_add(1, Ordering::AcqRel) + 1;
        let in_flight = self.inflight.fetch_add(1, Ordering::AcqRel) + 1;
        if literace_telemetry::enabled() {
            let m = literace_telemetry::metrics();
            m.log_encode_sealed_blocks_hwm.record(queued);
            m.log_encode_blocks_inflight_hwm.record(in_flight);
        }
        if let Some(tx) = &self.job_tx {
            if tx.send(RawBlock { seq, records }).is_err() {
                // Every worker is gone (contained panics still exit on a
                // closed results channel); the committer's missing-block
                // check surfaces this from `finish`.
                self.job_tx = None;
            }
        }
    }

    /// Records pushed so far (including any dropped after an error).
    pub fn records_written(&self) -> u64 {
        self.records
    }

    /// Seals the open block, drains the pipeline, writes the
    /// finalization footer, flushes, and returns the sink. A log
    /// finished here reads back as [`Sealed`](crate::SealState::Sealed).
    ///
    /// # Errors
    ///
    /// Surfaces the first sink I/O error or contained encode panic from
    /// anywhere in the pipeline.
    pub fn finish(mut self) -> LogResult<W> {
        self.seal();
        self.finish_requested.store(true, Ordering::Release);
        self.shutdown()
    }

    /// Closes the job channel, joins every pipeline thread, and returns
    /// the committer's verdict.
    fn shutdown(&mut self) -> LogResult<W> {
        drop(self.job_tx.take());
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        let handle = self.committer.take().ok_or(LogError::WriterFinished)?;
        handle.join().unwrap_or_else(|payload| {
            Err(LogError::corrupt(format!(
                "encode committer panicked: {}",
                panic_message(payload.as_ref())
            )))
        })
    }
}

impl<W: Write + Send + 'static> Drop for PipelinedSink<W> {
    /// Best-effort: seals and flushes buffered blocks (a dropped sink
    /// cannot silently lose whole blocks) but withholds the footer, so
    /// the log reads back [`Unsealed`](crate::SealState::Unsealed) —
    /// matching the inline writer's Drop. Errors are swallowed here;
    /// call [`finish`](PipelinedSink::finish) to observe them.
    fn drop(&mut self) {
        if self.committer.is_some() {
            self.seal();
            let _ = self.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::SamplerMask;
    use crate::salvage::read_log_salvage;
    use crate::stream::{read_log_auto, DecodeOpts, RecordStream};
    use crate::v2::SealState;
    use literace_sim::{Addr, FuncId, Pc, SyncOpKind, SyncVar, ThreadId};

    fn mixed_records(n: usize) -> Vec<Record> {
        (0..n)
            .map(|i| {
                if i % 7 == 0 {
                    Record::Sync {
                        tid: ThreadId::from_index(i % 4),
                        pc: Pc::new(FuncId::from_index(1), i),
                        kind: SyncOpKind::LockAcquire,
                        var: SyncVar(i as u64 % 3),
                        timestamp: i as u64,
                    }
                } else {
                    Record::Mem {
                        tid: ThreadId::from_index(i % 4),
                        pc: Pc::new(FuncId::from_index(i % 5), i),
                        addr: Addr::global((i % 13) as u64 * 8),
                        is_write: i % 2 == 0,
                        mask: SamplerMask::bit(0),
                    }
                }
            })
            .collect()
    }

    fn pipelined_bytes(records: &[Record], opts: EncodeOpts) -> Vec<u8> {
        let mut sink = PipelinedSink::with_opts(Vec::new(), opts).unwrap();
        for r in records {
            sink.push(*r);
        }
        assert_eq!(sink.records_written(), records.len() as u64);
        sink.finish().unwrap()
    }

    #[test]
    fn pipelined_log_round_trips_across_threads_and_block_sizes() {
        let records = mixed_records(5000);
        for threads in [1, 2, 4] {
            for block_records in [1, 3, 256, DEFAULT_BLOCK_RECORDS] {
                let bytes = pipelined_bytes(
                    &records,
                    EncodeOpts::with_threads(threads).block_records(block_records),
                );
                let log = read_log_auto(&bytes[..]).unwrap();
                assert_eq!(
                    log.records(),
                    &records[..],
                    "threads {threads} block_records {block_records}"
                );
            }
        }
    }

    #[test]
    fn pipelined_log_is_sealed_and_readable_by_every_reader() {
        let records = mixed_records(3000);
        let bytes = pipelined_bytes(&records, EncodeOpts::with_threads(4).block_records(64));
        // Strict pooled reader.
        let stream = RecordStream::spawn_with(
            std::io::Cursor::new(bytes.clone()),
            DecodeOpts::with_threads(4),
        )
        .unwrap();
        let pooled: Vec<Record> = stream.flat_map(|b| b.unwrap()).collect();
        assert_eq!(pooled, records);
        // Salvage reader: a clean log salvages losslessly and is Sealed.
        let (salvaged, report) = read_log_salvage(&bytes[..]);
        assert_eq!(salvaged.records(), &records[..]);
        assert_eq!(report.seal, SealState::Sealed);
        assert_eq!(report.blocks_skipped, 0);
        assert!(!report.sync_tainted);
    }

    #[test]
    fn decoded_log_matches_the_inline_writer_record_for_record() {
        let records = mixed_records(4000);
        let mut inline = crate::v2::LogWriterV2::new(Vec::new());
        for r in &records {
            inline.write_record(r).unwrap();
        }
        let inline_log = read_log_auto(&inline.finish().unwrap()[..]).unwrap();
        for threads in [1, 2, 4] {
            let bytes = pipelined_bytes(&records, EncodeOpts::with_threads(threads));
            let pipelined_log = read_log_auto(&bytes[..]).unwrap();
            assert_eq!(pipelined_log, inline_log, "threads {threads}");
        }
    }

    #[test]
    fn empty_pipelined_log_is_a_valid_sealed_v2_log() {
        let bytes = pipelined_bytes(&[], EncodeOpts::default());
        assert_eq!(bytes.len(), V2_MAGIC.len() + 1 + FRAME_BYTES);
        let log = read_log_auto(&bytes[..]).unwrap();
        assert!(log.is_empty());
    }

    /// A shared Vec sink so the written bytes survive the sink's drop.
    #[derive(Debug, Clone, Default)]
    struct SharedVec(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedVec {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn dropped_sink_flushes_blocks_but_never_seals() {
        let shared = SharedVec::default();
        let records = mixed_records(1000);
        {
            let mut sink =
                PipelinedSink::with_opts(shared.clone(), EncodeOpts::with_threads(2))
                    .unwrap();
            for r in &records {
                sink.push(*r);
            }
            // dropped without finish
        }
        let bytes = shared.0.lock().unwrap().clone();
        let (salvaged, report) = read_log_salvage(&bytes[..]);
        assert_eq!(salvaged.records(), &records[..], "blocks flushed on drop");
        assert_eq!(report.seal, SealState::Unsealed, "drop must not seal");
    }

    /// A writer that fails after `ok` bytes.
    #[derive(Debug)]
    struct FailingWriter {
        ok: usize,
    }
    impl Write for FailingWriter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            if self.ok == 0 {
                return Err(std::io::Error::other("disk full"));
            }
            let n = buf.len().min(self.ok);
            self.ok -= n;
            Ok(n)
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn write_errors_surface_at_finish_not_push() {
        let mut sink = PipelinedSink::with_opts(
            FailingWriter { ok: 64 },
            EncodeOpts::with_threads(2).block_records(16),
        )
        .unwrap();
        for r in mixed_records(10_000) {
            sink.push(r);
        }
        let err = sink.finish().unwrap_err();
        assert!(err.to_string().contains("disk full"), "{err}");
    }

    #[test]
    fn fault_injected_device_death_surfaces_cleanly() {
        let sink = crate::fault::FaultySink::new(Vec::new(), Some(200), true, 7);
        let mut pipelined = PipelinedSink::with_opts(
            sink,
            EncodeOpts::with_threads(2).block_records(32),
        )
        .unwrap();
        for r in mixed_records(5_000) {
            pipelined.push(r);
        }
        let err = pipelined.finish().unwrap_err();
        assert!(err.to_string().contains("injected"), "{err}");
    }
}
