//! Group varint ("GV") integer coding for the v2 revision-4 block payload.
//!
//! LEB128 varints (revision 3) spend a branch per byte: every decoded
//! field re-tests a continuation bit. Group varint hoists all the length
//! information into one control byte per **four** values — two bits per
//! lane selecting a stored width of 1, 2, 4 or 8 bytes — so the decoder's
//! per-value work collapses to a table lookup, one unaligned
//! `u64::from_le_bytes` wide load, and a mask. No continuation-bit
//! branches, no shifts that depend on data bytes.
//!
//! ## Wire grammar
//!
//! ```text
//! stream := group*
//! group  := ctrl(1) lane0 lane1 lane2 lane3
//! ctrl   : bits 2i..2i+2 select lane i's width w(i) ∈ {1, 2, 4, 8}
//! lane_i : w(i) little-endian bytes of value i
//! ```
//!
//! The encoder always emits **complete** groups: when the value count is
//! not a multiple of four, the final group is padded with zero-valued
//! one-byte lanes. Padding costs at most three bytes per block and lets
//! the decoder run the same four-lane loop for every group, with a single
//! bounds check per group on the hot path.
//!
//! Widths are powers of two rather than the classic `1..4` byte range
//! because the v2 delta fields are u64 (addresses and timestamps can
//! exceed 32 bits); `{1,2,4,8}` covers the full range while keeping the
//! two-bit selector.

use bytes::{BufMut, BytesMut};

use crate::error::{LogError, LogResult};

/// Lane widths selected by a two-bit control field.
const WIDTHS: [usize; 4] = [1, 2, 4, 8];

/// Widest encoded group: control byte plus four 8-byte lanes.
pub const MAX_GROUP_BYTES: usize = 1 + 4 * 8;

/// Two-bit width selector for `v` (index into [`WIDTHS`]).
#[inline]
fn selector(v: u64) -> u8 {
    // Branch-free: 1 byte below 2^8, 2 below 2^16, 4 below 2^32, else 8.
    let bits = 64 - (v | 1).leading_zeros();
    match bits {
        0..=8 => 0,
        9..=16 => 1,
        17..=32 => 2,
        _ => 3,
    }
}

/// Streaming group-varint encoder: values accumulate four at a time and
/// each full group is flushed to the output buffer.
#[derive(Debug, Default)]
pub struct GvEncoder {
    buf: BytesMut,
    pending: [u64; 4],
    n: usize,
    values: u64,
}

impl GvEncoder {
    /// A fresh encoder.
    pub fn new() -> GvEncoder {
        GvEncoder::default()
    }

    /// Appends one value to the stream.
    #[inline]
    pub fn put(&mut self, v: u64) {
        self.pending[self.n] = v;
        self.n += 1;
        self.values += 1;
        if self.n == 4 {
            self.flush_group();
        }
    }

    #[inline]
    fn flush_group(&mut self) {
        let mut ctrl = 0u8;
        let mut lanes = [0u8; 32];
        let mut at = 0;
        for (i, &v) in self.pending.iter().enumerate() {
            let sel = selector(v);
            ctrl |= sel << (2 * i);
            let w = WIDTHS[sel as usize];
            lanes[at..at + 8].copy_from_slice(&v.to_le_bytes());
            at += w;
        }
        self.buf.put_u8(ctrl);
        self.buf.extend_from_slice(&lanes[..at]);
        self.n = 0;
    }

    /// Bytes the stream will occupy if finished now (padding included).
    pub fn encoded_len(&self) -> usize {
        if self.n == 0 {
            self.buf.len()
        } else {
            // A partial group seals as ctrl + real lanes + 1-byte pads.
            let lanes: usize = self.pending[..self.n]
                .iter()
                .map(|&v| WIDTHS[selector(v) as usize])
                .sum();
            self.buf.len() + 1 + lanes + (4 - self.n)
        }
    }

    /// Values appended so far.
    pub fn values(&self) -> u64 {
        self.values
    }

    /// Seals the stream (padding the final group) and returns the encoded
    /// bytes. The encoder is left empty and reusable.
    pub fn finish(&mut self) -> BytesMut {
        if self.n > 0 {
            for i in self.n..4 {
                self.pending[i] = 0;
            }
            self.flush_group();
        }
        self.values = 0;
        std::mem::take(&mut self.buf)
    }

    /// Discards buffered state without emitting anything.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.n = 0;
        self.values = 0;
    }
}

/// Streaming group-varint decoder over a fully materialized byte slice.
///
/// Values are decoded a whole group at a time: when at least
/// [`MAX_GROUP_BYTES`] remain, the four wide loads run with a single
/// bounds check; near the end of the region a careful tail path copies
/// each lane into a zeroed 8-byte buffer first.
#[derive(Debug)]
pub struct GvCursor<'a> {
    buf: &'a [u8],
    pos: usize,
    group: [u64; 4],
    /// Lanes of `group` already handed out (4 = need a refill).
    served: usize,
}

impl<'a> GvCursor<'a> {
    /// A cursor over `buf`, which must hold whole groups.
    pub fn new(buf: &'a [u8]) -> GvCursor<'a> {
        GvCursor {
            buf,
            pos: 0,
            group: [0; 4],
            served: 4,
        }
    }

    /// Decodes the next value.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::Corrupt`] when the region ends mid-group.
    // Not an `Iterator`: decode failure must be a hard error at the call
    // site, not a silent `None`.
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn next(&mut self) -> LogResult<u64> {
        if self.served == 4 {
            self.refill()?;
        }
        let v = self.group[self.served];
        self.served += 1;
        Ok(v)
    }

    #[inline]
    fn refill(&mut self) -> LogResult<()> {
        let s = self.buf;
        let pos = self.pos;
        if s.len() - pos >= MAX_GROUP_BYTES {
            // Hot path: the whole worst-case group is in bounds, so every
            // lane can issue an unaligned 8-byte load and mask it down.
            let ctrl = s[pos];
            let mut at = pos + 1;
            for i in 0..4 {
                let w = WIDTHS[((ctrl >> (2 * i)) & 3) as usize];
                let wide =
                    u64::from_le_bytes(s[at..at + 8].try_into().expect("8 bytes in bounds"));
                // Keep the low `w` bytes: shift by (8 - w) * 8 < 64.
                self.group[i] = wide & (u64::MAX >> ((8 - w) * 8));
                at += w;
            }
            self.pos = at;
            self.served = 0;
            return Ok(());
        }
        self.refill_tail()
    }

    /// Cold tail: per-lane bounds checks with the lane copied into a
    /// zeroed 8-byte buffer before the wide load.
    #[cold]
    fn refill_tail(&mut self) -> LogResult<()> {
        let s = self.buf;
        let Some(&ctrl) = s.get(self.pos) else {
            return Err(LogError::corrupt("group varint region exhausted"));
        };
        let mut at = self.pos + 1;
        for i in 0..4 {
            let w = WIDTHS[((ctrl >> (2 * i)) & 3) as usize];
            let Some(lane) = s.get(at..at + w) else {
                return Err(LogError::corrupt("truncated group varint lane"));
            };
            let mut bytes = [0u8; 8];
            bytes[..w].copy_from_slice(lane);
            self.group[i] = u64::from_le_bytes(bytes);
            at += w;
        }
        self.pos = at;
        self.served = 0;
        Ok(())
    }

    /// True when every byte of the region has been consumed **and** no
    /// decoded-but-unserved lane remains beyond padding. Used by the block
    /// decoder's trailing-bytes check: after the declared record count,
    /// the only legal leftovers are the final group's zero pads.
    pub fn exhausted_except_padding(&self) -> bool {
        self.pos == self.buf.len() && self.group[self.served..].iter().all(|&v| v == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(values: &[u64]) {
        let mut enc = GvEncoder::new();
        for &v in values {
            enc.put(v);
        }
        assert_eq!(enc.values(), values.len() as u64);
        assert_eq!(enc.encoded_len(), {
            let mut probe = GvEncoder::new();
            for &v in values {
                probe.put(v);
            }
            probe.finish().len()
        });
        let bytes = enc.finish();
        let mut cur = GvCursor::new(&bytes);
        for &v in values {
            assert_eq!(cur.next().unwrap(), v);
        }
        assert!(cur.exhausted_except_padding());
    }

    #[test]
    fn round_trips_width_boundaries() {
        round_trip(&[
            0,
            1,
            0xFF,
            0x100,
            0xFFFF,
            0x1_0000,
            u32::MAX as u64,
            u32::MAX as u64 + 1,
            u64::MAX,
        ]);
    }

    #[test]
    fn round_trips_every_partial_group_size() {
        for n in 0..9usize {
            let values: Vec<u64> = (0..n as u64).map(|i| i * 0x1234_5678).collect();
            round_trip(&values);
        }
    }

    #[test]
    fn round_trips_a_large_mixed_stream() {
        let values: Vec<u64> = (0..10_000u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left((i % 64) as u32))
            .collect();
        round_trip(&values);
    }

    #[test]
    fn selector_matches_width_of_value() {
        assert_eq!(WIDTHS[selector(0) as usize], 1);
        assert_eq!(WIDTHS[selector(255) as usize], 1);
        assert_eq!(WIDTHS[selector(256) as usize], 2);
        assert_eq!(WIDTHS[selector(65_535) as usize], 2);
        assert_eq!(WIDTHS[selector(65_536) as usize], 4);
        assert_eq!(WIDTHS[selector(u64::from(u32::MAX)) as usize], 4);
        assert_eq!(WIDTHS[selector(u64::from(u32::MAX) + 1) as usize], 8);
        assert_eq!(WIDTHS[selector(u64::MAX) as usize], 8);
    }

    #[test]
    fn truncated_region_is_corrupt_not_panic() {
        let mut enc = GvEncoder::new();
        for v in [1u64, 2, 3, 4, 5, 6, 7, 8] {
            enc.put(v);
        }
        let bytes = enc.finish();
        for cut in 0..bytes.len() {
            let mut cur = GvCursor::new(&bytes[..cut]);
            let mut result = Ok(());
            for _ in 0..8 {
                if let Err(e) = cur.next() {
                    result = Err(e);
                    break;
                }
            }
            // Cutting a whole group off yields wrong-but-in-bounds data
            // only at exact group boundaries; any mid-group cut errors.
            if cut % 5 != 0 {
                assert!(result.is_err(), "cut={cut} decoded past the end");
            }
        }
    }

    #[test]
    fn empty_stream_is_exhausted_immediately() {
        let mut enc = GvEncoder::new();
        let bytes = enc.finish();
        assert!(bytes.is_empty());
        let mut cur = GvCursor::new(&bytes);
        assert!(cur.exhausted_except_padding());
        assert!(cur.next().is_err());
    }

    #[test]
    fn encoder_reuse_after_finish_starts_clean() {
        let mut enc = GvEncoder::new();
        enc.put(7);
        let first = enc.finish();
        assert!(!first.is_empty());
        enc.put(9);
        let second = enc.finish();
        let mut cur = GvCursor::new(&second);
        assert_eq!(cur.next().unwrap(), 9);
    }
}
