//! Streaming, format-auto-detecting log ingest.
//!
//! The offline detector should never need the whole encoded log — or the
//! whole decoded log — in memory at once. This module provides the pieces:
//!
//! * [`LogFormat`] detection from the first bytes (v1 logs start with a
//!   record tag in `1..=4`, v2 with the [`V2_MAGIC`] header);
//! * [`RecordBlocks`], a synchronous iterator of decoded record blocks
//!   over either format (v1 records are re-batched into fixed-size
//!   blocks, v2 blocks come straight from the wire);
//! * [`RecordStream`], the same blocks pulled through a **bounded
//!   channel** from a decoder thread, so decoding overlaps whatever the
//!   consumer does with the blocks (sync pre-pass, shard routing, shard
//!   replay — see `literace_detector::detect_stream`).
//!
//! [`V2_MAGIC`]: crate::v2::V2_MAGIC

use std::io::Read;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};

use crate::error::{LogError, LogResult};
use crate::io::{LogReader, DEFAULT_CHUNK_BYTES};
use crate::record::{EventLog, Record};
use crate::v2::{V2Blocks, V2_MAGIC, V2_VERSION};

/// Number of records per re-batched block when streaming a v1 log.
pub const V1_BLOCK_RECORDS: usize = 4096;

/// Default bound (in blocks) of the decode channel: enough to keep the
/// decoder busy, small enough that in-flight decoded records stay bounded.
pub const DEFAULT_STREAM_DEPTH: usize = 8;

/// Upper bound on auto-sized stream depth: beyond this, extra queue slots
/// only add memory (decoded blocks are ~32 KiB of records each), never
/// throughput.
pub const MAX_STREAM_DEPTH: usize = 64;

/// Sizes the decode→detect channel from the pipeline's thread counts.
///
/// The fixed [`DEFAULT_STREAM_DEPTH`] stalls decoders at high shard
/// counts (visible as `detector.stream.stalls`): with many consumers a
/// burst of routing work can drain or fill an 8-slot queue faster than
/// one side can react. Two slots per active thread keeps both sides busy
/// across a scheduling hiccup, clamped to
/// [`DEFAULT_STREAM_DEPTH`]`..=`[`MAX_STREAM_DEPTH`].
pub fn auto_stream_depth(decode_threads: usize, detect_threads: usize) -> usize {
    (2 * (decode_threads + detect_threads)).clamp(DEFAULT_STREAM_DEPTH, MAX_STREAM_DEPTH)
}

/// Tuning for a [`RecordStream`]: how many decode workers to run and how
/// deep the bounded handoff channels are.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeOpts {
    /// Decode worker threads. `1` keeps the single-decoder-thread layout;
    /// `2+` enables the parallel out-of-order block pool for v2 logs (v1
    /// logs always decode sequentially — the fixed-width stream has no
    /// block framing to parallelize over).
    pub threads: usize,
    /// Bound, in blocks, of each handoff channel.
    pub depth: usize,
}

impl DecodeOpts {
    /// One decoder thread, default depth — the classic streaming layout.
    pub fn sequential() -> DecodeOpts {
        DecodeOpts {
            threads: 1,
            depth: DEFAULT_STREAM_DEPTH,
        }
    }

    /// `threads` decode workers with an [`auto_stream_depth`]-sized
    /// channel (no detect threads assumed; callers that know their detect
    /// fan-out should override with [`depth`](DecodeOpts::depth)).
    pub fn with_threads(threads: usize) -> DecodeOpts {
        let threads = threads.max(1);
        DecodeOpts {
            threads,
            depth: auto_stream_depth(threads, 0),
        }
    }

    /// Sizes the pool to the host's available parallelism.
    pub fn auto() -> DecodeOpts {
        DecodeOpts::with_threads(std::thread::available_parallelism().map_or(1, |n| n.get()))
    }

    /// Overrides the channel depth (clamped to at least 1).
    pub fn depth(self, depth: usize) -> DecodeOpts {
        DecodeOpts {
            depth: depth.max(1),
            ..self
        }
    }
}

impl Default for DecodeOpts {
    fn default() -> DecodeOpts {
        DecodeOpts::sequential()
    }
}

/// On-disk log format revision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogFormat {
    /// Fixed-width tagged records, no header (the seed format).
    V1,
    /// Blocked varint-delta records behind a magic+version header.
    V2,
}

impl LogFormat {
    /// Parses a `--format` style name.
    pub fn from_name(name: &str) -> Option<LogFormat> {
        match name.to_ascii_lowercase().as_str() {
            "v1" | "1" => Some(LogFormat::V1),
            "v2" | "2" => Some(LogFormat::V2),
            _ => None,
        }
    }
}

impl std::fmt::Display for LogFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LogFormat::V1 => write!(f, "v1"),
            LogFormat::V2 => write!(f, "v2"),
        }
    }
}

/// Reads up to 5 header bytes and classifies the stream, returning the
/// format and the bytes consumed while peeking (to be replayed in front
/// of the remaining source for v1).
///
/// A source with **zero bytes** is classified as a valid, empty v1 log —
/// v1 has no header, so "no records" is a legal encoding. Every entry
/// point built on this sniff ([`read_log_auto`], [`RecordBlocks::open`],
/// [`RecordStream::spawn`]) therefore treats empty input as an empty log,
/// never as an error.
///
/// # Errors
///
/// Returns [`LogError::UnsupportedVersion`] for a v2 magic with an
/// unknown version byte and [`LogError::Io`] on read failure. A stream
/// that merely *starts like* the magic but diverges is treated as v1 and
/// left for the v1 decoder to judge.
pub(crate) fn sniff_format(source: &mut impl Read) -> LogResult<(LogFormat, Vec<u8>, u8)> {
    let mut head = [0u8; 5];
    let mut filled = 0;
    while filled < head.len() {
        match source.read(&mut head[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(LogError::Io(e)),
        }
    }
    let head = &head[..filled];
    if filled == 0 {
        // Empty input: a valid empty v1 log by definition.
        return Ok((LogFormat::V1, Vec::new(), 0));
    }
    if filled >= 4 && head[..4] == V2_MAGIC {
        if filled < 5 {
            return Err(LogError::corrupt("v2 header truncated before version byte"));
        }
        if !crate::v2::rev_supported(head[4]) {
            return Err(LogError::UnsupportedVersion {
                found: head[4],
                supported: V2_VERSION,
            });
        }
        Ok((LogFormat::V2, Vec::new(), head[4]))
    } else {
        Ok((LogFormat::V1, head.to_vec(), 0))
    }
}

/// A `Read` source with a replayed prefix (the bytes consumed by format
/// sniffing).
pub(crate) type Replayed<R> = std::io::Chain<std::io::Cursor<Vec<u8>>, R>;

enum Blocks<R: Read> {
    V1 {
        records: crate::io::ChunkedRecords<Replayed<R>>,
        done: bool,
    },
    V2(V2Blocks<R>),
}

/// Synchronous block iterator over either log format.
///
/// Yields `LogResult<Vec<Record>>`; fuses after the first error.
pub struct RecordBlocks<R: Read> {
    inner: Blocks<R>,
    format: LogFormat,
}

impl<R: Read> std::fmt::Debug for RecordBlocks<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecordBlocks")
            .field("format", &self.format)
            .finish_non_exhaustive()
    }
}

impl<R: Read> RecordBlocks<R> {
    /// Opens a block iterator over `source`, auto-detecting the format.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::UnsupportedVersion`] for an unreadable v2
    /// version and [`LogError::Io`] on read failure.
    pub fn open(mut source: R) -> LogResult<RecordBlocks<R>> {
        let (format, replay, rev) =
            sniff_format(&mut source).inspect_err(crate::error::count_error)?;
        Ok(match format {
            LogFormat::V1 => RecordBlocks {
                inner: Blocks::V1 {
                    records: LogReader::new(
                        std::io::Cursor::new(replay).chain(source),
                    )
                    .records(DEFAULT_CHUNK_BYTES),
                    done: false,
                },
                format,
            },
            LogFormat::V2 => RecordBlocks {
                inner: Blocks::V2(V2Blocks::after_header(source, rev)),
                format,
            },
        })
    }

    /// The detected on-disk format.
    pub fn format(&self) -> LogFormat {
        self.format
    }

    /// Footer state of the stream: meaningful once iteration has finished,
    /// [`SealState::Unknown`] for v1 logs (which have no footer).
    pub fn seal_state(&self) -> crate::v2::SealState {
        match &self.inner {
            Blocks::V1 { .. } => crate::v2::SealState::Unknown,
            Blocks::V2(blocks) => blocks.seal_state(),
        }
    }

    /// Opens a **salvage** iterator over `source`: a best-effort decode
    /// that never yields an error, skipping corrupt v2 blocks where that
    /// is provably safe and dropping the suffix where it is not. See
    /// [`crate::salvage`] for the soundness rule.
    pub fn open_salvage(
        source: R,
    ) -> (crate::salvage::SalvageBlocks<R>, crate::salvage::SalvageHandle) {
        crate::salvage::open_salvage(source)
    }
}

impl<R: Read> Iterator for RecordBlocks<R> {
    type Item = LogResult<Vec<Record>>;

    fn next(&mut self) -> Option<LogResult<Vec<Record>>> {
        match &mut self.inner {
            Blocks::V1 { records, done } => {
                if *done {
                    return None;
                }
                let start = literace_telemetry::enabled().then(std::time::Instant::now);
                let finish_batch = |block: &[Record]| {
                    if let Some(start) = start {
                        let m = literace_telemetry::metrics();
                        m.log_decode_v1_records.add(block.len() as u64);
                        m.log_decode_v1_ns.add(start.elapsed().as_nanos() as u64);
                    }
                };
                let mut block = Vec::with_capacity(V1_BLOCK_RECORDS);
                for r in records.by_ref() {
                    match r {
                        Ok(r) => {
                            block.push(r);
                            if block.len() >= V1_BLOCK_RECORDS {
                                finish_batch(&block);
                                return Some(Ok(block));
                            }
                        }
                        Err(e) => {
                            *done = true;
                            finish_batch(&block);
                            return Some(Err(e));
                        }
                    }
                }
                *done = true;
                if block.is_empty() {
                    None
                } else {
                    finish_batch(&block);
                    Some(Ok(block))
                }
            }
            Blocks::V2(blocks) => blocks.next(),
        }
    }
}

/// Decoded blocks pulled through a bounded channel from a decoder thread.
///
/// Dropping the stream early stops the decoder at its next send and
/// **joins** the thread (no leak, no panic); exhausting it also joins.
/// A panic inside the decoder is contained and surfaced as a final
/// [`LogError::DecoderPanicked`] stream item instead of a hung channel.
/// Transient I/O errors (`WouldBlock`, `TimedOut`) on the underlying
/// source are retried with bounded exponential backoff (see
/// [`RetryPolicy`](crate::retry::RetryPolicy)).
#[derive(Debug)]
pub struct RecordStream {
    receiver: Option<Receiver<LogResult<Vec<Record>>>>,
    handle: Option<std::thread::JoinHandle<()>>,
    format: LogFormat,
    /// Footer state shared with the parallel pool's consumer (`None` on
    /// the single-decoder paths, which report [`SealState::Unknown`]).
    seal: Option<std::sync::Arc<std::sync::Mutex<crate::v2::SealState>>>,
}

impl RecordStream {
    /// Assembles a stream from a consuming channel end and the thread that
    /// feeds it (the parallel decode pool's in-order consumer).
    pub(crate) fn from_parts(
        receiver: Receiver<LogResult<Vec<Record>>>,
        handle: std::thread::JoinHandle<()>,
        format: LogFormat,
        seal: Option<std::sync::Arc<std::sync::Mutex<crate::v2::SealState>>>,
    ) -> RecordStream {
        RecordStream {
            receiver: Some(receiver),
            handle: Some(handle),
            format,
            seal,
        }
    }

    /// Footer state of a v2 stream decoded by the parallel pool:
    /// meaningful once the stream is exhausted,
    /// [`SealState::Unknown`](crate::v2::SealState::Unknown) before that
    /// and on the single-decoder paths.
    pub fn seal_state(&self) -> crate::v2::SealState {
        match &self.seal {
            Some(seal) => *seal.lock().expect("seal state poisoned"),
            None => crate::v2::SealState::Unknown,
        }
    }

    /// Spawns a decoder thread over `source` and returns the consuming
    /// end. `depth` bounds the channel in blocks
    /// ([`DEFAULT_STREAM_DEPTH`] is a good default).
    ///
    /// # Errors
    ///
    /// Format sniffing happens synchronously, so header errors
    /// ([`LogError::UnsupportedVersion`], I/O) surface here; decode
    /// errors surface as items of the stream.
    pub fn spawn<R: Read + Send + 'static>(
        source: R,
        depth: usize,
    ) -> LogResult<RecordStream> {
        let blocks = RecordBlocks::open(crate::retry::RetryReader::new(
            source,
            crate::retry::RetryPolicy::default(),
        ))?;
        let format = blocks.format();
        spawn_decoder(blocks, format, depth)
    }

    /// Spawns a **salvage** decoder thread over `source`: like
    /// [`spawn`](RecordStream::spawn) but the stream never yields `Err` —
    /// corrupt regions are skipped or dropped per the soundness rule in
    /// [`crate::salvage`], and the damage tally is available through the
    /// returned [`SalvageHandle`](crate::salvage::SalvageHandle) (final
    /// once the stream is exhausted).
    ///
    /// # Errors
    ///
    /// Only thread-spawn failure; corrupt headers do not error here.
    pub fn spawn_salvage<R: Read + Send + 'static>(
        source: R,
        depth: usize,
    ) -> LogResult<(RecordStream, crate::salvage::SalvageHandle)> {
        let (blocks, salvage) = crate::salvage::open_salvage(crate::retry::RetryReader::new(
            source,
            crate::retry::RetryPolicy::default(),
        ));
        let format = blocks.format();
        let stream = spawn_decoder(blocks, format, depth)?;
        Ok((stream, salvage))
    }

    /// Like [`spawn`](RecordStream::spawn) with explicit [`DecodeOpts`]:
    /// `threads >= 2` decodes v2 blocks on a parallel worker pool (frame
    /// scan stays sequential, payloads decode out of order, blocks are
    /// delivered strictly in order). v1 logs and `threads <= 1` take the
    /// single-decoder-thread path.
    ///
    /// # Errors
    ///
    /// Same as [`spawn`](RecordStream::spawn): header errors surface
    /// here, decode errors surface as stream items.
    pub fn spawn_with<R: Read + Send + 'static>(
        source: R,
        opts: DecodeOpts,
    ) -> LogResult<RecordStream> {
        if opts.threads <= 1 {
            return RecordStream::spawn(source, opts.depth);
        }
        let mut retry = crate::retry::RetryReader::new(source, crate::retry::RetryPolicy::default());
        match sniff_format(&mut retry) {
            Ok((LogFormat::V2, _, rev)) => crate::parallel::spawn_strict(
                crate::parallel::ReaderSource::new(retry),
                rev,
                opts,
            ),
            Ok((LogFormat::V1, replay, _)) => {
                let blocks = RecordBlocks::open(std::io::Cursor::new(replay).chain(retry))?;
                let format = blocks.format();
                spawn_decoder(blocks, format, opts.depth)
            }
            Err(e) => {
                crate::error::count_error(&e);
                Err(e)
            }
        }
    }

    /// Like [`spawn_salvage`](RecordStream::spawn_salvage) with explicit
    /// [`DecodeOpts`]; the parallel pool applies the exact sequential
    /// salvage rules from its in-order consumer, so the final
    /// [`SalvageReport`](crate::salvage::SalvageReport) matches the
    /// sequential path.
    ///
    /// # Errors
    ///
    /// Only thread-spawn failure; corrupt headers do not error here.
    pub fn spawn_salvage_with<R: Read + Send + 'static>(
        source: R,
        opts: DecodeOpts,
    ) -> LogResult<(RecordStream, crate::salvage::SalvageHandle)> {
        if opts.threads <= 1 {
            return RecordStream::spawn_salvage(source, opts.depth);
        }
        let mut retry = crate::retry::RetryReader::new(source, crate::retry::RetryPolicy::default());
        match sniff_format(&mut retry) {
            Ok((LogFormat::V2, _, rev)) => crate::parallel::spawn_salvage(
                crate::parallel::ReaderSource::new(retry),
                rev,
                opts,
            ),
            Ok((LogFormat::V1, replay, _)) => {
                // v1 salvage is inherently sequential (clean-prefix
                // recovery); replay the sniffed bytes and reuse it.
                let (blocks, salvage) = crate::salvage::open_salvage(
                    std::io::Cursor::new(replay).chain(retry),
                );
                let format = blocks.format();
                let stream = spawn_decoder(blocks, format, opts.depth)?;
                Ok((stream, salvage))
            }
            Err(e) => {
                // Mirror `open_salvage` on an unreadable header: an empty
                // stream with the failure recorded, never an error.
                crate::parallel::spawn_salvage_dead(e, opts)
            }
        }
    }

    /// Streams a fully materialized (possibly memory-mapped) log without
    /// copying payload bytes: v2 block payloads are handed to the decode
    /// pool as zero-copy [`Bytes`](bytes::Bytes) slices of `bytes`. Falls
    /// back to the reader path for v1 logs or a sequential pool.
    ///
    /// # Errors
    ///
    /// Same as [`spawn_with`](RecordStream::spawn_with).
    pub fn spawn_bytes(
        bytes: bytes::Bytes,
        opts: DecodeOpts,
    ) -> LogResult<RecordStream> {
        if opts.threads > 1 && bytes.len() >= 5 && bytes[..4] == V2_MAGIC {
            if !crate::v2::rev_supported(bytes[4]) {
                let e = LogError::UnsupportedVersion {
                    found: bytes[4],
                    supported: V2_VERSION,
                };
                crate::error::count_error(&e);
                return Err(e);
            }
            let rev = bytes[4];
            return crate::parallel::spawn_strict(
                crate::parallel::BytesSource::new(bytes.slice(5..)),
                rev,
                opts,
            );
        }
        RecordStream::spawn_with(std::io::Cursor::new(bytes), opts)
    }

    /// The detected on-disk format.
    pub fn format(&self) -> LogFormat {
        self.format
    }
}

/// An already-finished stream: yields nothing (the parallel salvage path
/// uses this when even the header was unreadable).
pub(crate) fn spawn_empty(format: LogFormat, depth: usize) -> LogResult<RecordStream> {
    spawn_decoder(std::iter::empty(), format, depth)
}

fn spawn_decoder<I>(blocks: I, format: LogFormat, depth: usize) -> LogResult<RecordStream>
where
    I: Iterator<Item = LogResult<Vec<Record>>> + Send + 'static,
{
    let (sender, receiver): (SyncSender<_>, Receiver<_>) = sync_channel(depth.max(1));
    let panic_sender = sender.clone();
    let handle = std::thread::Builder::new()
        .name("literace-log-decode".to_owned())
        .spawn(move || {
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
                decode_loop(blocks, sender);
            }));
            if let Err(payload) = outcome {
                let e = LogError::DecoderPanicked {
                    message: panic_message(payload.as_ref()),
                };
                crate::error::count_error(&e);
                // Best effort: the consumer may already be gone.
                let _ = panic_sender.send(Err(e));
            }
        })
        .map_err(LogError::Io)?;
    Ok(RecordStream {
        receiver: Some(receiver),
        handle: Some(handle),
        format,
        seal: None,
    })
}

fn decode_loop<I>(mut blocks: I, sender: SyncSender<LogResult<Vec<Record>>>)
where
    I: Iterator<Item = LogResult<Vec<Record>>>,
{
    loop {
        literace_telemetry::trace_begin("stream.decode_block");
        let block = blocks.next();
        literace_telemetry::trace_end("stream.decode_block");
        let Some(block) = block else { return };
        if !push_output(&sender, block) {
            // Consumer dropped the stream; stop decoding.
            return;
        }
    }
}

/// Sends one stream item downstream with the backpressure-stall telemetry
/// the decode thread publishes (`log.stream.{blocks,stalls,queue}`).
/// Returns `false` when the consumer is gone.
pub(crate) fn push_output(
    sender: &SyncSender<LogResult<Vec<Record>>>,
    item: LogResult<Vec<Record>>,
) -> bool {
    if literace_telemetry::enabled() {
        let m = literace_telemetry::metrics();
        m.log_stream_blocks.add(1);
        // Probe first so a full channel registers as a backpressure stall
        // before the blocking send.
        match sender.try_send(item) {
            Ok(()) => {
                m.log_stream_queue.inc(0);
                true
            }
            Err(std::sync::mpsc::TrySendError::Disconnected(_)) => false,
            Err(std::sync::mpsc::TrySendError::Full(item)) => {
                m.log_stream_stalls.add(1);
                literace_telemetry::trace_instant("stream.send.stall");
                if sender.send(item).is_err() {
                    return false;
                }
                m.log_stream_queue.inc(0);
                true
            }
        }
    } else {
        sender.send(item).is_ok()
    }
}

pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

impl Iterator for RecordStream {
    type Item = LogResult<Vec<Record>>;

    fn next(&mut self) -> Option<LogResult<Vec<Record>>> {
        let receiver = self.receiver.as_ref()?;
        match receiver.recv() {
            Ok(item) => {
                if literace_telemetry::enabled() {
                    literace_telemetry::metrics().log_stream_queue.dec(0);
                }
                Some(item)
            }
            Err(_) => {
                // Channel closed: the decoder is done. Fuse and join.
                self.receiver = None;
                if let Some(handle) = self.handle.take() {
                    let _ = handle.join();
                }
                None
            }
        }
    }
}

impl Drop for RecordStream {
    fn drop(&mut self) {
        // Stop the decoder and reap it. Draining unparks a sender blocked
        // on a full channel; dropping the receiver makes its next send
        // fail so the thread exits, and the join guarantees no thread
        // outlives the stream.
        if let Some(receiver) = self.receiver.take() {
            while receiver.try_recv().is_ok() {}
            drop(receiver);
        }
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Reads an entire log of either format into an [`EventLog`].
///
/// # Errors
///
/// Returns the first decoding or I/O error.
pub fn read_log_auto(source: impl Read) -> LogResult<EventLog> {
    let mut log = EventLog::new();
    for block in RecordBlocks::open(source)? {
        log.extend(block?);
    }
    Ok(log)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::encode_all;
    use crate::record::SamplerMask;
    use crate::v2::encode_v2;
    use literace_sim::{Addr, FuncId, Pc, ThreadId};

    fn some_records(n: usize) -> Vec<Record> {
        (0..n)
            .map(|i| Record::Mem {
                tid: ThreadId::from_index(i % 3),
                pc: Pc::new(FuncId::from_index(i % 5), i),
                addr: Addr::global((i % 7) as u64),
                is_write: i % 2 == 0,
                mask: SamplerMask::bit(0),
            })
            .collect()
    }

    #[test]
    fn auto_detects_v1() {
        let records = some_records(10);
        let bytes = encode_all(&records);
        let blocks = RecordBlocks::open(&bytes[..]).unwrap();
        assert_eq!(blocks.format(), LogFormat::V1);
        let decoded: Vec<Record> = blocks.flat_map(|b| b.unwrap()).collect();
        assert_eq!(decoded, records);
    }

    #[test]
    fn auto_detects_v2() {
        let records = some_records(10_000);
        let bytes = encode_v2(&records);
        let blocks = RecordBlocks::open(&bytes[..]).unwrap();
        assert_eq!(blocks.format(), LogFormat::V2);
        let decoded: Vec<Record> = blocks.flat_map(|b| b.unwrap()).collect();
        assert_eq!(decoded, records);
    }

    #[test]
    fn v1_blocks_are_bounded() {
        let records = some_records(V1_BLOCK_RECORDS + 7);
        let bytes = encode_all(&records);
        let sizes: Vec<usize> = RecordBlocks::open(&bytes[..])
            .unwrap()
            .map(|b| b.unwrap().len())
            .collect();
        assert_eq!(sizes, vec![V1_BLOCK_RECORDS, 7]);
    }

    #[test]
    fn empty_source_is_an_empty_v1_log() {
        let log = read_log_auto(std::io::empty()).unwrap();
        assert!(log.is_empty());
    }

    #[test]
    fn empty_source_is_an_empty_v1_log_via_record_blocks() {
        let mut blocks = RecordBlocks::open(std::io::empty()).unwrap();
        assert_eq!(blocks.format(), LogFormat::V1);
        assert!(blocks.next().is_none());
    }

    #[test]
    fn empty_source_is_an_empty_v1_log_via_record_stream() {
        let mut stream =
            RecordStream::spawn(std::io::empty(), DEFAULT_STREAM_DEPTH).unwrap();
        assert_eq!(stream.format(), LogFormat::V1);
        assert!(stream.next().is_none());
    }

    #[test]
    fn short_v1_logs_survive_sniffing() {
        // 1–4 byte logs are shorter than the magic peek; the replay path
        // must hand every byte back to the v1 decoder.
        let records = vec![Record::ThreadBegin {
            tid: ThreadId::MAIN,
        }];
        let bytes = encode_all(&records);
        assert!(bytes.len() < 5 + 1);
        let log = read_log_auto(&bytes[..]).unwrap();
        assert_eq!(log.records(), &records[..]);
    }

    #[test]
    fn version_mismatch_is_typed() {
        let mut bytes = encode_v2(&some_records(3)).to_vec();
        bytes[4] = 9;
        let err = RecordBlocks::open(&bytes[..]).unwrap_err();
        assert!(
            matches!(err, LogError::UnsupportedVersion { found: 9, .. }),
            "{err}"
        );
    }

    #[test]
    fn stream_round_trips_both_formats() {
        let records = some_records(10_000);
        for bytes in [encode_all(&records), encode_v2(&records)] {
            let owned: Vec<u8> = bytes.to_vec();
            let stream =
                RecordStream::spawn(std::io::Cursor::new(owned), DEFAULT_STREAM_DEPTH)
                    .unwrap();
            let decoded: Vec<Record> = stream.flat_map(|b| b.unwrap()).collect();
            assert_eq!(decoded, records);
        }
    }

    #[test]
    fn dropping_stream_midway_does_not_hang() {
        let records = some_records(100_000);
        let bytes: Vec<u8> = encode_v2(&records).to_vec();
        let mut stream = RecordStream::spawn(std::io::Cursor::new(bytes), 1).unwrap();
        let first = stream.next().unwrap().unwrap();
        assert!(!first.is_empty());
        drop(stream); // must not deadlock on the full channel
    }

    /// A reader whose `Drop` flips a flag — the decoder thread owns the
    /// source, so the flag proves the thread (and the source with it) was
    /// reaped, not leaked.
    struct DropFlagged<R> {
        inner: R,
        dropped: std::sync::Arc<std::sync::atomic::AtomicBool>,
    }

    impl<R: Read> Read for DropFlagged<R> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            self.inner.read(buf)
        }
    }

    impl<R> Drop for DropFlagged<R> {
        fn drop(&mut self) {
            self.dropped
                .store(true, std::sync::atomic::Ordering::SeqCst);
        }
    }

    #[test]
    fn dropping_stream_midway_joins_the_decoder_thread() {
        let records = some_records(100_000);
        let bytes: Vec<u8> = encode_v2(&records).to_vec();
        let dropped = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let source = DropFlagged {
            inner: std::io::Cursor::new(bytes),
            dropped: dropped.clone(),
        };
        let mut stream = RecordStream::spawn(source, 1).unwrap();
        let first = stream.next().unwrap().unwrap();
        assert!(!first.is_empty());
        drop(stream);
        // Drop joins the decoder, so by now the thread has released its
        // source. Without the join this assertion races (and the thread
        // leaks past the test).
        assert!(dropped.load(std::sync::atomic::Ordering::SeqCst));
    }

    /// A reader that serves a prefix, then panics — exercising panic
    /// containment in the decoder thread.
    struct PanicAfter {
        prefix: std::io::Cursor<Vec<u8>>,
    }

    impl Read for PanicAfter {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            let n = self.prefix.read(buf)?;
            if n == 0 {
                panic!("injected decoder panic");
            }
            Ok(n)
        }
    }

    #[test]
    fn decoder_panic_is_contained_as_a_typed_error() {
        let records = some_records(10_000);
        let bytes: Vec<u8> = encode_v2(&records).to_vec();
        // Serve only half the file, then panic mid-decode.
        let half = bytes.len() / 2;
        let source = PanicAfter {
            prefix: std::io::Cursor::new(bytes[..half].to_vec()),
        };
        let stream = RecordStream::spawn(source, DEFAULT_STREAM_DEPTH).unwrap();
        let mut saw_panic = false;
        for item in stream {
            if let Err(e) = item {
                assert!(
                    matches!(e, LogError::DecoderPanicked { .. }),
                    "unexpected error: {e}"
                );
                assert!(e.to_string().contains("injected decoder panic"), "{e}");
                saw_panic = true;
            }
        }
        assert!(saw_panic, "panic was swallowed");
    }

    #[test]
    fn read_log_auto_reads_v2() {
        let records = some_records(500);
        let bytes = encode_v2(&records);
        let log = read_log_auto(&bytes[..]).unwrap();
        assert_eq!(log.records(), &records[..]);
    }
}
