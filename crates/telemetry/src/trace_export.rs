//! Chrome trace-event export, strict validation, and summary statistics
//! for drained trace tracks.
//!
//! The emitted document is the JSON object form of the [trace-event
//! format]: `{"traceEvents": [...]}` with `ph` `B`/`E` spans, `i`
//! instants, `C` counters, and `M` `thread_name` metadata, timestamps in
//! fractional microseconds. It loads directly in `ui.perfetto.dev` and
//! `chrome://tracing`. Export is deterministic: tracks are sorted by name
//! and assigned dense `tid`s, and numbers are formatted with fixed
//! precision.
//!
//! [`validate_chrome_trace`] is the strict consumer used by tests, CI and
//! `literace trace --in`: it re-parses a document, enforces balanced
//! begin/end per track and monotonic timestamps, and returns the
//! per-track attribution that [`render_trace_summary`] formats.
//!
//! [trace-event format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::json::{escape_into, parse_json, JsonValue};
use crate::trace::{TraceKind, TrackData};

/// All events share one process id in the export.
const PID: u64 = 1;

/// Formats `ns` nanoseconds as fractional microseconds (the trace-event
/// `ts` unit) without going through floating point.
fn ts_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Renders drained tracks as a Chrome trace-event JSON document.
pub fn chrome_trace_json(tracks: &[TrackData]) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    let mut push_event = |s: &str| {
        if first {
            first = false;
        } else {
            out.push(',');
        }
        out.push('\n');
        out.push_str(s);
    };
    for (tid, track) in tracks.iter().enumerate() {
        let mut name = String::new();
        escape_into(&track.track, &mut name);
        push_event(&format!(
            "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":{PID},\"tid\":{tid},\
             \"args\":{{\"name\":\"{name}\"}}}}"
        ));
        for ev in &track.events {
            let mut ename = String::new();
            escape_into(ev.name, &mut ename);
            let ts = ts_us(ev.ts_ns);
            let line = match ev.kind {
                TraceKind::Begin | TraceKind::End => {
                    let ph = if ev.kind == TraceKind::Begin { 'B' } else { 'E' };
                    let args = match &ev.detail {
                        Some(d) => {
                            let mut detail = String::new();
                            escape_into(d, &mut detail);
                            format!(",\"args\":{{\"detail\":\"{detail}\"}}")
                        }
                        None => String::new(),
                    };
                    format!(
                        "{{\"ph\":\"{ph}\",\"name\":\"{ename}\",\"cat\":\"literace\",\
                         \"pid\":{PID},\"tid\":{tid},\"ts\":{ts}{args}}}"
                    )
                }
                TraceKind::Instant => {
                    let args = match &ev.detail {
                        Some(d) => {
                            let mut detail = String::new();
                            escape_into(d, &mut detail);
                            format!(",\"args\":{{\"detail\":\"{detail}\"}}")
                        }
                        None => String::new(),
                    };
                    format!(
                        "{{\"ph\":\"i\",\"name\":\"{ename}\",\"cat\":\"literace\",\
                         \"pid\":{PID},\"tid\":{tid},\"ts\":{ts},\"s\":\"t\"{args}}}"
                    )
                }
                TraceKind::Counter(v) => format!(
                    "{{\"ph\":\"C\",\"name\":\"{ename}\",\"cat\":\"literace\",\
                     \"pid\":{PID},\"tid\":{tid},\"ts\":{ts},\"args\":{{\"value\":{v}}}}}"
                ),
            };
            push_event(&line);
        }
        if track.dropped > 0 {
            let last_ts = track.events.last().map_or(0, |e| e.ts_ns);
            push_event(&format!(
                "{{\"ph\":\"C\",\"name\":\"trace.dropped\",\"cat\":\"literace\",\
                 \"pid\":{PID},\"tid\":{tid},\"ts\":{},\"args\":{{\"value\":{}}}}}",
                ts_us(last_ts),
                track.dropped
            ));
        }
    }
    out.push_str("\n]}\n");
    out
}

/// One completed span, attributed to its track.
#[derive(Debug, Clone)]
pub struct SpanStat {
    /// Track (thread) name.
    pub track: String,
    /// Span name.
    pub name: String,
    /// Start, nanoseconds since the trace clock base.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

/// Per-track attribution computed during validation.
#[derive(Debug, Clone)]
pub struct TrackSummary {
    /// Track (thread) name from `thread_name` metadata.
    pub name: String,
    /// Track id in the document.
    pub tid: u64,
    /// Events on the track (excluding metadata).
    pub events: usize,
    /// Completed spans.
    pub spans: usize,
    /// Wall-clock covered by *top-level* spans (nested spans don't double
    /// count), nanoseconds.
    pub busy_ns: u64,
    /// Instant events.
    pub instants: usize,
    /// Instants whose name mentions a stall (queue backpressure marks).
    pub stalls: usize,
    /// Events the recorder dropped at its capacity bound (from the
    /// `trace.dropped` counter).
    pub dropped: u64,
}

/// The validated shape of a trace document.
#[derive(Debug)]
pub struct TraceSummary {
    /// Per-track attribution, in document `tid` order.
    pub tracks: Vec<TrackSummary>,
    /// Total non-metadata events.
    pub total_events: usize,
    /// Largest timestamp seen, nanoseconds.
    pub wall_ns: u64,
    /// Every completed span, longest first.
    pub top_spans: Vec<SpanStat>,
}

/// Parses and strictly validates a Chrome trace-event JSON document.
///
/// Enforced per track (`pid`/`tid` pair): every `E` closes a matching open
/// `B` with the same name, no span is left open at the end, and
/// timestamps are monotonically non-decreasing. Every track with events
/// must carry a `thread_name` metadata record with a unique name.
///
/// # Errors
///
/// Returns a message describing the first violation.
pub fn validate_chrome_trace(text: &str) -> Result<TraceSummary, String> {
    let root = parse_json(text)?;
    let events = root
        .get("traceEvents")
        .ok_or("missing traceEvents")?
        .as_array()
        .ok_or("traceEvents is not an array")?;

    struct TrackState {
        tid: u64,
        name: Option<String>,
        last_ts: u64,
        open: Vec<(String, u64)>,
        summary: TrackSummary,
    }
    let mut tracks: Vec<TrackState> = Vec::new();
    // (tid, name, start_ns, dur_ns); resolved to track names after the
    // metadata pass.
    let mut spans: Vec<(u64, String, u64, u64)> = Vec::new();
    let mut total_events = 0usize;
    let mut wall_ns = 0u64;

    fn field_str<'a>(ev: &'a JsonValue, key: &str, i: usize) -> Result<&'a str, String> {
        ev.get(key)
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("event {i}: missing string field \"{key}\""))
    }
    fn field_u64(ev: &JsonValue, key: &str, i: usize) -> Result<u64, String> {
        ev.get(key)
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| format!("event {i}: missing integer field \"{key}\""))
    }

    for (i, ev) in events.iter().enumerate() {
        if ev.as_object().is_none() {
            return Err(format!("event {i}: not an object"));
        }
        let ph = field_str(ev, "ph", i)?;
        let name = field_str(ev, "name", i)?.to_owned();
        let pid = field_u64(ev, "pid", i)?;
        if pid != PID {
            return Err(format!("event {i}: unexpected pid {pid}"));
        }
        let tid = field_u64(ev, "tid", i)?;
        let state = match tracks.iter_mut().find(|t| t.tid == tid) {
            Some(t) => t,
            None => {
                tracks.push(TrackState {
                    tid,
                    name: None,
                    last_ts: 0,
                    open: Vec::new(),
                    summary: TrackSummary {
                        name: String::new(),
                        tid,
                        events: 0,
                        spans: 0,
                        busy_ns: 0,
                        instants: 0,
                        stalls: 0,
                        dropped: 0,
                    },
                });
                tracks.last_mut().expect("just pushed")
            }
        };
        if ph == "M" {
            if name == "thread_name" {
                let tname = ev
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| format!("event {i}: thread_name without args.name"))?;
                state.name = Some(tname.to_owned());
            }
            continue;
        }
        let ts = ev
            .get("ts")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("event {i}: missing numeric ts"))?;
        if ts < 0.0 {
            return Err(format!("event {i}: negative ts"));
        }
        let ts_ns = (ts * 1_000.0).round() as u64;
        if ts_ns < state.last_ts {
            return Err(format!(
                "event {i}: ts went backwards on tid {tid} ({} < {} ns)",
                ts_ns, state.last_ts
            ));
        }
        state.last_ts = ts_ns;
        wall_ns = wall_ns.max(ts_ns);
        total_events += 1;
        state.summary.events += 1;
        match ph {
            "B" => state.open.push((name, ts_ns)),
            "E" => {
                let (open_name, start_ns) = state.open.pop().ok_or_else(|| {
                    format!("event {i}: E \"{name}\" with no open span on tid {tid}")
                })?;
                if open_name != name {
                    return Err(format!(
                        "event {i}: E \"{name}\" closes open span \"{open_name}\" on tid {tid}"
                    ));
                }
                let dur_ns = ts_ns - start_ns;
                state.summary.spans += 1;
                if state.open.is_empty() {
                    state.summary.busy_ns += dur_ns;
                }
                spans.push((tid, name, start_ns, dur_ns));
            }
            "i" => {
                state.summary.instants += 1;
                if name.contains("stall") {
                    state.summary.stalls += 1;
                }
            }
            "C" => {
                if name == "trace.dropped" {
                    state.summary.dropped = ev
                        .get("args")
                        .and_then(|a| a.get("value"))
                        .and_then(JsonValue::as_u64)
                        .unwrap_or(0);
                }
            }
            other => return Err(format!("event {i}: unknown ph \"{other}\"")),
        }
    }

    let mut seen_names: Vec<&str> = Vec::new();
    for t in &mut tracks {
        if !t.open.is_empty() {
            return Err(format!(
                "tid {}: {} span(s) left open (first: \"{}\")",
                t.tid,
                t.open.len(),
                t.open[0].0
            ));
        }
        let name = t
            .name
            .clone()
            .ok_or_else(|| format!("tid {}: no thread_name metadata", t.tid))?;
        if seen_names.contains(&name.as_str()) {
            return Err(format!("duplicate track name \"{name}\""));
        }
        t.summary.name = name;
        seen_names.push(t.summary.name.as_str());
    }

    let mut top_spans: Vec<SpanStat> = spans
        .into_iter()
        .map(|(tid, name, start_ns, dur_ns)| SpanStat {
            track: tracks
                .iter()
                .find(|t| t.tid == tid)
                .map(|t| t.summary.name.clone())
                .unwrap_or_default(),
            name,
            start_ns,
            dur_ns,
        })
        .collect();
    top_spans.sort_by(|a, b| {
        b.dur_ns
            .cmp(&a.dur_ns)
            .then_with(|| a.start_ns.cmp(&b.start_ns))
            .then_with(|| a.name.cmp(&b.name))
    });

    let mut tracks: Vec<TrackSummary> = tracks.into_iter().map(|t| t.summary).collect();
    tracks.sort_by_key(|t| t.tid);
    Ok(TraceSummary {
        tracks,
        total_events,
        wall_ns,
        top_spans,
    })
}

/// Formats the per-track attribution table, the top-`top_n` longest spans,
/// and the stall marks — the body of `literace trace --in`.
pub fn render_trace_summary(summary: &TraceSummary, top_n: usize) -> String {
    let mut out = String::new();
    let wall_ms = summary.wall_ns as f64 / 1e6;
    out.push_str(&format!(
        "trace: {} events on {} tracks over {wall_ms:.3} ms\n\n",
        summary.total_events,
        summary.tracks.len()
    ));
    let name_w = summary
        .tracks
        .iter()
        .map(|t| t.name.len())
        .max()
        .unwrap_or(5)
        .max(5);
    out.push_str(&format!(
        "{:name_w$}  {:>8}  {:>7}  {:>10}  {:>6}  {:>8}  {:>6}  {:>7}\n",
        "track", "events", "spans", "busy ms", "busy%", "instants", "stalls", "dropped"
    ));
    for t in &summary.tracks {
        let busy_ms = t.busy_ns as f64 / 1e6;
        let busy_pct = if summary.wall_ns > 0 {
            100.0 * t.busy_ns as f64 / summary.wall_ns as f64
        } else {
            0.0
        };
        out.push_str(&format!(
            "{:name_w$}  {:>8}  {:>7}  {:>10.3}  {:>5.1}%  {:>8}  {:>6}  {:>7}\n",
            t.name, t.events, t.spans, busy_ms, busy_pct, t.instants, t.stalls, t.dropped
        ));
    }
    if !summary.top_spans.is_empty() {
        out.push_str(&format!(
            "\ntop {} longest spans:\n",
            top_n.min(summary.top_spans.len())
        ));
        for s in summary.top_spans.iter().take(top_n) {
            out.push_str(&format!(
                "  {:>10.3} ms  {} @ {} (start {:.3} ms)\n",
                s.dur_ns as f64 / 1e6,
                s.name,
                s.track,
                s.start_ns as f64 / 1e6
            ));
        }
    }
    let total_stalls: usize = summary.tracks.iter().map(|t| t.stalls).sum();
    if total_stalls > 0 {
        out.push_str(&format!(
            "\n{total_stalls} queue-stall instant(s); a stall marks a producer blocking on \
             a full queue — correlate with the *_hwm gauges in the metrics snapshot\n"
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceEvent;

    fn ev(ts_ns: u64, kind: TraceKind, name: &'static str) -> TraceEvent {
        TraceEvent {
            ts_ns,
            kind,
            name,
            detail: None,
        }
    }

    fn sample_tracks() -> Vec<TrackData> {
        vec![
            TrackData {
                track: "main".into(),
                events: vec![
                    ev(0, TraceKind::Begin, "phase.execute"),
                    ev(1_500, TraceKind::Instant, "race.detected"),
                    ev(2_000, TraceKind::End, "phase.execute"),
                    ev(2_000, TraceKind::Begin, "phase.detect"),
                    ev(9_000, TraceKind::End, "phase.detect"),
                ],
                dropped: 0,
            },
            TrackData {
                track: "worker-0".into(),
                events: vec![
                    ev(100, TraceKind::Begin, "encode_block"),
                    ev(400, TraceKind::Counter(3), "queue_depth"),
                    ev(700, TraceKind::End, "encode_block"),
                    ev(800, TraceKind::Instant, "send.stall"),
                ],
                dropped: 2,
            },
        ]
    }

    #[test]
    fn export_round_trips_through_the_validator() {
        let json = chrome_trace_json(&sample_tracks());
        let summary = validate_chrome_trace(&json).expect("valid trace");
        assert_eq!(summary.tracks.len(), 2);
        let main = &summary.tracks[0];
        assert_eq!(main.name, "main");
        assert_eq!(main.spans, 2);
        assert_eq!(main.busy_ns, 9_000);
        assert_eq!(main.instants, 1);
        let worker = &summary.tracks[1];
        assert_eq!(worker.name, "worker-0");
        assert_eq!(worker.stalls, 1);
        assert_eq!(worker.dropped, 2);
        assert_eq!(summary.top_spans[0].name, "phase.detect");
        assert_eq!(summary.top_spans[0].dur_ns, 7_000);
        assert_eq!(summary.wall_ns, 9_000);
    }

    #[test]
    fn validator_rejects_unbalanced_spans() {
        let mut tracks = sample_tracks();
        tracks[0].events.pop(); // drop the final End
        let json = chrome_trace_json(&tracks);
        let err = validate_chrome_trace(&json).unwrap_err();
        assert!(err.contains("left open"), "{err}");
    }

    #[test]
    fn validator_rejects_mismatched_end_name() {
        let tracks = vec![TrackData {
            track: "t".into(),
            events: vec![
                ev(0, TraceKind::Begin, "a"),
                ev(1, TraceKind::End, "b"),
            ],
            dropped: 0,
        }];
        let json = chrome_trace_json(&tracks);
        let err = validate_chrome_trace(&json).unwrap_err();
        assert!(err.contains("closes open span"), "{err}");
    }

    #[test]
    fn validator_rejects_backwards_timestamps() {
        let tracks = vec![TrackData {
            track: "t".into(),
            events: vec![
                ev(5_000, TraceKind::Instant, "late"),
                ev(1_000, TraceKind::Instant, "early"),
            ],
            dropped: 0,
        }];
        let json = chrome_trace_json(&tracks);
        let err = validate_chrome_trace(&json).unwrap_err();
        assert!(err.contains("backwards"), "{err}");
    }

    #[test]
    fn validator_rejects_garbage() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\": 3}").is_err());
    }

    #[test]
    fn nested_spans_do_not_double_count_busy_time() {
        let tracks = vec![TrackData {
            track: "t".into(),
            events: vec![
                ev(0, TraceKind::Begin, "outer"),
                ev(100, TraceKind::Begin, "inner"),
                ev(900, TraceKind::End, "inner"),
                ev(1_000, TraceKind::End, "outer"),
            ],
            dropped: 0,
        }];
        let json = chrome_trace_json(&tracks);
        let summary = validate_chrome_trace(&json).expect("valid");
        assert_eq!(summary.tracks[0].busy_ns, 1_000);
        assert_eq!(summary.tracks[0].spans, 2);
    }

    #[test]
    fn summary_renders_tracks_and_top_spans() {
        let json = chrome_trace_json(&sample_tracks());
        let summary = validate_chrome_trace(&json).expect("valid");
        let text = render_trace_summary(&summary, 3);
        assert!(text.contains("main"), "{text}");
        assert!(text.contains("phase.detect"), "{text}");
        assert!(text.contains("queue-stall"), "{text}");
    }
}
