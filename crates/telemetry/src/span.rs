//! Phase spans: scoped wall-clock timers with thread attribution.
//!
//! A [`PhaseStats`] is one named pipeline phase (sync pre-pass, shard
//! replay, merge, …). Calling [`span`](PhaseStats::span) returns a drop
//! guard; when the guard drops, the elapsed nanoseconds are folded into the
//! phase's totals, its maximum, and a per-thread-slot attribution row.
//! When telemetry is disabled the guard is inert and records nothing.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use crate::metrics::{thread_slot, MaxGauge, SlotCounters, SLOTS};

/// Aggregated timings for one named pipeline phase.
#[derive(Debug)]
pub struct PhaseStats {
    count: AtomicU64,
    total_ns: AtomicU64,
    max_ns: MaxGauge,
    by_slot: SlotCounters<SLOTS>,
}

impl PhaseStats {
    /// A zeroed phase.
    pub const fn new() -> PhaseStats {
        PhaseStats {
            count: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            max_ns: MaxGauge::new(),
            by_slot: SlotCounters::new(),
        }
    }

    /// Starts a span of this phase on the calling thread. Inert (and
    /// effectively free) when telemetry is disabled.
    #[inline]
    pub fn span(&'static self) -> SpanGuard {
        SpanGuard {
            stats: self,
            start: crate::enabled().then(Instant::now),
        }
    }

    /// Records one completed span of `ns` nanoseconds directly.
    pub fn record_ns(&self, ns: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.record(ns);
        self.by_slot.add(thread_slot(), ns);
    }

    /// Completed spans.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Total nanoseconds across spans.
    pub fn total_ns(&self) -> u64 {
        self.total_ns.load(Ordering::Relaxed)
    }

    /// Longest single span, nanoseconds.
    pub fn max_ns(&self) -> u64 {
        self.max_ns.get()
    }

    /// Nanoseconds attributed to each thread slot.
    pub fn by_thread(&self) -> Vec<u64> {
        self.by_slot.values()
    }

    /// Zeroes the phase.
    pub fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.total_ns.store(0, Ordering::Relaxed);
        self.max_ns.reset();
        self.by_slot.reset();
    }
}

impl Default for PhaseStats {
    fn default() -> PhaseStats {
        PhaseStats::new()
    }
}

/// Drop guard returned by [`PhaseStats::span`]; records on drop.
#[derive(Debug)]
pub struct SpanGuard {
    stats: &'static PhaseStats,
    start: Option<Instant>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.stats
                .record_ns(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_ns_accumulates_and_attributes() {
        let p = PhaseStats::new();
        p.record_ns(10);
        p.record_ns(30);
        assert_eq!(p.count(), 2);
        assert_eq!(p.total_ns(), 40);
        assert_eq!(p.max_ns(), 30);
        assert_eq!(p.by_thread().iter().sum::<u64>(), 40);
        p.reset();
        assert_eq!(p.count(), 0);
    }

    #[test]
    fn inert_guard_records_nothing() {
        // A guard with no start time (what `span()` returns while
        // telemetry is disabled) must not touch the stats on drop.
        static P: PhaseStats = PhaseStats::new();
        drop(SpanGuard {
            stats: &P,
            start: None,
        });
        assert_eq!(P.count(), 0);
    }

    #[test]
    fn live_guard_records_on_drop() {
        static P: PhaseStats = PhaseStats::new();
        drop(SpanGuard {
            stats: &P,
            start: Some(Instant::now()),
        });
        assert_eq!(P.count(), 1);
    }
}
