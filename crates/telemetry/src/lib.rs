//! Pipeline telemetry: a lock-free metrics registry with phase spans and
//! exporters, built for a race detector that cannot afford to perturb the
//! thing it is measuring.
//!
//! # Design
//!
//! * **One global registry.** [`metrics()`] returns the process-wide
//!   [`Metrics`] — a plain `static` of atomics, usable from any thread with
//!   no locks, allocation, or lazy initialization.
//! * **Double gating.** The compile-time `enabled` feature (forwarded by
//!   consumer crates as their `telemetry` feature) removes every recording
//!   site from the binary; at runtime, recording additionally stays off
//!   until [`set_enabled`]`(true)`. Hot paths guard with [`enabled()`],
//!   which is `const false` when the feature is off — a branch the
//!   optimizer deletes.
//! * **Sharded counters.** [`Counter`] spreads increments over cache-padded
//!   cells indexed by a per-thread slot, so detector workers never contend
//!   on one line. [`SlotCounters`] keeps the slot visible for per-thread /
//!   per-shard attribution.
//! * **Batched hot paths.** Per-access costs are kept off the atomics
//!   entirely: tight loops record into a plain [`LocalHistogram`] (or local
//!   integer counters) and flush once at the end of the run or worker.
//! * **Neutrality by construction.** Nothing in this crate feeds back into
//!   sampling or detection; enabling telemetry can never change a race
//!   report. The workspace's `telemetry_neutrality` suite asserts this
//!   byte-for-byte across the sequential, sharded and streaming paths.
//!
//! # Metric naming
//!
//! Metric names are lowercase, dot-separated, `layer.subsystem.quantity`
//! (e.g. `detector.shard.events`, `log.decode.v2.bytes`). Durations are
//! suffixed `_ns`; high-water marks `_hwm`. The JSON snapshot groups
//! metrics by kind and carries [`SCHEMA_VERSION`](snapshot::SCHEMA_VERSION);
//! the Prometheus exporter rewrites dots to underscores and prefixes
//! `literace_`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod json;
mod metrics;
mod registry;
pub mod snapshot;
mod span;
pub mod trace;
pub mod trace_export;

pub use json::{parse_json, JsonValue};
pub use metrics::{
    thread_slot, Counter, Histogram, LevelGauges, LocalHistogram, MaxGauge, ScanSampler,
    SlotCounters, BURST_SLOTS, HIST_BUCKETS, SLOTS,
};
pub use registry::{metrics, Metrics};
pub use snapshot::{HistogramSnapshot, PhaseSnapshot, Snapshot, SCHEMA_VERSION};
pub use span::{PhaseStats, SpanGuard};
pub use trace::{
    drain_tracks, reset_trace, trace_begin, trace_counter, trace_end, trace_flush_local,
    trace_instant, trace_instant_detail, trace_now_ns, TraceBuf, TraceEvent, TraceKind,
    TrackData,
};
pub use trace_export::{
    chrome_trace_json, render_trace_summary, validate_chrome_trace, SpanStat, TraceSummary,
    TrackSummary,
};

#[cfg(feature = "enabled")]
use std::sync::atomic::{AtomicBool, Ordering};

#[cfg(feature = "enabled")]
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether telemetry recording is on, both at compile time and at runtime.
///
/// Hot paths should check this once (hoisted out of the loop when possible)
/// before touching the registry. With the `enabled` feature off this is
/// `const false` and guarded recording sites compile away.
#[cfg(feature = "enabled")]
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Whether telemetry recording is on (the `enabled` feature is off, so: no).
#[cfg(not(feature = "enabled"))]
#[inline]
pub const fn enabled() -> bool {
    false
}

/// Turns runtime recording on or off. No-op when the feature is off.
#[cfg(feature = "enabled")]
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Turns runtime recording on or off (no-op: the `enabled` feature is off).
#[cfg(not(feature = "enabled"))]
pub fn set_enabled(_on: bool) {}

#[cfg(feature = "enabled")]
static TRACE_ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether event tracing is on, both at compile time and at runtime.
///
/// Independent of [`enabled`] — `--metrics-out` alone records no trace
/// events, and `--trace-out` does not switch the metrics registry on.
/// `const false` without the `enabled` feature, so guarded recording sites
/// compile away.
#[cfg(feature = "enabled")]
#[inline]
pub fn trace_enabled() -> bool {
    TRACE_ENABLED.load(Ordering::Relaxed)
}

/// Whether event tracing is on (the `enabled` feature is off, so: no).
#[cfg(not(feature = "enabled"))]
#[inline]
pub const fn trace_enabled() -> bool {
    false
}

/// Turns runtime event tracing on or off. Enabling pins the trace clock
/// base, so timestamps count from (roughly) this call. No-op when the
/// feature is off.
#[cfg(feature = "enabled")]
pub fn set_trace_enabled(on: bool) {
    if on {
        trace::init_clock_base();
    }
    TRACE_ENABLED.store(on, Ordering::Relaxed);
}

/// Turns runtime event tracing on or off (no-op: the `enabled` feature is
/// off).
#[cfg(not(feature = "enabled"))]
pub fn set_trace_enabled(_on: bool) {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runtime_flag_toggles() {
        // Other tests in this crate don't read the flag, so toggling here
        // is safe even under the parallel test runner.
        set_enabled(true);
        #[cfg(feature = "enabled")]
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
    }
}
