//! The global metrics registry: every metric the pipeline records, as one
//! `static` of atomics.
//!
//! Fields are public so recording sites write straight to the atomic with
//! no name lookup; the name↔field tables at the bottom are the single
//! source of truth for exporters (snapshot, Prometheus) and for
//! [`reset`](Metrics::reset).

use crate::metrics::{Counter, Histogram, LevelGauges, MaxGauge, SlotCounters, BURST_SLOTS, SLOTS};
use crate::snapshot::Snapshot;
use crate::span::PhaseStats;

/// Every metric the LiteRace pipeline records. See the crate docs for the
/// naming convention; the canonical name of each field is in the tables
/// used by [`snapshot`](Metrics::snapshot).
#[derive(Debug)]
pub struct Metrics {
    // ── instrument side ────────────────────────────────────────────────
    /// Sampler dispatch checks executed (one per instrumented function
    /// entry, §4.1).
    pub instrument_dispatch_checks: Counter,
    /// Dispatch checks that chose the instrumented (sampled) copy.
    pub instrument_dispatch_sampled: Counter,
    /// Dispatch checks attributed to the simulated thread that ran them.
    pub instrument_dispatch_checks_by_thread: SlotCounters<SLOTS>,
    /// Sampled dispatch decisions per simulated thread.
    pub instrument_dispatch_sampled_by_thread: SlotCounters<SLOTS>,
    /// Memory accesses executed by the program (sampled or not).
    pub instrument_mem_executed: Counter,
    /// Memory accesses actually logged.
    pub instrument_mem_logged: Counter,
    /// Synchronization records logged (never sampled, §4.1).
    pub instrument_sync_logged: Counter,
    /// Memory accesses skipped by the static ordering prefilter — no
    /// sampler consultation, no log record.
    pub instrument_prefilter_skipped: Counter,
    /// Memory accesses that passed the prefilter (the residual
    /// possibly-racy set the sampler budget is spent on).
    pub instrument_prefilter_residual: Counter,
    /// Size in bytes of the installed prefilter skip table.
    pub instrument_prefilter_table_bytes: Counter,
    /// Burst-sampler back-off transitions, by the back-off level entered
    /// (slot 1 = first back-off, e.g. 100%→10% in the LiteRace schedule).
    pub sampler_burst_transitions: SlotCounters<BURST_SLOTS>,

    // ── log side ───────────────────────────────────────────────────────
    /// Records encoded to the fixed-width v1 format.
    pub log_encode_v1_records: Counter,
    /// v1 bytes flushed to the sink.
    pub log_encode_v1_bytes: Counter,
    /// Records encoded to the compact v2 format.
    pub log_encode_v2_records: Counter,
    /// v2 bytes flushed to the sink (headers + block frames).
    pub log_encode_v2_bytes: Counter,
    /// v2 blocks flushed to the sink.
    pub log_encode_v2_blocks: Counter,
    /// Delta fields emitted by the v2 encoder.
    pub log_encode_v2_deltas: Counter,
    /// Delta fields that needed more than one varint byte (the fallback
    /// rate of the zigzag delta scheme).
    pub log_encode_v2_deltas_multibyte: Counter,
    /// Records decoded from v1 logs.
    pub log_decode_v1_records: Counter,
    /// Nanoseconds spent decoding v1 blocks.
    pub log_decode_v1_ns: Counter,
    /// Records decoded from v2 logs.
    pub log_decode_v2_records: Counter,
    /// v2 bytes consumed by the decoder (block frames + payloads).
    pub log_decode_v2_bytes: Counter,
    /// v2 blocks decoded.
    pub log_decode_v2_blocks: Counter,
    /// Nanoseconds spent decoding v2 blocks.
    pub log_decode_v2_ns: Counter,
    /// Log-read failures: corrupt framing or payload.
    pub log_errors_corrupt: Counter,
    /// Log-read failures: unrecognized magic.
    pub log_errors_bad_magic: Counter,
    /// Log-read failures: known magic, unsupported version.
    pub log_errors_unsupported_version: Counter,
    /// Log-read failures: underlying I/O errors.
    pub log_errors_io: Counter,
    /// Writes or finishes attempted on an already-finished log writer.
    pub log_errors_writer_finished: Counter,
    /// Decoder-thread panics contained into stream errors.
    pub log_errors_decoder_panicked: Counter,
    /// Salvage decodes started (`--salvage` openers).
    pub log_salvage_runs: Counter,
    /// Corrupt v2 blocks skipped by salvage decode.
    pub log_salvage_blocks_skipped: Counter,
    /// Records known dropped by salvage (from trusted block headers).
    pub log_salvage_records_dropped: Counter,
    /// Bytes discarded by salvage (skipped blocks + dropped suffixes).
    pub log_salvage_bytes_dropped: Counter,
    /// Transient-I/O read retries attempted by the retry wrapper.
    pub log_retry_attempts: Counter,
    /// Reads that failed even after exhausting the retry budget.
    pub log_retry_exhausted: Counter,
    /// Nanoseconds parallel-decode workers spent decoding block payloads.
    pub log_decode_worker_busy_ns: Counter,
    /// Nanoseconds parallel-decode workers spent waiting for scanned
    /// blocks.
    pub log_decode_worker_idle_ns: Counter,
    /// Most blocks simultaneously in flight between the frame scanner and
    /// the in-order consumer of the parallel decode pool.
    pub log_decode_blocks_inflight_hwm: MaxGauge,
    /// Deepest reorder buffer the parallel-decode consumer needed to
    /// restore sequence order from out-of-order workers.
    pub log_decode_ooo_reorder_depth: MaxGauge,
    /// Nanoseconds pipelined-encode workers spent encoding sealed blocks.
    pub log_encode_worker_busy_ns: Counter,
    /// Nanoseconds pipelined-encode workers spent waiting for sealed
    /// blocks.
    pub log_encode_worker_idle_ns: Counter,
    /// Most raw blocks simultaneously sealed and awaiting an encode
    /// worker in the pipelined write path.
    pub log_encode_sealed_blocks_hwm: MaxGauge,
    /// Most blocks simultaneously in flight between the producer's seal
    /// and the in-order committer of the pipelined write path.
    pub log_encode_blocks_inflight_hwm: MaxGauge,
    /// Blocks handed from the decode thread to the streaming channel.
    pub log_stream_blocks: Counter,
    /// Times the decode thread found the streaming channel full and had to
    /// block (backpressure stalls).
    pub log_stream_stalls: Counter,
    /// Occupancy of the decode→detect channel (slot 0), with high-water
    /// mark.
    pub log_stream_queue: LevelGauges<1>,
    /// Total records a sealed v2 log declares in its footer — set before
    /// decoding starts so progress reporting can compute percent-complete.
    /// Zero when the input is unsealed or the total is unknown.
    pub log_decode_total_records: MaxGauge,
    /// Log records attributed per thread (populated by `log-stats`).
    pub log_records_by_thread: SlotCounters<SLOTS>,

    // ── detector side ──────────────────────────────────────────────────
    /// Records routed into detection (any path).
    pub detector_records_routed: Counter,
    /// Events assigned to each address shard.
    pub detector_shard_events: SlotCounters<SLOTS>,
    /// Occupancy of each shard's streaming channel, with high-water marks.
    pub detector_shard_queue: LevelGauges<SLOTS>,
    /// Times the streaming router found a shard channel full and had to
    /// block (backpressure stalls).
    pub detector_stream_stalls: Counter,
    /// Nanoseconds shard workers spent processing batches.
    pub detector_worker_busy_ns: Counter,
    /// Nanoseconds shard workers spent waiting for input.
    pub detector_worker_idle_ns: Counter,
    /// Frontier entries examined per access (antichain scan length).
    /// Detectors feed this through a [`ScanSampler`](crate::ScanSampler):
    /// a deterministic 1-in-16 systematic sample, so the per-access cost
    /// stays within the overhead budget. Counts are ~accesses/16; the
    /// shape of the distribution is what matters.
    pub detector_frontier_scan: Histogram,
    /// Frontier compaction passes run.
    pub detector_compact_runs: Counter,
    /// Locations reclaimed by compaction.
    pub detector_compact_dropped: Counter,
    /// Most addresses with live frontier state seen at once.
    pub detector_frontier_tracked_hwm: MaxGauge,
    /// Locations promoted from inline epochs to a full access history.
    pub detector_epoch_escalations: Counter,
    /// Escalated locations collapsed back to inline epochs.
    pub detector_epoch_deescalations: Counter,
    /// Accesses short-circuited by the same-epoch memo (no history work).
    pub detector_epoch_memo_hits: Counter,
    /// Most simultaneously escalated (full-history) locations, summed over
    /// shard frontiers.
    pub detector_epoch_resident_shared: MaxGauge,
    /// Checkpoint bytes serialized (sealed container size, summed over
    /// saves).
    pub detector_checkpoint_bytes: Counter,
    /// Nanoseconds spent serializing checkpoints.
    pub detector_checkpoint_save_ns: Counter,
    /// Nanoseconds spent parsing and validating checkpoints.
    pub detector_checkpoint_load_ns: Counter,
    /// Detectors resumed from a checkpoint (any path).
    pub detector_checkpoint_resumes: Counter,
    /// Static (PC-pair) races reported.
    pub detector_races_static: Counter,
    /// Dynamic race occurrences reported.
    pub detector_races_dynamic: Counter,
    /// Static races removed by suppression rules.
    pub detector_races_suppressed: Counter,

    // ── pipeline phases ────────────────────────────────────────────────
    /// Instrumented execution (simulator run, including sampling and
    /// logging).
    pub phase_execute: PhaseStats,
    /// Whole offline detection, any path.
    pub phase_detect: PhaseStats,
    /// Sequential synchronization pre-pass of the sharded detector.
    pub phase_sync_prepass: PhaseStats,
    /// Per-shard frontier replay (one span per worker).
    pub phase_shard_replay: PhaseStats,
    /// Merge of per-shard race pairs into the final report.
    pub phase_merge: PhaseStats,
}

impl Metrics {
    /// A fresh, zeroed registry — used by the global `static` and by tests
    /// that need isolation from it.
    pub(crate) const fn new() -> Metrics {
        Metrics {
            instrument_dispatch_checks: Counter::new(),
            instrument_dispatch_sampled: Counter::new(),
            instrument_dispatch_checks_by_thread: SlotCounters::new(),
            instrument_dispatch_sampled_by_thread: SlotCounters::new(),
            instrument_mem_executed: Counter::new(),
            instrument_mem_logged: Counter::new(),
            instrument_sync_logged: Counter::new(),
            instrument_prefilter_skipped: Counter::new(),
            instrument_prefilter_residual: Counter::new(),
            instrument_prefilter_table_bytes: Counter::new(),
            sampler_burst_transitions: SlotCounters::new(),
            log_encode_v1_records: Counter::new(),
            log_encode_v1_bytes: Counter::new(),
            log_encode_v2_records: Counter::new(),
            log_encode_v2_bytes: Counter::new(),
            log_encode_v2_blocks: Counter::new(),
            log_encode_v2_deltas: Counter::new(),
            log_encode_v2_deltas_multibyte: Counter::new(),
            log_decode_v1_records: Counter::new(),
            log_decode_v1_ns: Counter::new(),
            log_decode_v2_records: Counter::new(),
            log_decode_v2_bytes: Counter::new(),
            log_decode_v2_blocks: Counter::new(),
            log_decode_v2_ns: Counter::new(),
            log_errors_corrupt: Counter::new(),
            log_errors_bad_magic: Counter::new(),
            log_errors_unsupported_version: Counter::new(),
            log_errors_io: Counter::new(),
            log_errors_writer_finished: Counter::new(),
            log_errors_decoder_panicked: Counter::new(),
            log_salvage_runs: Counter::new(),
            log_salvage_blocks_skipped: Counter::new(),
            log_salvage_records_dropped: Counter::new(),
            log_salvage_bytes_dropped: Counter::new(),
            log_retry_attempts: Counter::new(),
            log_retry_exhausted: Counter::new(),
            log_decode_worker_busy_ns: Counter::new(),
            log_decode_worker_idle_ns: Counter::new(),
            log_decode_blocks_inflight_hwm: MaxGauge::new(),
            log_decode_ooo_reorder_depth: MaxGauge::new(),
            log_encode_worker_busy_ns: Counter::new(),
            log_encode_worker_idle_ns: Counter::new(),
            log_encode_sealed_blocks_hwm: MaxGauge::new(),
            log_encode_blocks_inflight_hwm: MaxGauge::new(),
            log_stream_blocks: Counter::new(),
            log_stream_stalls: Counter::new(),
            log_stream_queue: LevelGauges::new(),
            log_decode_total_records: MaxGauge::new(),
            log_records_by_thread: SlotCounters::new(),
            detector_records_routed: Counter::new(),
            detector_shard_events: SlotCounters::new(),
            detector_shard_queue: LevelGauges::new(),
            detector_stream_stalls: Counter::new(),
            detector_worker_busy_ns: Counter::new(),
            detector_worker_idle_ns: Counter::new(),
            detector_frontier_scan: Histogram::new(),
            detector_compact_runs: Counter::new(),
            detector_compact_dropped: Counter::new(),
            detector_frontier_tracked_hwm: MaxGauge::new(),
            detector_epoch_escalations: Counter::new(),
            detector_epoch_deescalations: Counter::new(),
            detector_epoch_memo_hits: Counter::new(),
            detector_epoch_resident_shared: MaxGauge::new(),
            detector_checkpoint_bytes: Counter::new(),
            detector_checkpoint_save_ns: Counter::new(),
            detector_checkpoint_load_ns: Counter::new(),
            detector_checkpoint_resumes: Counter::new(),
            detector_races_static: Counter::new(),
            detector_races_dynamic: Counter::new(),
            detector_races_suppressed: Counter::new(),
            phase_execute: PhaseStats::new(),
            phase_detect: PhaseStats::new(),
            phase_sync_prepass: PhaseStats::new(),
            phase_shard_replay: PhaseStats::new(),
            phase_merge: PhaseStats::new(),
        }
    }

    /// Name↔field table for plain counters (the canonical metric names).
    pub(crate) fn counters(&self) -> [(&'static str, &Counter); 54] {
        [
            ("instrument.dispatch.checks", &self.instrument_dispatch_checks),
            ("instrument.dispatch.sampled", &self.instrument_dispatch_sampled),
            ("instrument.mem.executed", &self.instrument_mem_executed),
            ("instrument.mem.logged", &self.instrument_mem_logged),
            ("instrument.sync.logged", &self.instrument_sync_logged),
            (
                "instrument.prefilter.skipped",
                &self.instrument_prefilter_skipped,
            ),
            (
                "instrument.prefilter.residual",
                &self.instrument_prefilter_residual,
            ),
            (
                "instrument.prefilter.table_bytes",
                &self.instrument_prefilter_table_bytes,
            ),
            ("log.encode.v1.records", &self.log_encode_v1_records),
            ("log.encode.v1.bytes", &self.log_encode_v1_bytes),
            ("log.encode.v2.records", &self.log_encode_v2_records),
            ("log.encode.v2.bytes", &self.log_encode_v2_bytes),
            ("log.encode.v2.blocks", &self.log_encode_v2_blocks),
            ("log.encode.v2.deltas", &self.log_encode_v2_deltas),
            (
                "log.encode.v2.deltas_multibyte",
                &self.log_encode_v2_deltas_multibyte,
            ),
            ("log.decode.v1.records", &self.log_decode_v1_records),
            ("log.decode.v1.ns", &self.log_decode_v1_ns),
            ("log.decode.v2.records", &self.log_decode_v2_records),
            ("log.decode.v2.bytes", &self.log_decode_v2_bytes),
            ("log.decode.v2.blocks", &self.log_decode_v2_blocks),
            ("log.decode.v2.ns", &self.log_decode_v2_ns),
            ("log.errors.corrupt", &self.log_errors_corrupt),
            ("log.errors.bad_magic", &self.log_errors_bad_magic),
            (
                "log.errors.unsupported_version",
                &self.log_errors_unsupported_version,
            ),
            ("log.errors.io", &self.log_errors_io),
            (
                "log.errors.writer_finished",
                &self.log_errors_writer_finished,
            ),
            (
                "log.errors.decoder_panicked",
                &self.log_errors_decoder_panicked,
            ),
            ("log.salvage.runs", &self.log_salvage_runs),
            ("log.salvage.blocks_skipped", &self.log_salvage_blocks_skipped),
            (
                "log.salvage.records_dropped",
                &self.log_salvage_records_dropped,
            ),
            ("log.salvage.bytes_dropped", &self.log_salvage_bytes_dropped),
            ("log.retry.attempts", &self.log_retry_attempts),
            ("log.retry.exhausted", &self.log_retry_exhausted),
            (
                "log.decode.worker_busy_ns",
                &self.log_decode_worker_busy_ns,
            ),
            (
                "log.decode.worker_idle_ns",
                &self.log_decode_worker_idle_ns,
            ),
            (
                "log.encode.worker_busy_ns",
                &self.log_encode_worker_busy_ns,
            ),
            (
                "log.encode.worker_idle_ns",
                &self.log_encode_worker_idle_ns,
            ),
            ("log.stream.blocks", &self.log_stream_blocks),
            ("log.stream.stalls", &self.log_stream_stalls),
            ("detector.records.routed", &self.detector_records_routed),
            ("detector.stream.stalls", &self.detector_stream_stalls),
            ("detector.worker.busy_ns", &self.detector_worker_busy_ns),
            ("detector.worker.idle_ns", &self.detector_worker_idle_ns),
            ("detector.compact.runs", &self.detector_compact_runs),
            ("detector.compact.dropped", &self.detector_compact_dropped),
            ("detector.epoch.escalations", &self.detector_epoch_escalations),
            (
                "detector.epoch.deescalations",
                &self.detector_epoch_deescalations,
            ),
            ("detector.epoch.memo_hits", &self.detector_epoch_memo_hits),
            (
                "detector.checkpoint.bytes",
                &self.detector_checkpoint_bytes,
            ),
            (
                "detector.checkpoint.save_ns",
                &self.detector_checkpoint_save_ns,
            ),
            (
                "detector.checkpoint.load_ns",
                &self.detector_checkpoint_load_ns,
            ),
            (
                "detector.checkpoint.resumes",
                &self.detector_checkpoint_resumes,
            ),
            ("detector.races.static", &self.detector_races_static),
            ("detector.races.dynamic", &self.detector_races_dynamic),
        ]
    }

    /// Name↔field table for slot-attributed counter families.
    pub(crate) fn slot_families(&self) -> [(&'static str, Vec<u64>); 7] {
        [
            (
                "instrument.dispatch.checks_by_thread",
                self.instrument_dispatch_checks_by_thread.values(),
            ),
            (
                "instrument.dispatch.sampled_by_thread",
                self.instrument_dispatch_sampled_by_thread.values(),
            ),
            (
                "sampler.burst.transitions",
                self.sampler_burst_transitions.values(),
            ),
            ("log.records_by_thread", self.log_records_by_thread.values()),
            ("detector.shard.events", self.detector_shard_events.values()),
            (
                "detector.shard.queue_depth_hwm",
                self.detector_shard_queue.hwm_values(),
            ),
            (
                "log.stream.queue_depth_hwm",
                self.log_stream_queue.hwm_values(),
            ),
        ]
    }

    /// Name↔field table for monotonic gauges. `detector.races.suppressed`
    /// lives here because suppression happens after snapshot-producing
    /// detection in some flows and must not look like detector throughput.
    pub(crate) fn gauges(&self) -> [(&'static str, u64); 8] {
        [
            (
                "log.decode.blocks_inflight_hwm",
                self.log_decode_blocks_inflight_hwm.get(),
            ),
            (
                "log.decode.total_records",
                self.log_decode_total_records.get(),
            ),
            (
                "log.decode.ooo_reorder_depth",
                self.log_decode_ooo_reorder_depth.get(),
            ),
            (
                "log.encode.sealed_blocks_hwm",
                self.log_encode_sealed_blocks_hwm.get(),
            ),
            (
                "log.encode.blocks_inflight_hwm",
                self.log_encode_blocks_inflight_hwm.get(),
            ),
            (
                "detector.frontier.tracked_hwm",
                self.detector_frontier_tracked_hwm.get(),
            ),
            (
                "detector.epoch.resident_shared",
                self.detector_epoch_resident_shared.get(),
            ),
            (
                "detector.races.suppressed",
                self.detector_races_suppressed.get(),
            ),
        ]
    }

    /// Name↔field table for histograms.
    pub(crate) fn histograms(&self) -> [(&'static str, &Histogram); 1] {
        [("detector.frontier.scan_len", &self.detector_frontier_scan)]
    }

    /// Name↔field table for phases.
    pub(crate) fn phases(&self) -> [(&'static str, &PhaseStats); 5] {
        [
            ("phase.execute", &self.phase_execute),
            ("phase.detect", &self.phase_detect),
            ("phase.sync_prepass", &self.phase_sync_prepass),
            ("phase.shard_replay", &self.phase_shard_replay),
            ("phase.merge", &self.phase_merge),
        ]
    }

    /// Captures a point-in-time [`Snapshot`] of every metric.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot::capture(self)
    }

    /// Zeroes every metric (for benches and tests; not atomic as a whole).
    pub fn reset(&self) {
        for (_, c) in self.counters() {
            c.reset();
        }
        self.instrument_dispatch_checks_by_thread.reset();
        self.instrument_dispatch_sampled_by_thread.reset();
        self.sampler_burst_transitions.reset();
        self.log_records_by_thread.reset();
        self.detector_shard_events.reset();
        self.detector_shard_queue.reset();
        self.log_stream_queue.reset();
        self.log_decode_blocks_inflight_hwm.reset();
        self.log_decode_total_records.reset();
        self.log_decode_ooo_reorder_depth.reset();
        self.log_encode_sealed_blocks_hwm.reset();
        self.log_encode_blocks_inflight_hwm.reset();
        self.detector_frontier_tracked_hwm.reset();
        self.detector_epoch_resident_shared.reset();
        self.detector_races_suppressed.reset();
        self.detector_frontier_scan.reset();
        for (_, p) in self.phases() {
            p.reset();
        }
    }
}

static METRICS: Metrics = Metrics::new();

/// The process-wide metrics registry.
#[inline]
pub fn metrics() -> &'static Metrics {
    &METRICS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_cover_distinct_names() {
        let m = Metrics::new();
        let mut names: Vec<&str> = m.counters().iter().map(|(n, _)| *n).collect();
        names.extend(m.slot_families().iter().map(|(n, _)| *n));
        names.extend(m.gauges().iter().map(|(n, _)| *n));
        names.extend(m.histograms().iter().map(|(n, _)| *n));
        names.extend(m.phases().iter().map(|(n, _)| *n));
        let total = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), total, "duplicate metric name");
    }

    #[test]
    fn reset_zeroes_everything() {
        let m = Metrics::new();
        m.instrument_dispatch_checks.add(5);
        m.detector_shard_events.add(3, 7);
        m.detector_frontier_scan.record(9);
        m.phase_merge.record_ns(11);
        m.reset();
        assert_eq!(m.instrument_dispatch_checks.get(), 0);
        assert_eq!(m.detector_shard_events.total(), 0);
        assert_eq!(m.detector_frontier_scan.count(), 0);
        assert_eq!(m.phase_merge.count(), 0);
    }
}
