//! Event tracing: per-thread bounded buffers of timestamped trace events.
//!
//! Where the metrics registry answers *how much* (counters, gauges,
//! histograms), tracing answers *when and where wall-clock went*: every
//! pipeline actor — the run thread, each encode worker, the in-order
//! committer, the decode scanner/workers/consumer, each detector shard —
//! records span begin/end, instant, and counter events into a thread-local
//! [`TraceBuf`], and the buffers are drained at exit into Chrome
//! trace-event JSON (see [`trace_export`](crate::trace_export)).
//!
//! # Design
//!
//! * **Per-thread buffers, no sharing.** Each thread appends to its own
//!   bounded `Vec` — no atomics, no locks, no allocation per event beyond
//!   amortized `Vec` growth. The only lock is a short [`Mutex`] push when a
//!   finished buffer is handed to the global collector (thread exit or
//!   explicit flush) — never on the event path.
//! * **Bounded.** A buffer holds at most [`TraceBuf::DEFAULT_CAP`] events;
//!   beyond that new spans and instants are counted as dropped instead of
//!   recorded. Span balance survives overflow: a suppressed `begin` also
//!   suppresses its matching `end`, so exported tracks always have
//!   balanced begin/end sequences.
//! * **Monotonic clock base.** Timestamps are nanoseconds since a
//!   process-wide [`Instant`] captured when tracing is first enabled, so
//!   all tracks share one timeline and per-track timestamps are
//!   monotonically non-decreasing.
//! * **Double gating, like metrics.** Compile-time the `enabled` feature
//!   removes every recording site ([`trace_enabled`](crate::trace_enabled)
//!   is `const false` without it); at runtime tracing additionally stays
//!   off until [`set_trace_enabled`](crate::set_trace_enabled)`(true)` —
//!   independent of the metrics flag, so `--metrics-out` alone records no
//!   events. A buffer snapshots the flag at creation: toggling mid-run
//!   never produces half-open spans.
//! * **Named tracks.** A buffer's track name defaults to the OS thread
//!   name (every pipeline worker is spawned named: `literace-encode-0`,
//!   `literace-shard-3`, …), so one track per actor falls out of the
//!   existing thread naming.

use std::cell::RefCell;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Default per-track event capacity (events beyond it are dropped and
/// counted).
pub const TRACE_TRACK_CAP: usize = 1 << 16;

/// What a [`TraceEvent`] marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A span opens on this track.
    Begin,
    /// The most recent unclosed span on this track closes.
    End,
    /// A point event.
    Instant,
    /// A counter sample with the given value.
    Counter(u64),
}

/// One timestamped event on one track.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Nanoseconds since the process trace clock base.
    pub ts_ns: u64,
    /// Event kind.
    pub kind: TraceKind,
    /// Event name. Static so the hot path never allocates for it.
    pub name: &'static str,
    /// Optional free-form payload for rare events (race provenance,
    /// overflow notes); `None` on the hot path.
    pub detail: Option<Box<str>>,
}

/// A finished track: every event one actor recorded, in order.
#[derive(Debug)]
pub struct TrackData {
    /// Track (actor) name, e.g. `literace-encode-0`.
    pub track: String,
    /// Events in recording order; timestamps are non-decreasing.
    pub events: Vec<TraceEvent>,
    /// Events lost to the capacity bound.
    pub dropped: u64,
}

/// A bounded per-actor event buffer.
///
/// Usually managed implicitly through the thread-local free functions
/// ([`trace_begin`](crate::trace_begin) & co.); constructed directly only
/// when an actor wants a track name different from its thread's.
#[derive(Debug)]
pub struct TraceBuf {
    active: bool,
    track: String,
    events: Vec<TraceEvent>,
    cap: usize,
    /// Open spans whose `Begin` was dropped at capacity; their `End`s are
    /// dropped too, preserving balance.
    suppressed: usize,
    dropped: u64,
}

impl TraceBuf {
    /// Default per-buffer capacity, re-exported for docs/tests.
    pub const DEFAULT_CAP: usize = TRACE_TRACK_CAP;

    /// A buffer for the named track. Inert (records nothing) unless
    /// tracing is enabled at the time of the call.
    pub fn new(track: impl Into<String>) -> TraceBuf {
        TraceBuf::with_capacity(track, TRACE_TRACK_CAP)
    }

    /// A buffer with an explicit event capacity.
    pub fn with_capacity(track: impl Into<String>, cap: usize) -> TraceBuf {
        let active = crate::trace_enabled();
        TraceBuf {
            active,
            track: track.into(),
            events: Vec::new(),
            cap: cap.max(1),
            suppressed: 0,
            dropped: 0,
        }
    }

    /// Whether this buffer records (tracing was enabled when it was made).
    #[inline]
    pub fn is_active(&self) -> bool {
        self.active
    }

    #[inline]
    fn push(&mut self, kind: TraceKind, name: &'static str, detail: Option<Box<str>>) {
        self.events.push(TraceEvent {
            ts_ns: trace_now_ns(),
            kind,
            name,
            detail,
        });
    }

    /// Opens a span.
    #[inline]
    pub fn begin(&mut self, name: &'static str) {
        if !self.active {
            return;
        }
        if self.events.len() >= self.cap {
            self.suppressed += 1;
            self.dropped += 1;
            return;
        }
        self.push(TraceKind::Begin, name, None);
    }

    /// Closes the most recent open span. Always recorded when its `begin`
    /// was (even at capacity), so tracks stay balanced.
    #[inline]
    pub fn end(&mut self, name: &'static str) {
        if !self.active {
            return;
        }
        if self.suppressed > 0 {
            self.suppressed -= 1;
            self.dropped += 1;
            return;
        }
        self.push(TraceKind::End, name, None);
    }

    /// Records a point event.
    #[inline]
    pub fn instant(&mut self, name: &'static str) {
        self.instant_opt(name, None);
    }

    /// Records a point event with a payload string (rare path; allocates).
    pub fn instant_detail(&mut self, name: &'static str, detail: String) {
        self.instant_opt(name, Some(detail.into_boxed_str()));
    }

    fn instant_opt(&mut self, name: &'static str, detail: Option<Box<str>>) {
        if !self.active {
            return;
        }
        if self.events.len() >= self.cap {
            self.dropped += 1;
            return;
        }
        self.push(TraceKind::Instant, name, detail);
    }

    /// Records a counter sample.
    #[inline]
    pub fn counter(&mut self, name: &'static str, value: u64) {
        if !self.active {
            return;
        }
        if self.events.len() >= self.cap {
            self.dropped += 1;
            return;
        }
        self.push(TraceKind::Counter(value), name, None);
    }

    /// Hands the recorded events to the global collector now (also done by
    /// `Drop`). A no-op for inactive or empty buffers.
    pub fn submit(mut self) {
        self.submit_inner();
    }

    fn submit_inner(&mut self) {
        if !self.active || (self.events.is_empty() && self.dropped == 0) {
            return;
        }
        let data = TrackData {
            track: std::mem::take(&mut self.track),
            events: std::mem::take(&mut self.events),
            dropped: std::mem::replace(&mut self.dropped, 0),
        };
        collector().lock().expect("trace collector poisoned").push(data);
    }
}

impl Drop for TraceBuf {
    fn drop(&mut self) {
        self.submit_inner();
    }
}

/// The global collector of finished tracks. `OnceLock` rather than a
/// `static Mutex` so thread-exit destructors can still reach it during
/// process teardown.
fn collector() -> &'static Mutex<Vec<TrackData>> {
    static COLLECTOR: OnceLock<Mutex<Vec<TrackData>>> = OnceLock::new();
    COLLECTOR.get_or_init(|| Mutex::new(Vec::new()))
}

/// The process-wide trace clock base, pinned the first time it is read
/// (enabling tracing reads it eagerly so timestamps start near zero).
fn clock_base() -> Instant {
    static BASE: OnceLock<Instant> = OnceLock::new();
    *BASE.get_or_init(Instant::now)
}

/// Pins the clock base; called by [`set_trace_enabled`](crate::set_trace_enabled).
pub(crate) fn init_clock_base() {
    let _ = clock_base();
}

/// Nanoseconds since the trace clock base.
#[inline]
pub fn trace_now_ns() -> u64 {
    u64::try_from(clock_base().elapsed().as_nanos()).unwrap_or(u64::MAX)
}

thread_local! {
    static LOCAL: RefCell<Option<TraceBuf>> = const { RefCell::new(None) };
}

/// Runs `f` on the calling thread's trace buffer, creating it (named after
/// the thread) on first use. Events recorded while the thread-local slot is
/// unavailable (thread teardown re-entry) are silently skipped.
#[inline]
fn with_local(f: impl FnOnce(&mut TraceBuf)) {
    let _ = LOCAL.try_with(|slot| {
        let mut slot = slot.borrow_mut();
        let buf = slot.get_or_insert_with(|| {
            let name = std::thread::current()
                .name()
                .map(str::to_owned)
                .unwrap_or_else(|| format!("thread-{}", crate::thread_slot()));
            TraceBuf::new(name)
        });
        f(buf);
    });
}

/// Opens a span on the calling thread's track. Free when tracing is off.
#[inline]
pub fn trace_begin(name: &'static str) {
    if !crate::trace_enabled() {
        return;
    }
    with_local(|b| b.begin(name));
}

/// Closes the calling thread's most recent open span.
#[inline]
pub fn trace_end(name: &'static str) {
    if !crate::trace_enabled() {
        return;
    }
    with_local(|b| b.end(name));
}

/// Records a point event on the calling thread's track.
#[inline]
pub fn trace_instant(name: &'static str) {
    if !crate::trace_enabled() {
        return;
    }
    with_local(|b| b.instant(name));
}

/// Records a point event with a payload (allocates; keep off hot paths).
pub fn trace_instant_detail(name: &'static str, detail: String) {
    if !crate::trace_enabled() {
        return;
    }
    with_local(|b| b.instant_detail(name, detail));
}

/// Records a counter sample on the calling thread's track.
#[inline]
pub fn trace_counter(name: &'static str, value: u64) {
    if !crate::trace_enabled() {
        return;
    }
    with_local(|b| b.counter(name, value));
}

/// Flushes the calling thread's buffer into the collector now. Worker
/// threads flush automatically on exit; the main thread calls this (via
/// [`drain_tracks`]) before exporting.
pub fn trace_flush_local() {
    let _ = LOCAL.try_with(|slot| {
        if let Some(buf) = slot.borrow_mut().take() {
            buf.submit();
        }
    });
}

/// Takes every collected track, merging repeat submissions of the same
/// track name (one actor across several runs) and sorting tracks by name
/// for deterministic export. Flushes the calling thread's buffer first.
pub fn drain_tracks() -> Vec<TrackData> {
    trace_flush_local();
    let raw = std::mem::take(&mut *collector().lock().expect("trace collector poisoned"));
    let mut merged: Vec<TrackData> = Vec::new();
    for data in raw {
        match merged.iter_mut().find(|t| t.track == data.track) {
            Some(t) => {
                t.events.extend(data.events);
                t.dropped += data.dropped;
            }
            None => merged.push(data),
        }
    }
    merged.sort_by(|a, b| a.track.cmp(&b.track));
    merged
}

/// Discards every collected track and the calling thread's buffer
/// (test/reset hook).
pub fn reset_trace() {
    let _ = LOCAL.try_with(|slot| {
        if let Some(buf) = slot.borrow_mut().as_mut() {
            buf.active = false;
            buf.events.clear();
            buf.dropped = 0;
            buf.suppressed = 0;
        }
        *slot.borrow_mut() = None;
    });
    collector().lock().expect("trace collector poisoned").clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    // Trace tests share the process-global runtime flag and collector, so
    // they serialize on one lock rather than fight the parallel runner.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn explicit_buffer_records_and_drains() {
        let _g = serial();
        crate::set_trace_enabled(true);
        reset_trace();
        let mut buf = TraceBuf::new("test-track");
        buf.begin("work");
        buf.instant("tick");
        buf.counter("depth", 3);
        buf.end("work");
        buf.submit();
        crate::set_trace_enabled(false);
        let tracks = drain_tracks();
        let t = tracks.iter().find(|t| t.track == "test-track").expect("track");
        assert_eq!(t.events.len(), 4);
        assert_eq!(t.events[0].kind, TraceKind::Begin);
        assert_eq!(t.events[3].kind, TraceKind::End);
        assert!(t.events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
        reset_trace();
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn capacity_overflow_keeps_spans_balanced() {
        let _g = serial();
        crate::set_trace_enabled(true);
        reset_trace();
        let mut buf = TraceBuf::with_capacity("tiny", 3);
        buf.begin("a"); // 1
        buf.begin("b"); // 2
        buf.end("b"); // 3 (at cap now)
        buf.begin("c"); // suppressed
        buf.instant("x"); // dropped
        buf.end("c"); // suppressed end matches suppressed begin
        buf.end("a"); // closes "a" even though the buffer is at capacity
        assert_eq!(buf.dropped, 3);
        let begins = buf.events.iter().filter(|e| e.kind == TraceKind::Begin).count();
        let ends = buf.events.iter().filter(|e| e.kind == TraceKind::End).count();
        assert_eq!(begins, ends);
        crate::set_trace_enabled(false);
        drop(buf);
        let _ = drain_tracks();
        reset_trace();
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn thread_local_api_names_track_after_thread() {
        let _g = serial();
        crate::set_trace_enabled(true);
        reset_trace();
        std::thread::Builder::new()
            .name("trace-test-worker".to_owned())
            .spawn(|| {
                trace_begin("job");
                trace_end("job");
            })
            .expect("spawn")
            .join()
            .expect("join");
        crate::set_trace_enabled(false);
        let tracks = drain_tracks();
        assert!(
            tracks.iter().any(|t| t.track == "trace-test-worker"),
            "tracks: {:?}",
            tracks.iter().map(|t| &t.track).collect::<Vec<_>>()
        );
        reset_trace();
    }

    #[test]
    fn disabled_records_nothing() {
        let _g = serial();
        crate::set_trace_enabled(false);
        reset_trace();
        let mut buf = TraceBuf::new("off");
        buf.begin("a");
        buf.end("a");
        assert!(!buf.is_active());
        drop(buf);
        trace_begin("b");
        trace_end("b");
        assert!(drain_tracks().is_empty());
    }
}
