//! The primitive metric types: sharded counters, slot-attributed counters,
//! monotonic gauges, level gauges with high-water marks, and log2
//! histograms (global atomic and thread-local batched forms).
//!
//! All types are `const`-constructible so the whole registry can live in a
//! plain `static`. Recording methods are not internally gated: call sites
//! guard with [`crate::enabled()`] (which compiles to `false` when the
//! `enabled` feature is off, removing the site entirely).

use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};

/// Slots for per-thread / per-shard attribution; higher indices clamp into
/// the last slot (which therefore aggregates "slot 15 and beyond").
pub const SLOTS: usize = 16;

/// Slots for burst back-off level attribution (the LiteRace schedule has 4
/// levels; extras beyond the schedule clamp into the last slot).
pub const BURST_SLOTS: usize = 8;

/// Buckets in a log2 histogram: bucket 0 holds value 0, bucket `b > 0`
/// holds values in `[2^(b-1), 2^b - 1]`.
pub const HIST_BUCKETS: usize = 64;

/// Cells a [`Counter`] spreads increments over (power of two).
const CELLS: usize = 8;

static NEXT_SLOT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static SLOT: usize = NEXT_SLOT.fetch_add(1, Ordering::Relaxed);
}

/// A small dense id for the calling thread, assigned on first use.
///
/// Used to pick a counter cell and to attribute slot metrics; ids keep
/// growing process-wide, so attribution clamps into [`SLOTS`].
#[inline]
pub fn thread_slot() -> usize {
    SLOT.with(|s| *s)
}

/// One cache line per atomic so concurrent writers don't false-share.
#[repr(align(64))]
#[derive(Debug)]
struct Cell(AtomicU64);

#[allow(clippy::declare_interior_mutable_const)] // const used only as array initializer
const ZERO_CELL: Cell = Cell(AtomicU64::new(0));

/// A monotonically increasing counter, sharded over cache-padded cells so
/// increments from different threads (usually) touch different lines.
#[derive(Debug)]
pub struct Counter {
    cells: [Cell; CELLS],
}

impl Counter {
    /// A zeroed counter.
    pub const fn new() -> Counter {
        Counter {
            cells: [ZERO_CELL; CELLS],
        }
    }

    /// Adds `n` (relaxed; cell chosen by the calling thread's slot).
    #[inline]
    pub fn add(&self, n: u64) {
        self.cells[thread_slot() & (CELLS - 1)]
            .0
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Current total across all cells.
    pub fn get(&self) -> u64 {
        self.cells.iter().map(|c| c.0.load(Ordering::Relaxed)).sum()
    }

    /// Zeroes the counter (not atomic as a whole; for tests and benches).
    pub fn reset(&self) {
        for c in &self.cells {
            c.0.store(0, Ordering::Relaxed);
        }
    }
}

impl Default for Counter {
    fn default() -> Counter {
        Counter::new()
    }
}

#[allow(clippy::declare_interior_mutable_const)] // const used only as array initializer
const ZERO_U64: AtomicU64 = AtomicU64::new(0);
#[allow(clippy::declare_interior_mutable_const)] // const used only as array initializer
const ZERO_I64: AtomicI64 = AtomicI64::new(0);

/// A family of counters indexed by a small slot (thread, shard, or burst
/// level). Indices at or beyond `N` clamp into the last slot, which thus
/// aggregates the overflow.
#[derive(Debug)]
pub struct SlotCounters<const N: usize> {
    slots: [AtomicU64; N],
}

impl<const N: usize> SlotCounters<N> {
    /// A zeroed family.
    pub const fn new() -> SlotCounters<N> {
        SlotCounters {
            slots: [ZERO_U64; N],
        }
    }

    /// Adds `n` to `slot` (clamped into the last slot).
    #[inline]
    pub fn add(&self, slot: usize, n: u64) {
        self.slots[slot.min(N - 1)].fetch_add(n, Ordering::Relaxed);
    }

    /// Current value of `slot` (clamped).
    pub fn get(&self, slot: usize) -> u64 {
        self.slots[slot.min(N - 1)].load(Ordering::Relaxed)
    }

    /// All slot values, in slot order.
    pub fn values(&self) -> Vec<u64> {
        self.slots
            .iter()
            .map(|s| s.load(Ordering::Relaxed))
            .collect()
    }

    /// Sum over all slots.
    pub fn total(&self) -> u64 {
        self.slots.iter().map(|s| s.load(Ordering::Relaxed)).sum()
    }

    /// Zeroes every slot.
    pub fn reset(&self) {
        for s in &self.slots {
            s.store(0, Ordering::Relaxed);
        }
    }
}

impl<const N: usize> Default for SlotCounters<N> {
    fn default() -> SlotCounters<N> {
        SlotCounters::new()
    }
}

/// A gauge that only moves up: `record` keeps the maximum value seen.
#[derive(Debug)]
pub struct MaxGauge {
    value: AtomicU64,
}

impl MaxGauge {
    /// A zeroed gauge.
    pub const fn new() -> MaxGauge {
        MaxGauge {
            value: AtomicU64::new(0),
        }
    }

    /// Raises the gauge to `v` if `v` exceeds the current maximum.
    #[inline]
    pub fn record(&self, v: u64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// The maximum recorded so far.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Zeroes the gauge.
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

impl Default for MaxGauge {
    fn default() -> MaxGauge {
        MaxGauge::new()
    }
}

/// Per-slot occupancy gauges with high-water marks — models queue depths:
/// the producer [`inc`](LevelGauges::inc)s on send, the consumer
/// [`dec`](LevelGauges::dec)s on receive, and the high-water mark keeps the
/// deepest the queue ever got.
///
/// Levels are signed internally so a consumer that observes a send before
/// the producer's increment (or a mid-run enable) cannot wrap.
#[derive(Debug)]
pub struct LevelGauges<const N: usize> {
    level: [AtomicI64; N],
    hwm: [AtomicU64; N],
}

impl<const N: usize> LevelGauges<N> {
    /// A zeroed family.
    pub const fn new() -> LevelGauges<N> {
        LevelGauges {
            level: [ZERO_I64; N],
            hwm: [ZERO_U64; N],
        }
    }

    /// Raises `slot`'s level by one and folds it into the high-water mark.
    #[inline]
    pub fn inc(&self, slot: usize) {
        let i = slot.min(N - 1);
        let now = self.level[i].fetch_add(1, Ordering::Relaxed) + 1;
        if now > 0 {
            self.hwm[i].fetch_max(now as u64, Ordering::Relaxed);
        }
    }

    /// Lowers `slot`'s level by one.
    #[inline]
    pub fn dec(&self, slot: usize) {
        self.level[slot.min(N - 1)].fetch_sub(1, Ordering::Relaxed);
    }

    /// Current level of `slot` (clamped at zero for reporting).
    pub fn level(&self, slot: usize) -> u64 {
        self.level[slot.min(N - 1)].load(Ordering::Relaxed).max(0) as u64
    }

    /// High-water mark of `slot`.
    pub fn hwm(&self, slot: usize) -> u64 {
        self.hwm[slot.min(N - 1)].load(Ordering::Relaxed)
    }

    /// All high-water marks, in slot order.
    pub fn hwm_values(&self) -> Vec<u64> {
        self.hwm.iter().map(|h| h.load(Ordering::Relaxed)).collect()
    }

    /// Zeroes levels and marks.
    pub fn reset(&self) {
        for l in &self.level {
            l.store(0, Ordering::Relaxed);
        }
        for h in &self.hwm {
            h.store(0, Ordering::Relaxed);
        }
    }
}

impl<const N: usize> Default for LevelGauges<N> {
    fn default() -> LevelGauges<N> {
        LevelGauges::new()
    }
}

/// Bucket index for value `v`: 0 for 0, else `floor(log2(v)) + 1`, with
/// the top two powers sharing the last bucket.
#[inline]
fn bucket_of(v: u64) -> usize {
    ((HIST_BUCKETS as u32 - v.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
}

/// Inclusive upper bound of bucket `b` (`u64::MAX` for the last).
pub(crate) fn bucket_bound(b: usize) -> u64 {
    if b >= HIST_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << b) - 1 // b = 0 → 0
    }
}

/// A fixed-bucket log2 histogram over `u64` values, with total count and
/// sum, safe for concurrent recording.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Histogram {
        Histogram {
            buckets: [ZERO_U64; HIST_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Per-bucket counts, in bucket order.
    pub fn bucket_values(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Empties the histogram.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
    }
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

/// A thread-local histogram for per-access hot loops: recording is a plain
/// array increment (no atomics); [`flush_into`](LocalHistogram::flush_into)
/// merges the whole batch into a shared [`Histogram`] once, at the end of
/// the run or worker.
#[derive(Debug, Clone)]
pub struct LocalHistogram {
    buckets: [u64; HIST_BUCKETS],
    count: u64,
    sum: u64,
}

impl LocalHistogram {
    /// An empty local histogram.
    pub const fn new() -> LocalHistogram {
        LocalHistogram {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
        }
    }

    /// Records one observation (non-atomic; a few arithmetic ops).
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v;
    }

    /// Observations recorded locally.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Merges this batch into `target` and clears the local state.
    pub fn flush_into(&mut self, target: &Histogram) {
        if self.count == 0 {
            return;
        }
        for (b, &n) in self.buckets.iter().enumerate() {
            if n > 0 {
                target.buckets[b].fetch_add(n, Ordering::Relaxed);
            }
        }
        target.count.fetch_add(self.count, Ordering::Relaxed);
        target.sum.fetch_add(self.sum, Ordering::Relaxed);
        *self = LocalHistogram::new();
    }
}

impl Default for LocalHistogram {
    fn default() -> LocalHistogram {
        LocalHistogram::new()
    }
}

/// Systematic 1-in-[`SAMPLE_RATE`](ScanSampler::SAMPLE_RATE) sampler over
/// a [`LocalHistogram`], for observations arriving on paths too hot to
/// histogram every event (the detector's per-access frontier scan costs a
/// few nanoseconds per record — histogramming each one would exceed the
/// telemetry overhead budget). Sampling is deterministic — every N-th
/// observation is recorded — so the captured distribution is reproducible
/// for a given input; multiply counts by the rate to estimate totals.
#[derive(Debug, Clone)]
pub struct ScanSampler {
    hist: LocalHistogram,
    tick: u32,
}

impl ScanSampler {
    /// One in this many observations is recorded (a power of two).
    pub const SAMPLE_RATE: u32 = 16;

    /// An empty sampler.
    pub const fn new() -> ScanSampler {
        ScanSampler {
            hist: LocalHistogram::new(),
            tick: 0,
        }
    }

    /// Counts one observation, recording every
    /// [`SAMPLE_RATE`](ScanSampler::SAMPLE_RATE)-th into the histogram.
    ///
    /// Call this unguarded: the tick test runs first, so the hot path is
    /// one local add and a predictable branch, and [`enabled()`](crate::enabled)
    /// is consulted only on the sampled 1-in-N path. With the `enabled`
    /// feature off the whole body compiles away.
    #[inline]
    pub fn record(&mut self, v: u64) {
        #[cfg(feature = "enabled")]
        {
            self.tick = self.tick.wrapping_add(1);
            if self.tick & (Self::SAMPLE_RATE - 1) == 0 && crate::enabled() {
                self.hist.record(v);
            }
        }
        #[cfg(not(feature = "enabled"))]
        let _ = v;
    }

    /// Merges the sampled histogram into `target` and resets.
    pub fn flush_into(&mut self, target: &Histogram) {
        self.hist.flush_into(target);
        self.tick = 0;
    }
}

impl Default for ScanSampler {
    fn default() -> ScanSampler {
        ScanSampler::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_sums_across_threads() {
        static C: Counter = Counter::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        C.add(1);
                    }
                });
            }
        });
        assert_eq!(C.get(), 8000);
        C.reset();
        assert_eq!(C.get(), 0);
    }

    #[test]
    fn slot_counters_clamp_overflow_into_last_slot() {
        let s: SlotCounters<4> = SlotCounters::new();
        s.add(0, 1);
        s.add(3, 2);
        s.add(17, 5); // clamps to slot 3
        assert_eq!(s.values(), vec![1, 0, 0, 7]);
        assert_eq!(s.total(), 8);
    }

    #[test]
    fn max_gauge_keeps_the_maximum() {
        let g = MaxGauge::new();
        g.record(3);
        g.record(10);
        g.record(7);
        assert_eq!(g.get(), 10);
    }

    #[test]
    fn level_gauges_track_depth_and_high_water() {
        let q: LevelGauges<2> = LevelGauges::new();
        q.inc(0);
        q.inc(0);
        q.dec(0);
        q.inc(0);
        assert_eq!(q.level(0), 2);
        assert_eq!(q.hwm(0), 2);
        // A stray dec (consumer ahead of producer) can't wrap the report.
        q.dec(1);
        assert_eq!(q.level(1), 0);
    }

    #[test]
    fn histogram_buckets_values_by_log2() {
        let h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 1023, 1024] {
            h.record(v);
        }
        let b = h.bucket_values();
        assert_eq!(b[0], 1); // value 0
        assert_eq!(b[1], 1); // value 1
        assert_eq!(b[2], 2); // 2, 3
        assert_eq!(b[3], 1); // 4
        assert_eq!(b[10], 1); // 1023 ∈ [512, 1023]
        assert_eq!(b[11], 1); // 1024 ∈ [1024, 2047]
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum(), 2057);
    }

    #[test]
    fn bucket_bounds_are_inclusive_uppers() {
        assert_eq!(bucket_bound(0), 0);
        assert_eq!(bucket_bound(1), 1);
        assert_eq!(bucket_bound(4), 15);
        assert_eq!(bucket_bound(HIST_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn local_histogram_flushes_batches() {
        let global = Histogram::new();
        let mut local = LocalHistogram::new();
        for v in 0..100u64 {
            local.record(v);
        }
        assert_eq!(local.count(), 100);
        local.flush_into(&global);
        assert_eq!(local.count(), 0);
        assert_eq!(global.count(), 100);
        assert_eq!(global.sum(), 4950);
    }
}
