//! A minimal JSON reader for snapshot round-trips and validation.
//!
//! The workspace's vendored `serde` is a marker-trait stand-in that cannot
//! serialize, so the snapshot schema is written *and* read by hand. This
//! parser covers the full JSON grammar (objects, arrays, strings with
//! escapes, numbers, booleans, null) — enough to ingest any snapshot this
//! crate emits plus hand-edited variants.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without fraction or exponent, in `u64` range.
    Int(u64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object (key order is not preserved; keys sort).
    Obj(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// The value as a `u64`, if it is an integer (or an integral float).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            JsonValue::Int(n) => Some(n),
            JsonValue::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                Some(f as u64)
            }
            _ => None,
        }
    }

    /// The value as an `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            JsonValue::Int(n) => Some(n as f64),
            JsonValue::Float(f) => Some(f),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Member `key` of an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Obj(map) => Some(map),
            _ => None,
        }
    }
}

/// Parses a complete JSON document.
///
/// # Errors
///
/// Returns a message naming the byte offset of the first syntax error, or
/// complaining about trailing input.
pub fn parse_json(text: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing input at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            ))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            map.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "non-ascii \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for metric
                            // names; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte sequence is valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let ch = s.chars().next().ok_or("unterminated string")?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut integral = true;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("digits are ascii");
        if integral && !text.starts_with('-') {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(JsonValue::Int(n));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::Float)
            .map_err(|_| format!("bad number at byte {start}"))
    }
}

/// Escapes `s` for inclusion in a JSON string literal (without quotes).
pub(crate) fn escape_into(s: &str, out: &mut String) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse_json("null").unwrap(), JsonValue::Null);
        assert_eq!(parse_json("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse_json("42").unwrap(), JsonValue::Int(42));
        assert_eq!(parse_json("-1.5").unwrap(), JsonValue::Float(-1.5));
        assert_eq!(parse_json("1e3").unwrap(), JsonValue::Float(1000.0));
        assert_eq!(
            parse_json("\"a\\nb\"").unwrap(),
            JsonValue::Str("a\nb".into())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse_json(r#"{"a": [1, 2, {"b": "c"}], "d": {}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2]
                .get("b")
                .unwrap()
                .as_str(),
            Some("c")
        );
        assert!(v.get("d").unwrap().as_object().unwrap().is_empty());
    }

    #[test]
    fn rejects_trailing_garbage_and_syntax_errors() {
        assert!(parse_json("{} x").is_err());
        assert!(parse_json("{\"a\" 1}").is_err());
        assert!(parse_json("[1,").is_err());
        assert!(parse_json("").is_err());
    }

    #[test]
    fn large_u64_counters_survive() {
        let v = parse_json("18446744073709551615").unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
    }

    #[test]
    fn escape_round_trips() {
        let mut out = String::from("\"");
        escape_into("a\"b\\c\nd\u{1}", &mut out);
        out.push('"');
        assert_eq!(
            parse_json(&out).unwrap().as_str(),
            Some("a\"b\\c\nd\u{1}")
        );
    }
}
