//! Point-in-time snapshots of the registry and their exporters: a stable,
//! versioned JSON schema and Prometheus text format.
//!
//! # JSON schema (version 1)
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "counters":   { "<name>": u64, ... },
//!   "gauges":     { "<name>": u64, ... },
//!   "slots":      { "<name>": [u64, ...], ... },
//!   "histograms": { "<name>": {"count": u64, "sum": u64, "buckets": [u64; 64]}, ... },
//!   "phases":     { "<name>": {"count": u64, "total_ns": u64, "max_ns": u64,
//!                              "by_thread": [u64, ...]}, ... },
//!   "derived":    { "<name>": f64, ... }
//! }
//! ```
//!
//! Keys within each section are sorted, arrays have fixed per-metric
//! lengths, and no wall-clock timestamp is embedded, so serialization is
//! deterministic: equal snapshots produce equal bytes. New metrics may be
//! *added* within a schema version; renaming or removing one bumps
//! [`SCHEMA_VERSION`].

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::json::{escape_into, parse_json, JsonValue};
use crate::metrics::bucket_bound;
use crate::registry::Metrics;

/// Version of the JSON snapshot schema.
pub const SCHEMA_VERSION: u64 = 1;

/// A captured histogram.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Per-bucket counts (see [`crate::HIST_BUCKETS`]).
    pub buckets: Vec<u64>,
}

/// A captured phase.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PhaseSnapshot {
    /// Completed spans.
    pub count: u64,
    /// Total nanoseconds across spans.
    pub total_ns: u64,
    /// Longest single span, nanoseconds.
    pub max_ns: u64,
    /// Nanoseconds attributed to each thread slot.
    pub by_thread: Vec<u64>,
}

/// A point-in-time capture of every metric in the registry.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// Plain counters, by canonical name.
    pub counters: BTreeMap<String, u64>,
    /// Monotonic gauges, by canonical name.
    pub gauges: BTreeMap<String, u64>,
    /// Slot-attributed counter families (per-thread, per-shard, per-level).
    pub slots: BTreeMap<String, Vec<u64>>,
    /// Histograms.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Phase timings.
    pub phases: BTreeMap<String, PhaseSnapshot>,
    /// Ratios and rates computed at capture time (e.g.
    /// `log.decode.v2.mb_per_s`). Only finite values are emitted.
    pub derived: BTreeMap<String, f64>,
}

impl Snapshot {
    /// Captures the current state of `metrics`.
    pub fn capture(metrics: &Metrics) -> Snapshot {
        let mut snap = Snapshot::default();
        for (name, c) in metrics.counters() {
            snap.counters.insert(name.to_owned(), c.get());
        }
        for (name, v) in metrics.gauges() {
            snap.gauges.insert(name.to_owned(), v);
        }
        for (name, values) in metrics.slot_families() {
            snap.slots.insert(name.to_owned(), values);
        }
        for (name, h) in metrics.histograms() {
            snap.histograms.insert(
                name.to_owned(),
                HistogramSnapshot {
                    count: h.count(),
                    sum: h.sum(),
                    buckets: h.bucket_values(),
                },
            );
        }
        for (name, p) in metrics.phases() {
            snap.phases.insert(
                name.to_owned(),
                PhaseSnapshot {
                    count: p.count(),
                    total_ns: p.total_ns(),
                    max_ns: p.max_ns(),
                    by_thread: p.by_thread(),
                },
            );
        }
        snap.compute_derived();
        snap
    }

    fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// (Re)computes the `derived` section from the raw sections.
    fn compute_derived(&mut self) {
        let mb_per_s = |bytes: u64, ns: u64| {
            if ns == 0 {
                f64::NAN
            } else {
                (bytes as f64 / (1 << 20) as f64) / (ns as f64 / 1e9)
            }
        };
        let ratio = |num: u64, den: u64| {
            if den == 0 {
                f64::NAN
            } else {
                num as f64 / den as f64
            }
        };
        let busy = self.counter("detector.worker.busy_ns");
        let idle = self.counter("detector.worker.idle_ns");
        let values = [
            (
                "log.decode.v2.mb_per_s",
                mb_per_s(
                    self.counter("log.decode.v2.bytes"),
                    self.counter("log.decode.v2.ns"),
                ),
            ),
            (
                "log.encode.v2.multibyte_delta_rate",
                ratio(
                    self.counter("log.encode.v2.deltas_multibyte"),
                    self.counter("log.encode.v2.deltas"),
                ),
            ),
            (
                "instrument.dispatch.sample_rate",
                ratio(
                    self.counter("instrument.dispatch.sampled"),
                    self.counter("instrument.dispatch.checks"),
                ),
            ),
            ("detector.worker.utilization", ratio(busy, busy + idle)),
        ];
        self.derived.clear();
        for (name, v) in values {
            if v.is_finite() {
                self.derived.insert(name.to_owned(), v);
            }
        }
    }

    /// Serializes the snapshot as pretty-printed, deterministic JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema_version\": {},", SCHEMA_VERSION);

        write_u64_section(&mut out, "counters", &self.counters, false);
        write_u64_section(&mut out, "gauges", &self.gauges, false);

        out.push_str("  \"slots\": {");
        write_map(&mut out, &self.slots, |out, values| {
            out.push('[');
            for (i, v) in values.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{v}");
            }
            out.push(']');
        });
        out.push_str("},\n");

        out.push_str("  \"histograms\": {");
        write_map(&mut out, &self.histograms, |out, h| {
            let _ = write!(out, "{{\"count\": {}, \"sum\": {}, \"buckets\": [", h.count, h.sum);
            for (i, b) in h.buckets.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{b}");
            }
            out.push_str("]}");
        });
        out.push_str("},\n");

        out.push_str("  \"phases\": {");
        write_map(&mut out, &self.phases, |out, p| {
            let _ = write!(
                out,
                "{{\"count\": {}, \"total_ns\": {}, \"max_ns\": {}, \"by_thread\": [",
                p.count, p.total_ns, p.max_ns
            );
            for (i, v) in p.by_thread.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{v}");
            }
            out.push_str("]}");
        });
        out.push_str("},\n");

        out.push_str("  \"derived\": {");
        write_map(&mut out, &self.derived, |out, v| {
            // `{}` on f64 is the shortest representation that parses back
            // to the same value, so serialization round-trips exactly.
            let _ = write!(out, "{v}");
        });
        out.push_str("}\n}\n");
        out
    }

    /// Parses a snapshot previously produced by [`to_json`](Snapshot::to_json).
    ///
    /// # Errors
    ///
    /// Reports JSON syntax errors, a missing or mismatched
    /// `schema_version`, and structurally invalid sections.
    pub fn from_json(text: &str) -> Result<Snapshot, String> {
        let root = parse_json(text)?;
        let version = root
            .get("schema_version")
            .and_then(JsonValue::as_u64)
            .ok_or("missing schema_version")?;
        if version != SCHEMA_VERSION {
            return Err(format!(
                "unsupported schema_version {version} (supported: {SCHEMA_VERSION})"
            ));
        }
        let mut snap = Snapshot::default();
        for (name, v) in section(&root, "counters")? {
            let v = v.as_u64().ok_or_else(|| format!("counter {name} not a u64"))?;
            snap.counters.insert(name.clone(), v);
        }
        for (name, v) in section(&root, "gauges")? {
            let v = v.as_u64().ok_or_else(|| format!("gauge {name} not a u64"))?;
            snap.gauges.insert(name.clone(), v);
        }
        for (name, v) in section(&root, "slots")? {
            snap.slots.insert(name.clone(), u64_array(name, v)?);
        }
        for (name, v) in section(&root, "histograms")? {
            snap.histograms.insert(
                name.clone(),
                HistogramSnapshot {
                    count: field_u64(name, v, "count")?,
                    sum: field_u64(name, v, "sum")?,
                    buckets: u64_array(
                        name,
                        v.get("buckets").ok_or_else(|| format!("{name}: no buckets"))?,
                    )?,
                },
            );
        }
        for (name, v) in section(&root, "phases")? {
            snap.phases.insert(
                name.clone(),
                PhaseSnapshot {
                    count: field_u64(name, v, "count")?,
                    total_ns: field_u64(name, v, "total_ns")?,
                    max_ns: field_u64(name, v, "max_ns")?,
                    by_thread: u64_array(
                        name,
                        v.get("by_thread")
                            .ok_or_else(|| format!("{name}: no by_thread"))?,
                    )?,
                },
            );
        }
        for (name, v) in section(&root, "derived")? {
            let v = v
                .as_f64()
                .ok_or_else(|| format!("derived {name} not a number"))?;
            snap.derived.insert(name.clone(), v);
        }
        Ok(snap)
    }

    /// Checks that the snapshot carries the core metrics the pipeline is
    /// expected to export, returning the missing names.
    ///
    /// Used by `literace metrics --validate` (and CI) as a schema-level
    /// sanity check on freshly produced snapshots.
    pub fn missing_required(&self) -> Vec<&'static str> {
        const REQUIRED_COUNTERS: &[&str] = &[
            "instrument.dispatch.checks",
            "instrument.dispatch.sampled",
            "instrument.mem.logged",
            "instrument.sync.logged",
            "log.decode.v2.bytes",
            "log.decode.v2.ns",
            "log.stream.stalls",
            "detector.records.routed",
            "detector.stream.stalls",
            "detector.races.static",
            "detector.races.dynamic",
        ];
        const REQUIRED_SLOTS: &[&str] = &[
            "sampler.burst.transitions",
            "detector.shard.events",
            "detector.shard.queue_depth_hwm",
        ];
        let mut missing = Vec::new();
        for &name in REQUIRED_COUNTERS {
            if !self.counters.contains_key(name) {
                missing.push(name);
            }
        }
        for &name in REQUIRED_SLOTS {
            if !self.slots.contains_key(name) {
                missing.push(name);
            }
        }
        if !self.gauges.contains_key("detector.races.suppressed") {
            missing.push("detector.races.suppressed");
        }
        if !self.derived.contains_key("log.decode.v2.mb_per_s")
            && self.counters.get("log.decode.v2.ns").copied().unwrap_or(0) > 0
        {
            missing.push("log.decode.v2.mb_per_s");
        }
        missing
    }

    /// Renders the snapshot in the Prometheus text exposition format.
    ///
    /// Names gain a `literace_` prefix with dots rewritten to underscores;
    /// slot families become labelled series; histograms use cumulative
    /// `le` buckets over the log2 upper bounds.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::with_capacity(8192);
        for (name, v) in &self.counters {
            let n = prom_name(name);
            let _ = writeln!(out, "# TYPE {n} counter");
            let _ = writeln!(out, "{n} {v}");
        }
        for (name, v) in &self.gauges {
            let n = prom_name(name);
            let _ = writeln!(out, "# TYPE {n} gauge");
            let _ = writeln!(out, "{n} {v}");
        }
        for (name, values) in &self.slots {
            let n = prom_name(name);
            let _ = writeln!(out, "# TYPE {n} counter");
            for (slot, v) in values.iter().enumerate() {
                let _ = writeln!(out, "{n}{{slot=\"{slot}\"}} {v}");
            }
        }
        for (name, h) in &self.histograms {
            let n = prom_name(name);
            let _ = writeln!(out, "# TYPE {n} histogram");
            let mut cumulative = 0u64;
            for (b, count) in h.buckets.iter().enumerate() {
                cumulative += count;
                // Skip the long run of empty interior buckets but keep the
                // sentinel buckets Prometheus needs.
                if *count == 0 && b != 0 && b != h.buckets.len() - 1 {
                    continue;
                }
                let bound = bucket_bound(b);
                if bound == u64::MAX {
                    continue; // folded into +Inf below
                }
                let _ = writeln!(out, "{n}_bucket{{le=\"{bound}\"}} {cumulative}");
            }
            let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {}", h.count);
            let _ = writeln!(out, "{n}_sum {}", h.sum);
            let _ = writeln!(out, "{n}_count {}", h.count);
        }
        for (name, p) in &self.phases {
            let n = prom_name(name);
            let _ = writeln!(out, "# TYPE {n}_total_ns counter");
            let _ = writeln!(out, "{n}_total_ns {}", p.total_ns);
            let _ = writeln!(out, "# TYPE {n}_count counter");
            let _ = writeln!(out, "{n}_count {}", p.count);
            let _ = writeln!(out, "# TYPE {n}_max_ns gauge");
            let _ = writeln!(out, "{n}_max_ns {}", p.max_ns);
        }
        for (name, v) in &self.derived {
            let n = prom_name(name);
            let _ = writeln!(out, "# TYPE {n} gauge");
            let _ = writeln!(out, "{n} {v}");
        }
        out
    }
}

fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 9);
    out.push_str("literace_");
    for ch in name.chars() {
        if ch.is_ascii_alphanumeric() {
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    out
}

/// Writes one `"name": value` map body with sorted keys, `value` rendered
/// by `render`, as the inner part of an already-opened object.
fn write_map<V>(
    out: &mut String,
    map: &BTreeMap<String, V>,
    render: impl Fn(&mut String, &V),
) {
    let mut first = true;
    for (name, v) in map {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("\n    \"");
        escape_into(name, out);
        out.push_str("\": ");
        render(out, v);
    }
    if !map.is_empty() {
        out.push('\n');
        out.push_str("  ");
    }
}

fn write_u64_section(
    out: &mut String,
    title: &str,
    map: &BTreeMap<String, u64>,
    last: bool,
) {
    let _ = write!(out, "  \"{title}\": {{");
    write_map(out, map, |out, v| {
        let _ = write!(out, "{v}");
    });
    out.push('}');
    out.push_str(if last { "\n" } else { ",\n" });
}

/// Reads a named object section. An absent section parses as empty, and
/// unknown sections (or unknown fields inside known entries) are simply
/// never looked at — snapshots written by a future version that *adds*
/// keys still load here; the `schema_version` gate is reserved for
/// incompatible changes to keys this reader does consume.
fn section<'a>(
    root: &'a JsonValue,
    name: &str,
) -> Result<&'a BTreeMap<String, JsonValue>, String> {
    static EMPTY: BTreeMap<String, JsonValue> = BTreeMap::new();
    match root.get(name) {
        None => Ok(&EMPTY),
        Some(v) => v
            .as_object()
            .ok_or_else(|| format!("section {name} is not an object")),
    }
}

fn field_u64(owner: &str, v: &JsonValue, field: &str) -> Result<u64, String> {
    v.get(field)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| format!("{owner}: bad field {field}"))
}

fn u64_array(owner: &str, v: &JsonValue) -> Result<Vec<u64>, String> {
    v.as_array()
        .ok_or_else(|| format!("{owner}: not an array"))?
        .iter()
        .map(|x| x.as_u64().ok_or_else(|| format!("{owner}: non-u64 element")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_round_trips_through_json() {
        // Local registries keep these tests independent of the global one
        // (the test runner is parallel).
        let m = Metrics::new();
        m.instrument_dispatch_checks.add(100);
        m.instrument_dispatch_sampled.add(12);
        m.detector_shard_events.add(2, 40);
        m.detector_frontier_scan.record(5);
        m.detector_frontier_scan.record(1000);
        m.phase_merge.record_ns(12345);
        m.log_decode_v2_bytes.add(1 << 20);
        m.log_decode_v2_ns.add(1_000_000_000);
        let snap = m.snapshot();
        let json = snap.to_json();
        let back = Snapshot::from_json(&json).expect("parses");
        assert_eq!(back, snap);
        assert_eq!(back.to_json(), json, "serialization is deterministic");
        assert_eq!(back.derived["log.decode.v2.mb_per_s"], 1.0);
    }

    #[test]
    fn exporters_emit_the_same_metric_name_set() {
        let m = Metrics::new();
        m.detector_frontier_scan.record(3);
        m.log_decode_v2_ns.add(1_000_000);
        m.log_decode_v2_bytes.add(1 << 20);
        let snap = m.snapshot();

        // Every name the JSON snapshot carries, sanitized the way the
        // Prometheus exporter does (phases expand to their three series).
        let mut json_names: std::collections::BTreeSet<String> =
            std::collections::BTreeSet::new();
        json_names.extend(snap.counters.keys().map(|n| prom_name(n)));
        json_names.extend(snap.gauges.keys().map(|n| prom_name(n)));
        json_names.extend(snap.slots.keys().map(|n| prom_name(n)));
        json_names.extend(snap.histograms.keys().map(|n| prom_name(n)));
        for n in snap.phases.keys() {
            let p = prom_name(n);
            json_names.insert(format!("{p}_total_ns"));
            json_names.insert(format!("{p}_count"));
            json_names.insert(format!("{p}_max_ns"));
        }
        json_names.extend(snap.derived.keys().map(|n| prom_name(n)));

        // Every family the Prometheus exporter declares.
        let prom = snap.to_prometheus();
        let prom_names: std::collections::BTreeSet<String> = prom
            .lines()
            .filter_map(|l| l.strip_prefix("# TYPE "))
            .map(|rest| rest.split(' ').next().unwrap().to_owned())
            .collect();

        assert_eq!(
            json_names, prom_names,
            "JSON and Prometheus exporters disagree on the metric set"
        );
    }

    #[test]
    fn from_json_ignores_unknown_keys() {
        let m = Metrics::new();
        m.instrument_dispatch_checks.add(3);
        m.detector_frontier_scan.record(7);
        m.phase_detect.record_ns(11);
        let snap = m.snapshot();
        // A future writer adds a top-level section, a field inside the
        // first histogram entry, and a field inside the first phase entry;
        // this reader must skip all three and recover the same snapshot.
        let patched = snap
            .to_json()
            .replacen(
                "\"counters\"",
                "\"future_section\": {\"x\": 1}, \"counters\"",
                1,
            )
            .replacen("\"count\":", "\"future_field\": \"y\", \"count\":", 2);
        assert_eq!(Snapshot::from_json(&patched).expect("parses"), snap);
    }

    #[test]
    fn from_json_tolerates_absent_sections() {
        let minimal = format!("{{\"schema_version\": {SCHEMA_VERSION}}}");
        assert_eq!(
            Snapshot::from_json(&minimal).expect("parses"),
            Snapshot::default()
        );
    }

    #[test]
    fn from_json_rejects_other_schema_versions() {
        let json = Metrics::new().snapshot().to_json();
        let bumped = json.replacen(
            &format!("\"schema_version\": {SCHEMA_VERSION}"),
            "\"schema_version\": 999",
            1,
        );
        let err = Snapshot::from_json(&bumped).unwrap_err();
        assert!(err.contains("schema_version"), "{err}");
    }

    #[test]
    fn fresh_snapshot_carries_all_required_metrics() {
        let snap = Metrics::new().snapshot();
        // Zero-valued decode ns means the MB/s derived metric is allowed
        // to be absent; everything else must exist even when zero.
        assert_eq!(snap.missing_required(), Vec::<&str>::new());
    }

    #[test]
    fn prometheus_output_is_well_formed() {
        let m = Metrics::new();
        m.detector_frontier_scan.record(7);
        let text = m.snapshot().to_prometheus();
        assert!(text.contains("# TYPE literace_instrument_dispatch_checks counter"));
        assert!(text.contains("literace_detector_shard_events{slot=\"0\"}"));
        assert!(text.contains("literace_detector_frontier_scan_len_bucket{le=\"+Inf\"}"));
        assert!(text.contains("literace_detector_frontier_scan_len_sum"));
        assert!(!text.contains(".."), "no unsanitized names");
    }
}
