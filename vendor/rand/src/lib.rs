//! Offline stand-in for `rand` 0.8.
//!
//! The build container cannot reach crates.io. The workspace uses rand
//! only for deterministic seeded simulation (`StdRng::seed_from_u64`,
//! `gen_range`, `gen_bool`, `gen`), so this vendored crate provides that
//! API subset over a xoshiro256** generator seeded via SplitMix64. The
//! exact stream differs from upstream `StdRng` (which is explicitly *not*
//! a reproducibility guarantee of rand either); everything in this
//! repository derives its expectations from the seeded stream itself, not
//! from upstream's concrete values.

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types `Rng::gen` can produce.
pub trait Standard: Sized {
    /// Samples a uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Ranges `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Samples uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// The raw generator interface.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a uniformly distributed value of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_range(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        f64::sample_standard(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stand-in for rand's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// Same generator under rand's "small" alias.
    pub type SmallRng = StdRng;

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion of the seed into the full state, as
            // recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

macro_rules! impl_int_sampling {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }

        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                // wrapping arithmetic keeps signed ranges correct: both
                // endpoints sign-extend consistently, so the modular
                // difference is the true span.
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }

        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_int_sampling!(u8, u16, u32, u64, usize, i32, i64);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range");
        start + f64::sample_standard(rng) * (end - start)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(1u64..=8);
            assert!((1..=8).contains(&w));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = r.gen_range(0..5usize);
            assert!(i < 5);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(1);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn gen_bool_roughly_matches_p() {
        let mut r = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits {hits}");
    }
}
