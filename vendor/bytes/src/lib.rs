//! Offline stand-in for the `bytes` crate.
//!
//! The build container cannot reach crates.io, so this vendored crate
//! provides the subset of the `bytes` API the workspace's log codec uses:
//! [`Bytes`], [`BytesMut`], and the [`Buf`]/[`BufMut`] traits with
//! little-endian fixed-width accessors. Semantics match the real crate for
//! this subset (including cheap clones of `Bytes` via `Arc`), minus the
//! zero-copy split machinery the codec never touches.

use std::ops::{Deref, DerefMut, Index, IndexMut};
use std::sync::Arc;

/// A cheaply cloneable immutable byte buffer with a consuming cursor.
///
/// The backing storage is any `AsRef<[u8]>` owner behind an `Arc` (a
/// `Vec<u8>` in the common case, a memory-mapped region via
/// [`Bytes::from_owner`]), so clones and [`slice`](Bytes::slice) views
/// share it without copying.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<dyn AsRef<[u8]> + Send + Sync>,
    /// Current read position (advanced by `Buf` methods).
    start: usize,
    /// Exclusive end of the view.
    end: usize,
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::from(Vec::new())
    }
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Wraps a static byte slice.
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes::from(bytes.to_vec())
    }

    /// Wraps any byte owner without copying: the buffer keeps `owner`
    /// alive and views its bytes. The view is pinned to the owner's
    /// length at construction time.
    pub fn from_owner<T>(owner: T) -> Bytes
    where
        T: AsRef<[u8]> + Send + Sync + 'static,
    {
        let end = owner.as_ref().len();
        Bytes {
            data: Arc::new(owner),
            start: 0,
            end,
        }
    }

    /// Remaining bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &(*self.data).as_ref()[self.start..self.end]
    }

    /// Remaining length.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A sub-view of the remaining bytes (indices relative to `self`).
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of range");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        let end = data.len();
        Bytes {
            data: Arc::new(data),
            start: 0,
            end,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

/// A growable mutable byte buffer.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Clears the buffer, keeping capacity.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Reserves capacity for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    /// Appends a byte slice.
    pub fn extend_from_slice(&mut self, bytes: &[u8]) {
        self.data.extend_from_slice(bytes);
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl<I: std::slice::SliceIndex<[u8]>> Index<I> for BytesMut {
    type Output = I::Output;
    fn index(&self, i: I) -> &I::Output {
        &self.data[i]
    }
}

impl<I: std::slice::SliceIndex<[u8]>> IndexMut<I> for BytesMut {
    fn index_mut(&mut self, i: I) -> &mut I::Output {
        &mut self.data[i]
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BytesMut({} bytes)", self.len())
    }
}

/// Read cursor over a byte buffer (little-endian accessors).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Advances the cursor by `n` bytes.
    fn advance(&mut self, n: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(b)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end");
        self.start += n;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
}

/// Write cursor appending to a byte buffer (little-endian accessors).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, bytes: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, bytes: &[u8]) {
        self.extend_from_slice(bytes);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, bytes: &[u8]) {
        self.extend_from_slice(bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_le() {
        let mut b = BytesMut::new();
        b.put_u8(7);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_u64_le(0x0123_4567_89AB_CDEF);
        assert_eq!(b.len(), 13);
        let mut r = b.freeze();
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert!(!r.has_remaining());
    }

    #[test]
    fn slice_is_relative_to_remaining() {
        let mut b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        b.advance(2);
        let s = b.slice(1..3);
        assert_eq!(&s[..], &[3, 4]);
    }

    #[test]
    fn from_owner_keeps_the_owner_alive() {
        struct Owner(Vec<u8>, Arc<std::sync::atomic::AtomicBool>);
        impl AsRef<[u8]> for Owner {
            fn as_ref(&self) -> &[u8] {
                &self.0
            }
        }
        impl Drop for Owner {
            fn drop(&mut self) {
                self.1.store(true, std::sync::atomic::Ordering::SeqCst);
            }
        }
        let dropped = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let b = Bytes::from_owner(Owner(vec![1, 2, 3, 4], dropped.clone()));
        let s = b.slice(1..3);
        drop(b);
        assert!(!dropped.load(std::sync::atomic::Ordering::SeqCst));
        assert_eq!(&s[..], &[2, 3]);
        drop(s);
        assert!(dropped.load(std::sync::atomic::Ordering::SeqCst));
    }

    #[test]
    fn index_mut_pokes_bytes() {
        let mut b = BytesMut::new();
        b.put_slice(&[1, 2, 3]);
        b[1] = 9;
        assert_eq!(&b[..], &[1, 9, 3]);
    }
}
