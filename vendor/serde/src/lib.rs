//! Offline stand-in for `serde`.
//!
//! The build container cannot reach crates.io, and nothing in this
//! workspace serializes through serde (no `serde_json` dependency exists);
//! the `#[derive(Serialize, Deserialize)]` annotations are forward-looking
//! API surface only. This stub keeps them compiling: the traits are
//! markers with blanket impls, and the derives (re-exported from the
//! sibling `serde_derive` stub) emit nothing.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all types.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub mod de {
    /// Blanket-implemented owned-deserialization marker.
    pub trait DeserializeOwned {}
    impl<T: ?Sized> DeserializeOwned for T {}
}
