//! Offline stand-in for `serde_derive`.
//!
//! The container this repository builds in has no access to crates.io, so
//! the real `serde`/`serde_derive` cannot be fetched. Nothing in the
//! workspace actually serializes through serde (there is no `serde_json`
//! in the tree); the derives only need to *resolve*. These macros accept
//! the same syntax (including `#[serde(...)]` helper attributes) and emit
//! no code — the matching `serde` stub crate provides blanket trait impls.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
