//! Offline stand-in for `proptest`.
//!
//! The build container cannot reach crates.io, so this vendored crate
//! reimplements the subset of the proptest API the workspace's property
//! tests use: the [`proptest!`] macro, [`Strategy`] with `prop_map`/
//! `boxed`, range/tuple/`Just` strategies, [`prop_oneof!`] (uniform and
//! weighted), `prop::collection::vec`, `prop::sample::select`, and
//! `any::<T>()` for the primitive types.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports the generated inputs via the
//!   panic message (all strategies produce `Debug` values in this
//!   workspace's tests through `assert!` formatting), but is not
//!   minimized.
//! * **Derandomized.** Cases are generated from a deterministic per-test
//!   seed (hash of the test name), so failures reproduce exactly; set
//!   `PROPTEST_CASES` to change the case count.

/// Run configuration.
pub mod config {
    /// Subset of proptest's run configuration: the case count.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` generated inputs per test.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }

        /// Effective case count: the `PROPTEST_CASES` environment variable
        /// overrides the configured value (matching proptest's env knob).
        pub fn resolved_cases(&self) -> u32 {
            std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(self.cases)
        }
    }
}

/// The deterministic RNG driving generation.
pub mod test_runner {
    /// SplitMix64 generator; seeded per test from the test's name so runs
    /// are reproducible and independent tests get independent streams.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from a test identifier (typically `stringify!(test_name)`).
        pub fn for_test(name: &str) -> TestRng {
            // FNV-1a: stable across runs and compilations, unlike
            // `DefaultHasher`'s unspecified algorithm guarantees.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// The next 64 uniformly distributed bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "below(0)");
            self.next_u64() % bound
        }

        /// Uniform draw in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// Strategies: recipes for generating values.
pub mod strategy {
    use std::rc::Rc;

    use crate::test_runner::TestRng;

    /// A value-generation recipe (no shrinking in this stand-in).
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                gen_fn: Rc::new(move |rng| self.generate(rng)),
            }
        }
    }

    /// A type-erased strategy.
    #[derive(Clone)]
    pub struct BoxedStrategy<T> {
        gen_fn: Rc<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T> std::fmt::Debug for BoxedStrategy<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("BoxedStrategy")
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.gen_fn)(rng)
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The strategy behind [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Weighted choice among boxed strategies (the [`prop_oneof!`] engine).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> std::fmt::Debug for Union<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "Union({} arms)", self.arms.len())
        }
    }

    impl<T> Union<T> {
        /// Builds a union from `(weight, strategy)` arms.
        ///
        /// # Panics
        ///
        /// Panics if `arms` is empty or all weights are zero.
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
            let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! needs a positive total weight");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.generate(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("pick bounded by total weight")
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    self.start
                        .wrapping_add((rng.next_u64() as u128 % span) as $t)
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span =
                        (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                    start.wrapping_add((rng.next_u64() as u128 % span) as $t)
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (start, end) = (*self.start(), *self.end());
            assert!(start <= end, "empty range strategy");
            start + rng.unit_f64() * (end - start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

/// `any::<T>()`: the canonical strategy for a type.
pub mod arbitrary {
    use std::marker::PhantomData;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Samples a uniformly distributed value.
        fn arbitrary_sample(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_sample(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i32, i64);

    impl Arbitrary for bool {
        fn arbitrary_sample(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary_sample(rng: &mut TestRng) -> f64 {
            rng.unit_f64()
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone)]
    pub struct AnyStrategy<T>(PhantomData<fn() -> T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_sample(rng)
        }
    }

    /// The canonical strategy for `T` (full domain, uniform).
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

/// The `prop::` namespace (collections and sampling helpers).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Length specification for [`vec`]: a fixed size or a half-open
        /// range.
        #[derive(Debug, Clone, Copy)]
        pub struct SizeRange {
            lo: usize,
            hi: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> SizeRange {
                SizeRange { lo: n, hi: n + 1 }
            }
        }

        impl From<std::ops::Range<usize>> for SizeRange {
            fn from(r: std::ops::Range<usize>) -> SizeRange {
                assert!(r.start < r.end, "empty size range");
                SizeRange {
                    lo: r.start,
                    hi: r.end,
                }
            }
        }

        impl From<std::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
                SizeRange {
                    lo: *r.start(),
                    hi: *r.end() + 1,
                }
            }
        }

        /// The strategy returned by [`vec`].
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.hi - self.size.lo) as u64;
                let len = self.size.lo + rng.below(span.max(1)) as usize;
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// A strategy for vectors of `element` with length in `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }
    }

    /// Sampling from fixed collections.
    pub mod sample {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// The strategy returned by [`select`].
        #[derive(Debug, Clone)]
        pub struct Select<T: Clone> {
            options: Vec<T>,
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn generate(&self, rng: &mut TestRng) -> T {
                self.options[rng.below(self.options.len() as u64) as usize].clone()
            }
        }

        /// Uniform choice among the given options.
        ///
        /// # Panics
        ///
        /// Panics if `options` is empty.
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select from empty options");
            Select { options }
        }
    }
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::config::ProptestConfig;
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, other: Type)`
/// item becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@tests ($cfg) $($rest)*);
    };
    (@tests ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($params:tt)* ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::config::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for _case in 0..config.resolved_cases() {
                    $crate::proptest!(@bind rng, $($params)*);
                    $body
                }
            }
        )*
    };
    // Parameter binding: `name in strategy` draws from an explicit
    // strategy, `name: Type` draws from `any::<Type>()`.
    (@bind $rng:ident,) => {};
    (@bind $rng:ident, $arg:ident in $strat:expr) => {
        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
    };
    (@bind $rng:ident, $arg:ident in $strat:expr, $($rest:tt)*) => {
        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
        $crate::proptest!(@bind $rng, $($rest)*);
    };
    (@bind $rng:ident, $arg:ident : $ty:ty) => {
        let $arg = $crate::strategy::Strategy::generate(
            &$crate::arbitrary::any::<$ty>(), &mut $rng);
    };
    (@bind $rng:ident, $arg:ident : $ty:ty, $($rest:tt)*) => {
        let $arg = $crate::strategy::Strategy::generate(
            &$crate::arbitrary::any::<$ty>(), &mut $rng);
        $crate::proptest!(@bind $rng, $($rest)*);
    };
    // No config attribute: default configuration.
    ($($rest:tt)*) => {
        $crate::proptest!(@tests ($crate::config::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniform or weighted (`w => strategy`) choice among strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (u32, Vec<u8>)> {
        (0u32..100, prop::collection::vec(any::<u8>(), 0..5))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 1u32..=4, p in 0.25f64..=0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((1..=4).contains(&y));
            prop_assert!((0.25..=0.75).contains(&p));
        }

        #[test]
        fn tuples_and_vecs(pair in arb_pair(), flag: bool) {
            let (n, v) = pair;
            prop_assert!(n < 100);
            prop_assert!(v.len() < 5);
            let _ = flag;
        }

        #[test]
        fn oneof_select_and_map(
            k in prop_oneof![Just(1u8), Just(2), (5u8..9).prop_map(|v| v)],
            s in prop::sample::select(vec!["a", "b"]),
        ) {
            prop_assert!(k == 1 || k == 2 || (5..9).contains(&k));
            prop_assert!(s == "a" || s == "b");
        }

        #[test]
        fn boxed_strategies_compose(v in prop_oneof![
            2 => (0u16..10).boxed(),
            1 => (100u16..110).boxed(),
        ]) {
            prop_assert!(v < 10 || (100..110).contains(&v));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let gen_once = || {
            let mut rng = crate::test_runner::TestRng::for_test("determinism-check");
            Strategy::generate(&arb_pair(), &mut rng)
        };
        assert_eq!(gen_once(), gen_once());
    }
}
