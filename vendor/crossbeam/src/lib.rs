//! Offline stand-in for `crossbeam`.
//!
//! The build container cannot reach crates.io. The workspace only uses
//! `crossbeam::thread::scope` + `Scope::spawn`, which the standard library
//! has provided natively since Rust 1.63 — so this vendored crate is a
//! thin adapter exposing the crossbeam scoped-thread API surface over
//! [`std::thread::scope`]. Panic propagation matches crossbeam: a panic in
//! any spawned thread surfaces as the `Err` of [`thread::scope`].

/// Scoped threads (crossbeam-utils `thread` module stand-in).
pub mod thread {
    use std::any::Any;

    /// The error half of [`scope`]'s result: the payload of a panicking
    /// spawned thread.
    pub type ScopeError = Box<dyn Any + Send + 'static>;

    /// A scope handle; spawned closures receive a fresh `&Scope` so nested
    /// spawning works as in crossbeam.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> std::fmt::Debug for Scope<'scope, 'env> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Scope")
        }
    }

    /// Handle to a scoped thread, joinable before the scope ends.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> std::fmt::Debug for ScopedJoinHandle<'scope, T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("ScopedJoinHandle")
        }
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread and returns its result (`Err` on panic).
        pub fn join(self) -> Result<T, ScopeError> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives a `&Scope` (which
        /// this adapter also supports for nested spawns).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Creates a scope for spawning threads that may borrow from the
    /// enclosing stack frame. Returns `Err` with the panic payload if any
    /// spawned thread (or the closure itself) panicked.
    pub fn scope<'env, F, R>(f: F) -> Result<R, ScopeError>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_borrows() {
        let data = [1u64, 2, 3, 4];
        let sums: Vec<u64> = super::thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| s.spawn(move |_| c.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
        .unwrap();
        assert_eq!(sums, vec![3, 7]);
    }

    #[test]
    fn panics_surface_as_err() {
        let r = super::thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn nested_spawn_works() {
        let n = super::thread::scope(|s| {
            s.spawn(|s2| s2.spawn(|_| 41).join().unwrap() + 1)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }
}
