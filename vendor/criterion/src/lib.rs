//! Offline stand-in for `criterion`.
//!
//! The build container cannot reach crates.io, so this vendored crate
//! provides the criterion API subset the workspace's benches use —
//! `Criterion`, `benchmark_group`, `bench_function`/`bench_with_input`,
//! `Bencher::iter`, `BenchmarkId`, `Throughput`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros — over a simple
//! median-of-samples wall-clock harness. No statistical analysis, HTML
//! reports, or baseline comparison; each benchmark prints one line:
//!
//! ```text
//! group/name  median 12.345 µs  (34 samples)  81.0 Melem/s
//! ```
//!
//! The harness honors `--bench` (ignored filter compatibility with the
//! cargo bench runner) and `--test` / `CRITERION_QUICK=1` (run each
//! benchmark once, for CI smoke coverage).

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Work-rate annotation: turns per-iteration time into a rate.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Identifier that is just the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to benchmark closures; `iter` runs and times the routine.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    quick: bool,
}

impl Bencher {
    /// Times `routine`, collecting one duration sample per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let runs = if self.quick { 1 } else { self.sample_size };
        self.samples.reserve(runs);
        for _ in 0..runs {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    fn median(&self) -> Option<Duration> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        Some(sorted[sorted.len() / 2])
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the work-rate annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Allows longer measurement; sample count already bounds runtime here.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs a benchmark taking no input.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            quick: self.criterion.quick,
        };
        f(&mut b);
        self.report(&id.to_string(), &b);
        self
    }

    /// Runs a benchmark against a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            quick: self.criterion.quick,
        };
        f(&mut b, input);
        self.report(&id.to_string(), &b);
        self
    }

    /// Ends the group (printing is per-benchmark; nothing to flush).
    pub fn finish(self) {}

    fn report(&self, id: &str, b: &Bencher) {
        let Some(median) = b.median() else {
            println!("{}/{id}  (no samples)", self.name);
            return;
        };
        let rate = self.throughput.map(|t| {
            let per_sec = |n: u64| n as f64 / median.as_secs_f64();
            match t {
                Throughput::Elements(n) => format!("  {}elem/s", si(per_sec(n))),
                Throughput::Bytes(n) => format!("  {}B/s", si(per_sec(n))),
            }
        });
        println!(
            "{}/{id}  median {}  ({} samples){}",
            self.name,
            fmt_duration(median),
            b.samples.len(),
            rate.unwrap_or_default(),
        );
    }
}

/// The benchmark harness entry point.
pub struct Criterion {
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // `cargo test --benches` passes --test; honor it (and an env knob)
        // by running each routine once so benches double as smoke tests.
        let quick = std::env::args().any(|a| a == "--test")
            || std::env::var("CRITERION_QUICK").is_ok_and(|v| v == "1");
        Criterion { quick }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            sample_size: 24,
            criterion: self,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos() as f64;
    if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn si(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.2} G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2} M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.2} k", v / 1e3)
    } else {
        format!("{v:.2} ")
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        std::env::set_var("CRITERION_QUICK", "1");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(100));
        group.sample_size(5);
        let mut ran = 0u32;
        group.bench_function("f", |b| b.iter(|| ran += 1));
        group.bench_with_input(BenchmarkId::new("in", 3), &3u64, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
        assert!(ran >= 1);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter("p").to_string(), "p");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.500 ms");
    }
}
