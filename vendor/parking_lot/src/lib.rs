//! Offline stand-in for `parking_lot`.
//!
//! Wraps the standard-library primitives behind parking_lot's
//! poison-free API (guards are returned directly from `lock`, a poisoned
//! std mutex is transparently recovered). Only the surface the workspace
//! uses is provided.

use std::sync::PoisonError;

/// A mutex whose `lock` returns the guard directly (no poisoning).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock with parking_lot's poison-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(l.into_inner(), 6);
    }
}
